//! The coordinator side of count-distribution mining.
//!
//! [`Cluster`] owns the worker pool: it binds a loopback listener,
//! spawns workers (child processes running `qar worker --connect ADDR`,
//! or in-process threads for tests and the differential oracle), and
//! accepts their connections. [`DistSource`] then implements
//! [`CountSource`] over the pool — it partitions the backing rows
//! contiguously across workers, streams each partition out as bounded
//! row blocks, and answers every counting request by broadcasting it and
//! merging the raw per-worker tallies with element-wise `u64` addition.
//!
//! Partial failure: a worker that times out, drops its connection, or
//! answers out of protocol is declared **lost** (one `worker_lost` trace
//! event, [`MinerError::WorkerLost`] under
//! [`DistOptions::fail_fast`]). The coordinator keeps the backing data,
//! so by default it recovers by recounting the lost partition locally —
//! the merged counts, and therefore the mined rules, are unchanged.

use qar_core::pipeline::MiningOutput;
use qar_core::source::{mine_source_captured, CountError, CountSource};
use qar_core::supercand::{count_candidates_opts, ScanOptions};
use qar_core::{CapturedCounts, MinerConfig, MinerError, ScanKernel};
use qar_itemset::Itemset;
use qar_store::dist::{read_response, write_request, DistRequest, DistResponse};
use qar_store::protocol::MAX_PAYLOAD;
use qar_table::{AttributeEncoder, ChunkStore, EncodedTable, Schema};
use qar_trace::{event::micros, CancelToken, ProgressSink, TraceEvent};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::worker::{run_worker, WorkerOptions};

/// Row blocks and candidate batches are kept under this wire size —
/// comfortably below the protocol's 16 MiB frame ceiling, and small
/// enough that per-batch count responses never strain socket buffers.
const BATCH_BYTES: usize = 4 << 20;

/// How workers are brought up.
#[derive(Debug, Clone)]
pub enum WorkerSpawn {
    /// Spawn child processes: `exe worker --connect ADDR [args...]` —
    /// the production path (`exe` is the `qar` binary).
    Processes {
        /// Binary to execute.
        exe: PathBuf,
        /// Extra arguments appended after `worker --connect ADDR`.
        args: Vec<String>,
    },
    /// Run workers as in-process threads — no processes to manage, used
    /// by tests and the differential oracle. Counting is still performed
    /// over real TCP connections through the full wire protocol.
    Threads(WorkerOptions),
}

/// Cluster bring-up parameters.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Number of workers (≥ 1).
    pub workers: usize,
    /// How to start them.
    pub spawn: WorkerSpawn,
    /// Per-response read timeout; an expiry counts as a lost worker.
    /// `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// How long to wait for all workers to connect at start-up.
    pub accept_timeout: Duration,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            workers: 2,
            spawn: WorkerSpawn::Threads(WorkerOptions::default()),
            read_timeout: Some(Duration::from_secs(120)),
            accept_timeout: Duration::from_secs(10),
        }
    }
}

/// One connected worker.
struct Remote {
    stream: TcpStream,
    peer: String,
    alive: bool,
}

impl Remote {
    /// One request/response exchange. Any failure — I/O, timeout, a
    /// protocol error, or an `Error` reply — comes back as the loss
    /// detail string.
    fn request(&mut self, request: &DistRequest) -> Result<DistResponse, String> {
        self.send(request)?;
        self.receive()
    }

    fn send(&mut self, request: &DistRequest) -> Result<(), String> {
        write_request(&mut self.stream, request).map_err(|e| e.to_string())
    }

    fn receive(&mut self) -> Result<DistResponse, String> {
        match read_response(&mut self.stream) {
            Ok(Some(DistResponse::Error { message })) => Err(format!("worker error: {message}")),
            Ok(Some(response)) => Ok(response),
            Ok(None) => Err("connection closed".to_string()),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// A pool of connected workers plus the child processes / threads
/// backing them. Dropping the cluster closes every connection (workers
/// exit on EOF) and reaps the children.
pub struct Cluster {
    remotes: Vec<Remote>,
    children: Vec<Child>,
    threads: Vec<JoinHandle<()>>,
}

impl Cluster {
    /// Bind a loopback listener, start `options.workers` workers, and
    /// wait for them all to connect.
    pub fn start(options: &ClusterOptions) -> Result<Cluster, MinerError> {
        if options.workers == 0 {
            return Err(MinerError::Distributed(
                "a cluster needs at least one worker".to_string(),
            ));
        }
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| MinerError::Distributed(format!("bind coordinator listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| MinerError::Distributed(format!("coordinator listener address: {e}")))?
            .to_string();

        let mut children = Vec::new();
        let mut threads = Vec::new();
        for _ in 0..options.workers {
            match &options.spawn {
                WorkerSpawn::Processes { exe, args } => {
                    let child = Command::new(exe)
                        .arg("worker")
                        .arg("--connect")
                        .arg(&addr)
                        .args(args)
                        .stdin(Stdio::null())
                        .stdout(Stdio::null())
                        .spawn()
                        .map_err(|e| {
                            MinerError::Distributed(format!(
                                "spawn worker process {}: {e}",
                                exe.display()
                            ))
                        })?;
                    children.push(child);
                }
                WorkerSpawn::Threads(worker_options) => {
                    let addr = addr.clone();
                    let worker_options = *worker_options;
                    threads.push(std::thread::spawn(move || {
                        let _ = run_worker(&addr, &worker_options);
                    }));
                }
            }
        }

        // Accept until every worker is connected or the deadline passes.
        listener
            .set_nonblocking(true)
            .map_err(|e| MinerError::Distributed(format!("listener nonblocking: {e}")))?;
        let deadline = Instant::now() + options.accept_timeout;
        let mut remotes = Vec::with_capacity(options.workers);
        while remotes.len() < options.workers {
            match listener.accept() {
                Ok((stream, peer)) => {
                    stream.set_nonblocking(false).map_err(|e| {
                        MinerError::Distributed(format!("worker stream blocking: {e}"))
                    })?;
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(options.read_timeout);
                    remotes.push(Remote {
                        stream,
                        peer: peer.to_string(),
                        alive: true,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(MinerError::Distributed(format!(
                            "only {}/{} workers connected within {:?}",
                            remotes.len(),
                            options.workers,
                            options.accept_timeout
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    return Err(MinerError::Distributed(format!("accept worker: {e}")));
                }
            }
        }
        Ok(Cluster {
            remotes,
            children,
            threads,
        })
    }

    /// Adopt already-connected worker streams (tests drive misbehaving
    /// workers through this).
    pub fn from_streams(streams: Vec<TcpStream>, read_timeout: Option<Duration>) -> Cluster {
        let remotes = streams
            .into_iter()
            .map(|stream| {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".to_string());
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(read_timeout);
                Remote {
                    stream,
                    peer,
                    alive: true,
                }
            })
            .collect();
        Cluster {
            remotes,
            children: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Number of workers in the pool (alive or lost).
    pub fn len(&self) -> usize {
        self.remotes.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.remotes.is_empty()
    }

    /// Gracefully stop every live worker (Shutdown → Bye), close the
    /// connections, and reap children and threads.
    pub fn shutdown(&mut self) {
        for remote in &mut self.remotes {
            if remote.alive {
                let _ = remote.request(&DistRequest::Shutdown);
                remote.alive = false;
            }
        }
        self.remotes.clear(); // closes the sockets; EOF stops stragglers
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        for mut child in self.children.drain(..) {
            let finished = matches!(child.try_wait(), Ok(Some(_)));
            if !finished {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Where the coordinator's copy of the rows lives. It keeps this copy
/// for the lifetime of the run — that is what makes lost-worker
/// recovery (a local recount of the lost partition) possible.
#[derive(Clone, Copy)]
pub enum Backing<'a> {
    /// An in-memory encoded table.
    Memory(&'a EncodedTable),
    /// An out-of-core chunk store; blocks are re-read from disk on
    /// demand, so peak memory stays one block.
    Chunks(&'a ChunkStore),
}

impl Backing<'_> {
    fn schema(&self) -> &Schema {
        match self {
            Backing::Memory(table) => table.schema(),
            Backing::Chunks(store) => store.schema(),
        }
    }

    fn encoders(&self) -> &[AttributeEncoder] {
        match self {
            Backing::Memory(table) => table.encoders(),
            Backing::Chunks(store) => store.encoders(),
        }
    }

    fn num_rows(&self) -> usize {
        match self {
            Backing::Memory(table) => table.num_rows(),
            Backing::Chunks(store) => store.num_rows(),
        }
    }

    /// Stream rows `[start, end)` as column-major blocks of at most
    /// `max_rows` rows each.
    fn for_each_block(
        &self,
        start: usize,
        end: usize,
        max_rows: usize,
        f: &mut dyn FnMut(Vec<Vec<u32>>, usize) -> Result<(), CountError>,
    ) -> Result<(), CountError> {
        debug_assert!(max_rows >= 1);
        match self {
            Backing::Memory(table) => {
                let ids: Vec<_> = table.schema().iter().map(|(id, _)| id).collect();
                let mut offset = start;
                while offset < end {
                    let stop = (offset + max_rows).min(end);
                    let block: Vec<Vec<u32>> = ids
                        .iter()
                        .map(|&id| table.codes(id)[offset..stop].to_vec())
                        .collect();
                    f(block, stop - offset)?;
                    offset = stop;
                }
                Ok(())
            }
            Backing::Chunks(store) => {
                let mut chunk_start = 0usize;
                for index in 0..store.num_chunks() {
                    if chunk_start >= end {
                        break;
                    }
                    let chunk = store.chunk(index)?;
                    let chunk_end = chunk_start + chunk.num_rows();
                    if chunk_end > start && chunk_start < end {
                        let lo = start.max(chunk_start) - chunk_start;
                        let hi = end.min(chunk_end) - chunk_start;
                        let ids: Vec<_> = chunk.schema().iter().map(|(id, _)| id).collect();
                        let mut offset = lo;
                        while offset < hi {
                            let stop = (offset + max_rows).min(hi);
                            let block: Vec<Vec<u32>> = ids
                                .iter()
                                .map(|&id| chunk.codes(id)[offset..stop].to_vec())
                                .collect();
                            f(block, stop - offset)?;
                            offset = stop;
                        }
                    }
                    chunk_start = chunk_end;
                }
                Ok(())
            }
        }
    }
}

/// The distributed [`CountSource`]: a worker pool plus the retained
/// backing data for lost-partition recovery.
pub struct DistSource<'a> {
    cluster: Cluster,
    backing: Backing<'a>,
    meta: EncodedTable,
    /// Per-worker contiguous row ranges `[start, end)`, cluster order.
    ranges: Vec<(usize, usize)>,
    sink: Option<&'a dyn ProgressSink>,
    cancel: Option<&'a CancelToken>,
    fail_fast: bool,
    local_threads: usize,
    local_kernel: ScanKernel,
    block_rows: usize,
}

impl<'a> DistSource<'a> {
    /// Partition `backing` across the cluster's workers and stream every
    /// partition out. Emits one `worker_joined` event per loaded worker.
    pub fn new(
        cluster: Cluster,
        backing: Backing<'a>,
        config: &MinerConfig,
        sink: Option<&'a dyn ProgressSink>,
        cancel: Option<&'a CancelToken>,
        fail_fast: bool,
    ) -> Result<DistSource<'a>, MinerError> {
        let num_rows = backing.num_rows();
        let workers = cluster.len();
        let base = num_rows / workers.max(1);
        let extra = num_rows % workers.max(1);
        let mut ranges = Vec::with_capacity(workers);
        let mut offset = 0;
        for worker in 0..workers {
            let len = base + usize::from(worker < extra);
            ranges.push((offset, offset + len));
            offset += len;
        }
        let ncols = backing.schema().len();
        let meta = EncodedTable::header_only(
            backing.schema().clone(),
            backing.encoders().to_vec(),
            num_rows,
        );
        let mut source = DistSource {
            cluster,
            backing,
            meta,
            ranges,
            sink,
            cancel,
            fail_fast,
            local_threads: config.effective_parallelism(),
            local_kernel: config.kernel,
            block_rows: (BATCH_BYTES / (4 * ncols.max(1))).max(1),
        };
        source.load()?;
        Ok(source)
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = self.sink {
            sink.on_event(&event);
        }
    }

    /// Declare worker `index` lost during `pass` (0 = the load phase).
    /// Under `fail_fast` the loss becomes the run's error; otherwise the
    /// worker is retired and its range recounted locally from here on.
    fn lose(&mut self, index: usize, pass: usize, detail: String) -> Result<(), MinerError> {
        self.cluster.remotes[index].alive = false;
        self.emit(TraceEvent::WorkerLost {
            worker: index,
            pass,
            detail: detail.clone(),
        });
        if self.fail_fast {
            return Err(MinerError::WorkerLost {
                worker: index,
                pass,
                detail,
            });
        }
        Ok(())
    }

    /// Setup + stream each worker its partition.
    fn load(&mut self) -> Result<(), MinerError> {
        let schema = self.backing.schema().clone();
        let encoders = self.backing.encoders().to_vec();
        for index in 0..self.cluster.len() {
            let (start, end) = self.ranges[index];
            let result = self.load_worker(index, start, end, &schema, &encoders);
            match result {
                Ok(()) => {
                    let peer = self.cluster.remotes[index].peer.clone();
                    self.emit(TraceEvent::WorkerJoined {
                        worker: index,
                        addr: peer,
                        rows: (end - start) as u64,
                    });
                }
                Err(detail) => self.lose(index, 0, detail)?,
            }
        }
        Ok(())
    }

    fn load_worker(
        &mut self,
        index: usize,
        start: usize,
        end: usize,
        schema: &Schema,
        encoders: &[AttributeEncoder],
    ) -> Result<(), String> {
        let setup = DistRequest::Setup {
            schema: schema.clone(),
            encoders: encoders.to_vec(),
        };
        match self.cluster.remotes[index].request(&setup)? {
            DistResponse::Ready => {}
            other => return Err(format!("expected Ready, got {}", describe(&other))),
        }
        let mut loaded = 0u64;
        let block_rows = self.block_rows;
        // Borrow dance: the block callback needs the remote mutably while
        // `self.backing` is iterated, so split the borrows up front.
        let remote = &mut self.cluster.remotes[index];
        let backing = self.backing;
        let mut stream_error: Option<String> = None;
        let walk = backing.for_each_block(start, end, block_rows, &mut |columns, _rows| {
            match remote.request(&DistRequest::Rows { columns }) {
                Ok(DistResponse::RowsLoaded { total_rows }) => {
                    loaded = total_rows;
                    Ok(())
                }
                Ok(other) => {
                    stream_error = Some(format!("expected RowsLoaded, got {}", describe(&other)));
                    Err(CountError::Cancelled) // any error stops the walk
                }
                Err(detail) => {
                    stream_error = Some(detail);
                    Err(CountError::Cancelled)
                }
            }
        });
        if let Some(detail) = stream_error {
            return Err(detail);
        }
        if let Err(CountError::Failed(e)) = walk {
            return Err(format!("reading backing rows: {e}"));
        }
        if loaded != (end - start) as u64 {
            return Err(format!(
                "worker reports {loaded} rows loaded, expected {}",
                end - start
            ));
        }
        Ok(())
    }

    fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    fn local_scan_options(&self) -> ScanOptions<'a> {
        ScanOptions {
            cancel: self.cancel,
            kernel: self.local_kernel,
            ..ScanOptions::new(self.local_threads)
        }
    }

    /// Locally histogram rows `[start, end)` into `acc[attr][code]`.
    fn local_value_counts(
        &self,
        start: usize,
        end: usize,
        acc: &mut [Vec<u64>],
    ) -> Result<(), CountError> {
        self.backing
            .for_each_block(start, end, self.block_rows, &mut |columns, _rows| {
                for (attr, col) in columns.iter().enumerate() {
                    for &code in col {
                        acc[attr][code as usize] += 1;
                    }
                }
                Ok(())
            })
    }

    /// Locally count `candidates` over rows `[start, end)` into `acc`.
    fn local_count(
        &self,
        start: usize,
        end: usize,
        candidates: &[Itemset],
        acc: &mut [u64],
    ) -> Result<(), CountError> {
        let schema = self.meta.schema().clone();
        let encoders = self.meta.encoders().to_vec();
        let options = self.local_scan_options();
        self.backing
            .for_each_block(start, end, self.block_rows, &mut |columns, rows| {
                let block =
                    EncodedTable::from_parts(schema.clone(), encoders.clone(), columns, rows);
                let (counts, _) = count_candidates_opts(&block, candidates, None, options)?;
                for (a, b) in acc.iter_mut().zip(counts) {
                    *a += b;
                }
                Ok(())
            })
    }

    /// Candidate batches whose encoded frames stay under the wire
    /// budget: byte size is `8 + 12·items` per candidate (the catalog
    /// itemset codec) plus the fixed request header fields.
    fn batches(candidates: &[Itemset]) -> Vec<(usize, usize)> {
        let mut batches = Vec::new();
        let mut start = 0;
        let mut bytes = 12usize; // pass + count prefix
        for (i, candidate) in candidates.iter().enumerate() {
            let size = 8 + 12 * candidate.items().len();
            if i > start && bytes + size > BATCH_BYTES.min(MAX_PAYLOAD as usize - 64) {
                batches.push((start, i));
                start = i;
                bytes = 12;
            }
            bytes += size;
        }
        if start < candidates.len() {
            batches.push((start, candidates.len()));
        }
        batches
    }

    /// Gracefully stop the cluster. Implicit on drop; explicit here so
    /// callers can sequence it before reading run results.
    pub fn shutdown(mut self) {
        self.cluster.shutdown();
    }

    /// Indices of workers still alive.
    fn alive(&self) -> Vec<usize> {
        (0..self.cluster.len())
            .filter(|&i| self.cluster.remotes[i].alive)
            .collect()
    }
}

impl CountSource for DistSource<'_> {
    fn meta(&self) -> &EncodedTable {
        &self.meta
    }

    fn num_rows(&self) -> u64 {
        self.backing.num_rows() as u64
    }

    fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError> {
        if self.is_cancelled() {
            return Err(CountError::Cancelled);
        }
        let started = Instant::now();
        let mut merged: Vec<Vec<u64>> = self
            .meta
            .schema()
            .iter()
            .map(|(id, _)| vec![0u64; self.meta.cardinality(id) as usize])
            .collect();

        // Broadcast, then collect — workers count their partitions
        // concurrently while the coordinator waits.
        let polled = self.alive();
        let mut sent = Vec::new();
        for &index in &polled {
            match self.cluster.remotes[index].send(&DistRequest::CountItems) {
                Ok(()) => sent.push(index),
                Err(detail) => self.lose(index, 1, detail)?,
            }
        }
        let mut merged_workers = 0usize;
        for index in sent {
            match self.cluster.remotes[index].receive() {
                Ok(DistResponse::ItemCounts { counts })
                    if counts.len() == merged.len()
                        && counts
                            .iter()
                            .zip(&merged)
                            .all(|(got, want)| got.len() == want.len()) =>
                {
                    for (acc, add) in merged.iter_mut().zip(&counts) {
                        for (a, b) in acc.iter_mut().zip(add) {
                            *a += b;
                        }
                    }
                    merged_workers += 1;
                }
                Ok(other) => {
                    self.lose(
                        index,
                        1,
                        format!("malformed item counts ({})", describe(&other)),
                    )?;
                }
                Err(detail) => self.lose(index, 1, detail)?,
            }
        }

        // Recount every retired partition locally.
        for index in 0..self.cluster.len() {
            if !self.cluster.remotes[index].alive {
                let (start, end) = self.ranges[index];
                self.local_value_counts(start, end, &mut merged)?;
            }
        }
        self.emit(TraceEvent::PassMerged {
            pass: 1,
            workers: merged_workers,
            candidates: 0,
            elapsed_us: micros(started.elapsed()),
        });
        Ok(merged)
    }

    fn count(&mut self, pass: usize, candidates: &[Itemset]) -> Result<Vec<u64>, CountError> {
        let started = Instant::now();
        let mut result = vec![0u64; candidates.len()];
        let mut merged_workers_min = usize::MAX;
        for (batch_start, batch_end) in Self::batches(candidates) {
            if self.is_cancelled() {
                return Err(CountError::Cancelled);
            }
            let batch = &candidates[batch_start..batch_end];
            let request = DistRequest::CountCandidates {
                pass: pass as u32,
                candidates: batch.to_vec(),
            };
            let polled = self.alive();
            let mut sent = Vec::new();
            for &index in &polled {
                match self.cluster.remotes[index].send(&request) {
                    Ok(()) => sent.push(index),
                    Err(detail) => self.lose(index, pass, detail)?,
                }
            }
            let mut merged_workers = 0usize;
            for index in sent {
                match self.cluster.remotes[index].receive() {
                    Ok(DistResponse::Counts { counts }) if counts.len() == batch.len() => {
                        for (a, b) in result[batch_start..batch_end].iter_mut().zip(counts) {
                            *a += b;
                        }
                        merged_workers += 1;
                    }
                    Ok(other) => {
                        self.lose(
                            index,
                            pass,
                            format!("malformed counts ({})", describe(&other)),
                        )?;
                    }
                    Err(detail) => self.lose(index, pass, detail)?,
                }
            }
            merged_workers_min = merged_workers_min.min(merged_workers);

            // Every partition not covered remotely — retired before this
            // call or lost during this batch — is recounted locally.
            for index in 0..self.cluster.len() {
                if !self.cluster.remotes[index].alive {
                    let (start, end) = self.ranges[index];
                    self.local_count(start, end, batch, &mut result[batch_start..batch_end])?;
                }
            }
        }
        self.emit(TraceEvent::PassMerged {
            pass,
            workers: if merged_workers_min == usize::MAX {
                0
            } else {
                merged_workers_min
            },
            candidates: candidates.len(),
            elapsed_us: micros(started.elapsed()),
        });
        Ok(result)
    }
}

/// A terse response description for loss details (never the payload —
/// a malformed count vector could be megabytes).
fn describe(response: &DistResponse) -> &'static str {
    match response {
        DistResponse::Ready => "Ready",
        DistResponse::RowsLoaded { .. } => "RowsLoaded",
        DistResponse::ItemCounts { .. } => "ItemCounts of the wrong shape",
        DistResponse::Counts { .. } => "Counts of the wrong length",
        DistResponse::Bye => "Bye",
        DistResponse::Error { .. } => "Error",
    }
}

/// Options of [`mine_distributed`].
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Number of workers.
    pub workers: usize,
    /// How to start them.
    pub spawn: WorkerSpawn,
    /// Per-response read timeout (`None` waits forever).
    pub read_timeout: Option<Duration>,
    /// Surface a lost worker as [`MinerError::WorkerLost`] instead of
    /// recovering by local recount.
    pub fail_fast: bool,
}

impl Default for DistOptions {
    fn default() -> Self {
        let defaults = ClusterOptions::default();
        DistOptions {
            workers: defaults.workers,
            spawn: defaults.spawn,
            read_timeout: defaults.read_timeout,
            fail_fast: false,
        }
    }
}

/// Run the complete Steps 3–5 pipeline with counting distributed across
/// a worker pool. Bit-identical to the serial
/// [`qar_core::Miner::mine_encoded`] on the same data: same frequent
/// itemsets, supports, rules, and interest verdicts.
pub fn mine_distributed(
    backing: Backing<'_>,
    config: &MinerConfig,
    options: &DistOptions,
    sink: Option<&dyn ProgressSink>,
    cancel: Option<&CancelToken>,
) -> Result<MiningOutput, MinerError> {
    mine_distributed_captured(backing, config, options, sink, cancel).map(|(output, _)| output)
}

/// [`mine_distributed`] that also returns the raw tallies of every
/// counting pass ([`CapturedCounts`]) — what `qar mine --store` persists
/// as the catalog's `COUNTS` section so later runs can update it by
/// scanning only appended rows. Capture wraps the merged coordinator-side
/// counts, so the tallies are bit-identical to a serial capture of the
/// same data.
pub fn mine_distributed_captured(
    backing: Backing<'_>,
    config: &MinerConfig,
    options: &DistOptions,
    sink: Option<&dyn ProgressSink>,
    cancel: Option<&CancelToken>,
) -> Result<(MiningOutput, CapturedCounts), MinerError> {
    let cluster = Cluster::start(&ClusterOptions {
        workers: options.workers,
        spawn: options.spawn.clone(),
        read_timeout: options.read_timeout,
        accept_timeout: ClusterOptions::default().accept_timeout,
    })?;
    let mut source = DistSource::new(cluster, backing, config, sink, cancel, options.fail_fast)?;
    let result = mine_source_captured(&mut source, config, sink, cancel);
    source.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_core::frequent::attribute_value_counts;
    use qar_core::source::mine_source;
    use qar_core::Miner;
    use qar_store::Catalog;
    use qar_table::{Table, Value};

    fn people_table() -> Table {
        let schema = Schema::builder()
            .quantitative("Age")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
            (41, "No", 1),
            (45, "Yes", 3),
            (52, "Yes", 2),
            (58, "No", 0),
            (63, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        t
    }

    fn config() -> MinerConfig {
        MinerConfig {
            min_support: 0.2,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: qar_core::PartitionSpec::FixedIntervals(3),
            interest: None,
            ..MinerConfig::default()
        }
    }

    fn encoded() -> EncodedTable {
        let table = people_table();
        let (encoders, _) = qar_core::pipeline::build_encoders(&table, &config()).unwrap();
        EncodedTable::encode(&table, encoders).unwrap()
    }

    fn threads_options(workers: usize) -> DistOptions {
        DistOptions {
            workers,
            spawn: WorkerSpawn::Threads(WorkerOptions::default()),
            read_timeout: Some(Duration::from_secs(30)),
            fail_fast: false,
        }
    }

    fn normalized_catalog_bytes(output: &MiningOutput) -> Vec<u8> {
        let mut stats = output.stats.normalized();
        // `mine_encoded` outputs carry no interval stats (partitioning
        // happened before encoding) — pad like the CLI does.
        if stats.intervals_per_attribute.is_empty() {
            stats.intervals_per_attribute = vec![None; output.encoded.schema().len()];
        }
        Catalog::new(
            output.encoded.schema().clone(),
            output.encoded.encoders().to_vec(),
            output.frequent.num_rows,
            output.rules.clone(),
            output.interest.clone(),
            stats,
        )
        .unwrap()
        .encode()
    }

    fn assert_identical(serial: &MiningOutput, dist: &MiningOutput) {
        assert_eq!(serial.frequent.levels, dist.frequent.levels);
        assert_eq!(serial.rules, dist.rules);
        assert_eq!(
            serial.stats.mine.candidates_per_pass,
            dist.stats.mine.candidates_per_pass
        );
        assert_eq!(
            normalized_catalog_bytes(serial),
            normalized_catalog_bytes(dist),
            "normalized .qarcat bytes must be identical"
        );
    }

    #[test]
    fn distributed_matches_serial_across_worker_counts() {
        let enc = encoded();
        let serial = Miner::new(config()).mine_encoded(&enc).unwrap();
        for workers in [1usize, 2, 3, 5] {
            let dist = mine_distributed(
                Backing::Memory(&enc),
                &config(),
                &threads_options(workers),
                None,
                None,
            )
            .unwrap();
            assert_identical(&serial, &dist);
        }
    }

    #[test]
    fn distributed_capture_matches_serial_capture() {
        let enc = encoded();
        let mut serial_source = qar_core::InMemorySource::new(&enc, &config());
        let (serial, serial_counts) =
            mine_source_captured(&mut serial_source, &config(), None, None).unwrap();
        let (dist, dist_counts) = mine_distributed_captured(
            Backing::Memory(&enc),
            &config(),
            &threads_options(3),
            None,
            None,
        )
        .unwrap();
        assert_identical(&serial, &dist);
        assert_eq!(
            serial_counts, dist_counts,
            "captured raw tallies are bit-identical across topologies"
        );
    }

    #[test]
    fn more_workers_than_rows_still_exact() {
        let enc = encoded();
        let serial = Miner::new(config()).mine_encoded(&enc).unwrap();
        let dist = mine_distributed(
            Backing::Memory(&enc),
            &config(),
            &threads_options(16),
            None,
            None,
        )
        .unwrap();
        assert_identical(&serial, &dist);
    }

    #[test]
    fn distributed_over_chunks_matches_serial() {
        let enc = encoded();
        let serial = Miner::new(config()).mine_encoded(&enc).unwrap();
        let dir = qar_table::chunk::default_spill_dir("dist_chunks");
        let mut store =
            ChunkStore::create(&dir, enc.schema().clone(), enc.encoders().to_vec()).unwrap();
        let table = people_table();
        let mut i = 0;
        while i < table.num_rows() {
            let end = (i + 3).min(table.num_rows());
            let mut part = Table::new(table.schema().clone());
            for r in i..end {
                part.push_row(&table.row(r).to_values()).unwrap();
            }
            store.append_chunk(&part).unwrap();
            i = end;
        }
        let dist = mine_distributed(
            Backing::Chunks(&store),
            &config(),
            &threads_options(2),
            None,
            None,
        )
        .unwrap();
        assert_identical(&serial, &dist);
    }

    #[test]
    fn interest_annotations_survive_distribution() {
        let mut cfg = config();
        cfg.interest = Some(qar_core::InterestConfig {
            level: 1.1,
            mode: qar_core::InterestMode::SupportAndConfidence,
            prune_candidates: true,
        });
        let enc = encoded();
        let serial = Miner::new(cfg.clone()).mine_encoded(&enc).unwrap();
        let dist =
            mine_distributed(Backing::Memory(&enc), &cfg, &threads_options(3), None, None).unwrap();
        assert_identical(&serial, &dist);
        let verdicts = |o: &MiningOutput| -> Vec<bool> {
            o.interest
                .as_ref()
                .unwrap()
                .iter()
                .map(|v| v.interesting)
                .collect()
        };
        assert_eq!(verdicts(&serial), verdicts(&dist));
    }

    /// Partition state of the hand-rolled flaky worker below: schema,
    /// encoders, column-major codes, row count.
    type FlakyPartition = (Schema, Vec<AttributeEncoder>, Vec<Vec<u32>>, usize);

    /// A worker that serves the load phase and pass 1 correctly, then
    /// drops its connection at the first candidate-counting request.
    fn spawn_flaky(addr: String) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).unwrap();
            let mut partition: Option<FlakyPartition> = None;
            loop {
                let Ok(Some(request)) = qar_store::dist::read_request(&mut stream) else {
                    return;
                };
                let response = match request {
                    DistRequest::Setup { schema, encoders } => {
                        let n = schema.len();
                        partition = Some((schema, encoders, vec![Vec::new(); n], 0));
                        DistResponse::Ready
                    }
                    DistRequest::Rows { columns } => {
                        let p = partition.as_mut().unwrap();
                        if !columns.is_empty() {
                            p.3 += columns[0].len();
                            for (col, add) in p.2.iter_mut().zip(columns) {
                                col.extend_from_slice(&add);
                            }
                        }
                        DistResponse::RowsLoaded {
                            total_rows: p.3 as u64,
                        }
                    }
                    DistRequest::CountItems => {
                        let p = partition.as_ref().unwrap();
                        let table =
                            EncodedTable::from_parts(p.0.clone(), p.1.clone(), p.2.clone(), p.3);
                        DistResponse::ItemCounts {
                            counts: attribute_value_counts(&table),
                        }
                    }
                    DistRequest::CountCandidates { .. } => return, // drop mid-pass
                    DistRequest::Shutdown => {
                        let _ = qar_store::dist::write_response(&mut stream, &DistResponse::Bye);
                        return;
                    }
                };
                if qar_store::dist::write_response(&mut stream, &response).is_err() {
                    return;
                }
            }
        })
    }

    /// A 2-worker cluster with deterministic indices: worker 0 is a real
    /// worker, worker 1 drops its connection at the first pass-2 count.
    fn flaky_cluster() -> (Cluster, Vec<std::thread::JoinHandle<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let good_addr = addr.clone();
        let good = std::thread::spawn(move || {
            let _ = crate::worker::run_worker(&good_addr, &WorkerOptions::default());
        });
        let (good_stream, _) = listener.accept().unwrap();
        let flaky = spawn_flaky(addr);
        let (flaky_stream, _) = listener.accept().unwrap();
        let cluster = Cluster::from_streams(
            vec![good_stream, flaky_stream],
            Some(Duration::from_secs(10)),
        );
        (cluster, vec![good, flaky])
    }

    #[test]
    fn lost_worker_recovers_with_local_recount() {
        let enc = encoded();
        let serial = Miner::new(config()).mine_encoded(&enc).unwrap();
        let (cluster, threads) = flaky_cluster();
        let sink = qar_trace::CollectingSink::new();
        let mut source = DistSource::new(
            cluster,
            Backing::Memory(&enc),
            &config(),
            Some(&sink),
            None,
            false,
        )
        .unwrap();
        let dist = mine_source(&mut source, &config(), Some(&sink), None).unwrap();
        source.shutdown();
        for thread in threads {
            let _ = thread.join();
        }
        assert_identical(&serial, &dist);
        let lost: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::WorkerLost { worker, pass, .. } => Some((*worker, *pass)),
                _ => None,
            })
            .collect();
        assert_eq!(lost.len(), 1, "exactly one loss: {lost:?}");
        assert_eq!(lost[0].0, 1, "the flaky worker is index 1");
        assert!(lost[0].1 >= 2, "lost during a candidate pass");
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::WorkerJoined { worker: 1, .. })));
    }

    #[test]
    fn fail_fast_surfaces_worker_lost() {
        let enc = encoded();
        let (cluster, threads) = flaky_cluster();
        let mut source = DistSource::new(
            cluster,
            Backing::Memory(&enc),
            &config(),
            None,
            None,
            true, // fail_fast
        )
        .unwrap();
        let result = mine_source(&mut source, &config(), None, None);
        source.shutdown();
        for thread in threads {
            let _ = thread.join();
        }
        match result {
            Err(MinerError::WorkerLost { worker, pass, .. }) => {
                assert_eq!(worker, 1);
                assert!(pass >= 2);
            }
            Err(other) => panic!("expected WorkerLost, got {other}"),
            Ok(_) => panic!("expected WorkerLost, got Ok"),
        }
    }
}
