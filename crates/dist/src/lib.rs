//! # qar-dist — count-distribution distributed mining
//!
//! Multi-process Apriori in the *count distribution* style: the
//! coordinator keeps the whole level-wise search (candidate generation,
//! frequency decisions, rule generation) and delegates only the counting
//! scans. Each worker owns a disjoint, contiguous partition of the
//! encoded rows; every pass it returns the **raw** `u64` tallies of the
//! coordinator's candidates over its partition, and the coordinator
//! merges them by element-wise addition. Because the merged counts equal
//! a single serial scan's counts exactly — integer addition is the whole
//! merge — the distributed result is bit-identical to the serial miner:
//! same frequent itemsets, supports, rules, and (with normalized stats)
//! the same `.qarcat` bytes.
//!
//! The pieces:
//!
//! * [`worker`] — the worker side: a serve loop over the
//!   [`qar_store::dist`] wire protocol (Setup → Rows… → CountItems /
//!   CountCandidates… → Shutdown), counting with the same scan kernels
//!   the serial miner uses;
//! * [`coordinator`] — the coordinator side: [`Cluster`] spawns and
//!   connects workers (child processes of the `qar` binary, or
//!   in-process threads for tests), [`DistSource`] implements
//!   [`qar_core::CountSource`] over the worker pool, and
//!   [`mine_distributed`] runs the complete pipeline;
//! * partial failure — a worker that times out or drops its connection
//!   is declared lost (`worker_lost` trace event). By default the
//!   coordinator *recovers*: it retains the backing data, so it recounts
//!   the lost partition locally and the run still completes with the
//!   exact same answer. With [`DistOptions::fail_fast`] the loss is
//!   surfaced as [`qar_core::MinerError::WorkerLost`] instead.
//!
//! The backing data ([`Backing`]) is either an in-memory
//! [`qar_table::EncodedTable`] or an out-of-core
//! [`qar_table::ChunkStore`], so distributed and chunked mining compose:
//! a table too big for memory can be spilled to chunks *and* farmed out
//! to workers from the same code path.

#![warn(missing_docs)]

pub mod coordinator;
pub mod worker;

pub use coordinator::{
    mine_distributed, mine_distributed_captured, Backing, Cluster, ClusterOptions, DistOptions,
    DistSource, WorkerSpawn,
};
pub use worker::{run_worker, serve_connection, WorkerOptions};
