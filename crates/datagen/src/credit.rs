//! A seeded stand-in for the paper's proprietary evaluation dataset
//! (Section 6): 500,000 records, five quantitative and two categorical
//! attributes, with enough planted correlation structure that the miner
//! finds real rules at the paper's support levels.
//!
//! The causal chain: employee category drives monthly income; income
//! drives the credit limit (banks multiply income) and nudges marital
//! status; the current balance is a skewed fraction of the limit; the
//! year-to-date balance integrates the current balance over a year; the
//! year-to-date interest is a rate applied to the ytd balance. Every
//! quantitative value is snapped to a coarse grid so distinct-value counts
//! stay in the hundreds (full-resolution encoding must stay cheap).

use crate::dist::{categorical, normal, rng, snap};
use qar_table::{Schema, Table, Value};

/// Employee categories, weights roughly pyramid-shaped.
pub const EMPLOYEE_CATEGORIES: [&str; 5] =
    ["hourly", "salaried", "manager", "executive", "retired"];

/// Marital statuses.
pub const MARITAL_STATUSES: [&str; 4] = ["single", "married", "divorced", "widowed"];

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditConfig {
    /// Number of records (the paper used 500,000).
    pub num_records: usize,
    /// RNG seed; identical seeds give identical tables.
    pub seed: u64,
    /// Extra multiplicative noise on the correlated attributes in
    /// `[0, 1]`: 0 = hard-wired correlations (many strong rules), 1 =
    /// mostly noise (few rules).
    pub noise: f64,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            num_records: 500_000,
            seed: 0x51_6D_AD_96, // "SIGMOD 96"
            noise: 0.3,
        }
    }
}

/// The generated dataset.
pub struct CreditDataset {
    /// Generation parameters used.
    pub config: CreditConfig,
    /// The relational table.
    pub table: Table,
}

/// The dataset's schema: two categorical then five quantitative
/// attributes, mirroring the paper's description.
pub fn credit_schema() -> Schema {
    Schema::builder()
        .categorical("employee_category")
        .categorical("marital_status")
        .quantitative("monthly_income")
        .quantitative("credit_limit")
        .quantitative("current_balance")
        .quantitative("ytd_balance")
        .quantitative("ytd_interest")
        .build()
        .expect("static schema is valid")
}

impl CreditDataset {
    /// Generate a dataset.
    ///
    /// A one-factor Gaussian copula drives the quantitative attributes: a
    /// latent "financial standing" factor `f` plus per-attribute noise,
    /// with loadings around 0.5–0.8, gives *moderate* pairwise rank
    /// correlations (the paper's real data plainly had moderate structure
    /// — its total rule counts sit in the low thousands, which rules out
    /// near-deterministic attribute chains). The employee category shifts
    /// income strongly and the latent factor mildly, so categorical ⇒
    /// range rules and mixed multi-attribute rules both exist.
    pub fn generate(config: CreditConfig) -> Self {
        let mut r = rng(config.seed);
        let noise = config.noise.clamp(0.0, 1.0);
        let mut table = Table::with_capacity(credit_schema(), config.num_records);

        // Per-category lognormal income parameters (mu of monthly income).
        let income_mu = [7.2_f64, 7.8, 8.4, 9.1, 7.5]; // e^7.2 ≈ 1340 ... e^9.1 ≈ 8955
        let cat_factor_shift = [-0.3_f64, 0.0, 0.2, 0.5, -0.1];
        let income_sigma = 0.30 + 0.25 * noise;
        // Copula loadings per quantitative attribute; `noise` fades them.
        let fade = 1.0 - 0.5 * noise;
        let load = [
            0.85 * fade,
            0.80 * fade,
            0.65 * fade,
            0.70 * fade,
            0.60 * fade,
        ];

        for _ in 0..config.num_records {
            let cat = categorical(&mut r, &[0.35, 0.30, 0.20, 0.10, 0.05]);
            let f = normal(&mut r, 0.0, 1.0) + cat_factor_shift[cat];
            // Latent score per attribute: loading × factor + own noise.
            let mut z = [0.0f64; 5];
            for (i, slot) in z.iter_mut().enumerate() {
                *slot = load[i] * f + (1.0 - load[i] * load[i]).sqrt() * normal(&mut r, 0.0, 1.0);
            }

            let income = (income_mu[cat] + income_sigma * z[0])
                .exp()
                .clamp(600.0, 25_000.0);

            // Marital status skews with income: richer records marry more.
            let married_w = 0.25 + 0.5 * (income / 10_000.0).min(1.0);
            let marital = categorical(&mut r, &[0.9 - married_w.min(0.65), married_w, 0.12, 0.05]);

            // Remaining marginals are lognormal in their own units.
            let credit_limit = (8.9 + 0.55 * z[1]).exp().clamp(500.0, 120_000.0);
            let current_balance = (6.8 + 0.9 * z[2]).exp().clamp(0.0, 90_000.0);
            let ytd_balance = (9.2 + 0.8 * z[3]).exp().clamp(0.0, 500_000.0);
            let ytd_interest = (4.6 + 0.85 * z[4]).exp().clamp(0.0, 20_000.0);

            table
                .push_row(&[
                    Value::from(EMPLOYEE_CATEGORIES[cat]),
                    Value::from(MARITAL_STATUSES[marital]),
                    Value::Float(snap(income, 25.0)),
                    Value::Float(snap(credit_limit, 100.0)),
                    Value::Float(snap(current_balance, 25.0)),
                    Value::Float(snap(ytd_balance, 250.0)),
                    Value::Float(snap(ytd_interest, 10.0)),
                ])
                .expect("generated rows match the schema");
        }
        CreditDataset { config, table }
    }

    /// Shorthand for a small dataset in tests/benches.
    pub fn small(num_records: usize, seed: u64) -> Self {
        Self::generate(CreditConfig {
            num_records,
            seed,
            ..CreditConfig::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_table::{AttributeId, ColumnStats};

    fn sample() -> CreditDataset {
        CreditDataset::small(5_000, 7)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CreditDataset::small(500, 11);
        let b = CreditDataset::small(500, 11);
        for row in 0..500 {
            assert_eq!(a.table.row(row).to_values(), b.table.row(row).to_values());
        }
        let c = CreditDataset::small(500, 12);
        let differs =
            (0..500).any(|row| a.table.row(row).to_values() != c.table.row(row).to_values());
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn schema_matches_the_paper() {
        let d = sample();
        let s = d.table.schema();
        assert_eq!(s.quantitative_ids().len(), 5);
        assert_eq!(s.categorical_ids().len(), 2);
        assert_eq!(d.table.num_rows(), 5_000);
    }

    #[test]
    fn income_correlates_with_category() {
        let d = sample();
        let cat = d.table.column(AttributeId(0)).as_categorical().unwrap();
        let income = d.table.column(AttributeId(2)).as_quantitative().unwrap();
        let mean_of = |name: &str| {
            let (sum, n) = cat
                .iter()
                .zip(income)
                .filter(|(c, _)| c.as_str() == name)
                .fold((0.0, 0usize), |(s, n), (_, &v)| (s + v, n + 1));
            sum / n as f64
        };
        assert!(mean_of("executive") > 2.0 * mean_of("hourly"));
        assert!(mean_of("manager") > mean_of("salaried"));
    }

    #[test]
    fn credit_limit_tracks_income() {
        let d = sample();
        let income = d.table.column(AttributeId(2)).as_quantitative().unwrap();
        let limit = d.table.column(AttributeId(3)).as_quantitative().unwrap();
        // Pearson correlation must be strongly positive.
        let n = income.len() as f64;
        let mi = income.iter().sum::<f64>() / n;
        let ml = limit.iter().sum::<f64>() / n;
        let cov: f64 = income
            .iter()
            .zip(limit)
            .map(|(&x, &y)| (x - mi) * (y - ml))
            .sum::<f64>()
            / n;
        let sx = (income.iter().map(|&x| (x - mi).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (limit.iter().map(|&y| (y - ml).powi(2)).sum::<f64>() / n).sqrt();
        let r = cov / (sx * sy);
        assert!(r > 0.2, "correlation {r} not moderately positive");
        assert!(r < 0.95, "correlation {r} suspiciously deterministic");
    }

    #[test]
    fn distinct_counts_stay_bounded() {
        let d = sample();
        for id in d.table.schema().quantitative_ids() {
            let stats = ColumnStats::compute(&d.table, id).unwrap();
            assert!(
                stats.distinct() <= 2_000,
                "{}: {} distinct values",
                d.table.schema().attribute(id).name(),
                stats.distinct()
            );
        }
    }

    #[test]
    fn noise_weakens_correlations() {
        let pearson = |d: &CreditDataset, a: usize, b: usize| {
            let x = d.table.column(AttributeId(a)).as_quantitative().unwrap();
            let y = d.table.column(AttributeId(b)).as_quantitative().unwrap();
            let n = x.len() as f64;
            let mx = x.iter().sum::<f64>() / n;
            let my = y.iter().sum::<f64>() / n;
            let cov: f64 = x
                .iter()
                .zip(y)
                .map(|(&u, &v)| (u - mx) * (v - my))
                .sum::<f64>()
                / n;
            let sx = (x.iter().map(|&u| (u - mx).powi(2)).sum::<f64>() / n).sqrt();
            let sy = (y.iter().map(|&v| (v - my).powi(2)).sum::<f64>() / n).sqrt();
            cov / (sx * sy)
        };
        let tight = CreditDataset::generate(CreditConfig {
            num_records: 4_000,
            seed: 5,
            noise: 0.0,
        });
        let loose = CreditDataset::generate(CreditConfig {
            num_records: 4_000,
            seed: 5,
            noise: 1.0,
        });
        assert!(pearson(&tight, 2, 3) > pearson(&loose, 2, 3) + 0.1);
    }
}
