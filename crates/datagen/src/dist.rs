//! Seeded samplers: normal, lognormal, zipf, categorical — built on the
//! uniform primitives of the in-repo [`qar_prng`] generator, so the whole
//! crate builds with no external dependencies.

use qar_prng::Prng;

/// Create the crate's standard deterministic RNG.
pub fn rng(seed: u64) -> Prng {
    Prng::seed_from_u64(seed)
}

/// Standard normal via Box–Muller.
pub fn normal(rng: &mut Prng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Lognormal: `exp(N(mu, sigma))`.
pub fn lognormal(rng: &mut Prng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample an index from explicit (unnormalized) weights.
pub fn categorical(rng: &mut Prng, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// A Zipf(s) sampler over `{0, .., n-1}` using a precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty");
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank (0 = most probable).
    pub fn sample(&self, rng: &mut Prng) -> usize {
        let x: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

/// Round `x` to the nearest multiple of `grid` (keeps distinct-value
/// counts bounded so full-resolution encoding stays cheap).
pub fn snap(x: f64, grid: f64) -> f64 {
    (x / grid).round() * grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..100 {
            assert_eq!(normal(&mut a, 0.0, 1.0), normal(&mut b, 0.0, 1.0));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(42);
        let n = 20000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn lognormal_positive_and_skewed() {
        let mut r = rng(1);
        let samples: Vec<f64> = (0..5000).map(|_| lognormal(&mut r, 0.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[samples.len() / 2];
        assert!(mean > median, "lognormal is right-skewed");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng(9);
        let mut counts = [0usize; 3];
        for _ in 0..30000 {
            counts[categorical(&mut r, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30000.0;
        assert!((frac2 - 0.7).abs() < 0.02, "frac {frac2}");
    }

    #[test]
    fn zipf_head_heavy() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng(3);
        let mut counts = vec![0usize; 100];
        for _ in 0..50000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 10 * counts[50].max(1));
    }

    #[test]
    fn snap_rounds_to_grid() {
        assert_eq!(snap(1234.0, 50.0), 1250.0);
        assert_eq!(snap(1224.0, 50.0), 1200.0);
        assert_eq!(snap(-77.0, 25.0), -75.0);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
