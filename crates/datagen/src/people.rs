//! The worked-example "People" table of Figures 1 and 3.

use qar_table::{Schema, Table, Value};

/// The five-record People table the paper uses throughout:
///
/// | RecordID | Age | Married | NumCars |
/// |----------|-----|---------|---------|
/// | 100      | 23  | No      | 1       |
/// | 200      | 25  | Yes     | 1       |
/// | 300      | 29  | No      | 0       |
/// | 400      | 34  | Yes     | 2       |
/// | 500      | 38  | Yes     | 2       |
///
/// Attributes are named `Age`, `Married`, `NumCars` in that order.
pub fn people_table() -> Table {
    let schema = Schema::builder()
        .quantitative("Age")
        .categorical("Married")
        .quantitative("NumCars")
        .build()
        .expect("static schema is valid");
    let mut table = Table::new(schema);
    for (age, married, cars) in [
        (23, "No", 1),
        (25, "Yes", 1),
        (29, "No", 0),
        (34, "Yes", 2),
        (38, "Yes", 2),
    ] {
        table
            .push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
            .expect("static rows are valid");
    }
    table
}

/// The Figure 3(b) partitioning of Age: `[20..24] [25..29] [30..34]
/// [35..39]`, expressed as cut points for
/// `AttributeEncoder::quant_intervals_from`.
pub fn fig3_age_cuts() -> Vec<f64> {
    vec![25.0, 30.0, 35.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure_1() {
        let t = people_table();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(
            t.schema().attribute_by_name("Age").unwrap().kind().name(),
            "quantitative"
        );
        assert_eq!(
            t.schema()
                .attribute_by_name("Married")
                .unwrap()
                .kind()
                .name(),
            "categorical"
        );
        assert_eq!(t.row(3).value(0), Value::Int(34));
        assert_eq!(t.row(2).value(2), Value::Int(0));
    }

    #[test]
    fn age_cuts_partition_into_figure_3b() {
        let cuts = fig3_age_cuts();
        assert_eq!(cuts.len(), 3); // four intervals
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }
}
