//! # qar-datagen — synthetic data for the experiments
//!
//! The paper's evaluation ran on a proprietary IBM dataset: 500,000
//! records with five quantitative attributes (monthly-income,
//! credit-limit, current-balance, year-to-date balance, year-to-date
//! interest) and two categorical ones (employee-category,
//! marital-status). That data is gone; [`credit`] generates a seeded
//! stand-in with the same schema, lognormal-ish marginals and planted
//! cross-attribute correlations, so every figure's sweep exercises the
//! same code paths with the same qualitative behaviour (see DESIGN.md §5).
//!
//! Also here:
//! * [`people`] — the worked-example People table of Figures 1 and 3,
//! * [`quest`] — an IBM Quest-style basket generator for the boolean
//!   Apriori benches,
//! * [`planted`] — a generator that plants known quantitative rules and
//!   reports them, used as a recovery oracle by the integration tests,
//! * [`dist`] — the seeded samplers everything above draws from.

#![warn(missing_docs)]

pub mod credit;
pub mod dist;
pub mod people;
pub mod planted;
pub mod quest;

pub use credit::{CreditConfig, CreditDataset};
pub use people::people_table;
pub use planted::{PlantedConfig, PlantedDataset, PlantedRule};
pub use quest::{QuestConfig, QuestDataset};
