//! An IBM Quest-style synthetic basket generator (the `T..I..D..` datasets
//! of \[AS94\]), used by the boolean Apriori benches.
//!
//! Potentially-frequent itemsets are drawn with sizes around `avg_pattern
//! _len` and head-heavy item popularity; each transaction is filled by
//! sampling patterns (with corruption) until its target length is reached.

use crate::dist::{rng, Zipf};
use qar_apriori::TransactionDb;
use qar_prng::Prng;

/// Generator parameters, mirroring the Quest naming: `T` = average
/// transaction length, `I` = average pattern length, `D` = number of
/// transactions, `N` = item universe, `L` = number of patterns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuestConfig {
    /// Number of transactions (`D`).
    pub num_transactions: usize,
    /// Item universe size (`N`).
    pub num_items: u32,
    /// Average transaction length (`T`).
    pub avg_transaction_len: usize,
    /// Average potentially-frequent pattern length (`I`).
    pub avg_pattern_len: usize,
    /// Number of potentially-frequent patterns (`L`).
    pub num_patterns: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QuestConfig {
    /// T10.I4 over 1000 items with 200 patterns — a scaled-down version of
    /// the classic T10.I4.D100K.
    fn default() -> Self {
        QuestConfig {
            num_transactions: 10_000,
            num_items: 1_000,
            avg_transaction_len: 10,
            avg_pattern_len: 4,
            num_patterns: 200,
            seed: 94,
        }
    }
}

/// The generated basket database plus the patterns that seeded it.
pub struct QuestDataset {
    /// Parameters used.
    pub config: QuestConfig,
    /// The transaction database.
    pub db: TransactionDb,
    /// The potentially-frequent patterns (sorted item lists).
    pub patterns: Vec<Vec<u32>>,
}

fn sample_pattern(r: &mut Prng, zipf: &Zipf, len: usize, num_items: u32) -> Vec<u32> {
    let mut p = Vec::with_capacity(len);
    while p.len() < len {
        let item = (zipf.sample(r) as u32).min(num_items - 1);
        if !p.contains(&item) {
            p.push(item);
        }
    }
    p.sort_unstable();
    p
}

impl QuestDataset {
    /// Generate a dataset.
    pub fn generate(config: QuestConfig) -> Self {
        assert!(config.num_items >= 2, "need an item universe");
        assert!(config.avg_pattern_len >= 1);
        let mut r = rng(config.seed);
        let zipf = Zipf::new(config.num_items as usize, 0.9);

        // Potentially-frequent patterns with Poisson-ish sizes around I.
        let patterns: Vec<Vec<u32>> = (0..config.num_patterns)
            .map(|_| {
                let len = 1 + r.gen_range(0..config.avg_pattern_len * 2 - 1);
                sample_pattern(&mut r, &zipf, len, config.num_items)
            })
            .collect();
        // Pattern popularity is itself head-heavy.
        let pattern_pick = Zipf::new(config.num_patterns, 0.8);

        let mut txns = Vec::with_capacity(config.num_transactions);
        for _ in 0..config.num_transactions {
            let target = 1 + r.gen_range(0..config.avg_transaction_len * 2 - 1);
            let mut t: Vec<u32> = Vec::with_capacity(target + 4);
            while t.len() < target {
                let pat = &patterns[pattern_pick.sample(&mut r)];
                for &item in pat {
                    // Corruption: drop each pattern item 25% of the time.
                    if r.gen_range(0.0..1.0) < 0.75 {
                        t.push(item);
                    }
                }
                // Occasional random noise item.
                if r.gen_range(0.0..1.0) < 0.1 {
                    t.push(r.gen_range(0..config.num_items));
                }
            }
            txns.push(t);
        }
        QuestDataset {
            config,
            db: TransactionDb::from_transactions(txns),
            patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = QuestDataset::generate(QuestConfig {
            num_transactions: 200,
            ..QuestConfig::default()
        });
        let b = QuestDataset::generate(QuestConfig {
            num_transactions: 200,
            ..QuestConfig::default()
        });
        for i in 0..200 {
            assert_eq!(a.db.transaction(i), b.db.transaction(i));
        }
    }

    #[test]
    fn shape_is_plausible() {
        let d = QuestDataset::generate(QuestConfig {
            num_transactions: 2_000,
            ..QuestConfig::default()
        });
        assert_eq!(d.db.len(), 2_000);
        let avg: f64 = d.db.iter().map(|t| t.len()).sum::<usize>() as f64 / d.db.len() as f64;
        // Post-dedup average sits near T (within a generous band).
        assert!(avg > 4.0 && avg < 20.0, "avg transaction length {avg}");
        assert!(d.patterns.len() == 200);
    }

    #[test]
    fn frequent_patterns_actually_occur() {
        // The most popular pattern should appear (as a subset) far more
        // often than chance.
        let d = QuestDataset::generate(QuestConfig {
            num_transactions: 2_000,
            ..QuestConfig::default()
        });
        let pat = &d.patterns[0];
        let hits =
            d.db.iter()
                .filter(|t| pat.iter().all(|i| t.contains(i)))
                .count();
        assert!(hits > 20, "pattern {pat:?} occurred only {hits} times");
    }

    #[test]
    fn items_within_universe() {
        let d = QuestDataset::generate(QuestConfig {
            num_transactions: 500,
            num_items: 50,
            ..QuestConfig::default()
        });
        assert!(d.db.num_items() <= 50);
    }
}
