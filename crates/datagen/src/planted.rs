//! A generator that plants known quantitative rules — the recovery oracle
//! for the end-to-end tests: whatever the miner's internals do, the
//! planted rules must come out.

use crate::dist::rng;
use qar_table::{Schema, Table, Value};

/// One planted implication over the generated table.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedRule {
    /// Antecedent: `x0 ∈ [lo, hi]` (raw integer values).
    pub antecedent_range: (i64, i64),
    /// Consequent description: either the categorical label forced on
    /// attribute `c`, or the range forced on `x1`.
    pub consequent: PlantedConsequent,
    /// Probability the consequent was applied inside the antecedent range.
    pub confidence: f64,
}

/// The consequent side of a planted rule.
#[derive(Debug, Clone, PartialEq)]
pub enum PlantedConsequent {
    /// Attribute `c` takes this label.
    Category(&'static str),
    /// Attribute `x1` falls in this raw-value range.
    Range(i64, i64),
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantedConfig {
    /// Number of records.
    pub num_records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            num_records: 10_000,
            seed: 1996,
        }
    }
}

/// The generated table plus the ground truth.
pub struct PlantedDataset {
    /// The table: quantitative `x0`, `x1`, `x2` (uniform 0..=99 where not
    /// forced) and categorical `c` over {"A","B","C","D"}.
    pub table: Table,
    /// The rules that were planted.
    pub rules: Vec<PlantedRule>,
}

impl PlantedDataset {
    /// Generate with two planted rules:
    /// 1. `x0 ∈ [20, 39] ⇒ c = "A"` at 90 % confidence;
    /// 2. `x0 ∈ [60, 79] ⇒ x1 ∈ [10, 19]` at 85 % confidence.
    ///
    /// `x2` is pure noise, and outside the antecedent ranges the
    /// consequents are uniform, so the planted rules stand far above
    /// background confidence (≈ 25 % and ≈ 10 %).
    pub fn generate(config: PlantedConfig) -> Self {
        let schema = Schema::builder()
            .quantitative("x0")
            .quantitative("x1")
            .quantitative("x2")
            .categorical("c")
            .build()
            .expect("static schema");
        let mut table = Table::with_capacity(schema, config.num_records);
        let mut r = rng(config.seed);
        let labels = ["A", "B", "C", "D"];
        for _ in 0..config.num_records {
            let x0: i64 = r.gen_range(0..100);
            let in_rule1 = (20..=39).contains(&x0);
            let in_rule2 = (60..=79).contains(&x0);
            let c = if in_rule1 && r.gen_range(0.0..1.0) < 0.9 {
                "A"
            } else {
                labels[r.gen_range(0..4)]
            };
            let x1: i64 = if in_rule2 && r.gen_range(0.0..1.0) < 0.85 {
                r.gen_range(10..20)
            } else {
                r.gen_range(0..100)
            };
            let x2: i64 = r.gen_range(0..100);
            table
                .push_row(&[
                    Value::Int(x0),
                    Value::Int(x1),
                    Value::Int(x2),
                    Value::from(c),
                ])
                .expect("rows match schema");
        }
        PlantedDataset {
            table,
            rules: vec![
                PlantedRule {
                    antecedent_range: (20, 39),
                    consequent: PlantedConsequent::Category("A"),
                    confidence: 0.9,
                },
                PlantedRule {
                    antecedent_range: (60, 79),
                    consequent: PlantedConsequent::Range(10, 19),
                    confidence: 0.85,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_table::AttributeId;

    #[test]
    fn planted_confidences_hold_in_raw_data() {
        let d = PlantedDataset::generate(PlantedConfig::default());
        let x0 = d.table.column(AttributeId(0)).as_quantitative().unwrap();
        let x1 = d.table.column(AttributeId(1)).as_quantitative().unwrap();
        let c = d.table.column(AttributeId(3)).as_categorical().unwrap();

        let in1: Vec<usize> = (0..d.table.num_rows())
            .filter(|&i| (20.0..=39.0).contains(&x0[i]))
            .collect();
        let conf1 = in1.iter().filter(|&&i| c[i] == "A").count() as f64 / in1.len() as f64;
        assert!(conf1 > 0.85, "rule 1 confidence {conf1}");
        // Antecedent covers ~20 % of records.
        let frac = in1.len() as f64 / d.table.num_rows() as f64;
        assert!((frac - 0.2).abs() < 0.02, "antecedent fraction {frac}");

        let in2: Vec<usize> = (0..d.table.num_rows())
            .filter(|&i| (60.0..=79.0).contains(&x0[i]))
            .collect();
        let conf2 = in2
            .iter()
            .filter(|&&i| (10.0..=19.0).contains(&x1[i]))
            .count() as f64
            / in2.len() as f64;
        assert!(conf2 > 0.8, "rule 2 confidence {conf2}");

        // Background confidence stays low outside the ranges.
        let out1: Vec<usize> = (0..d.table.num_rows())
            .filter(|&i| !(20.0..=39.0).contains(&x0[i]))
            .collect();
        let bg = out1.iter().filter(|&&i| c[i] == "A").count() as f64 / out1.len() as f64;
        assert!(bg < 0.35, "background confidence {bg}");
    }

    #[test]
    fn deterministic() {
        let a = PlantedDataset::generate(PlantedConfig::default());
        let b = PlantedDataset::generate(PlantedConfig::default());
        for i in (0..a.table.num_rows()).step_by(997) {
            assert_eq!(a.table.row(i).to_values(), b.table.row(i).to_values());
        }
        assert_eq!(a.rules, b.rules);
    }
}
