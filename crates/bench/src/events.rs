//! Aggregating trace events into the totals the benchmarks report.
//!
//! The benches attach a [`qar_trace::CollectingSink`] to the miner and
//! fold the emitted [`TraceEvent`] stream with [`pass_totals`] — the same
//! event stream the CLI's `--trace` flag exposes, so the harness has no
//! private timing channel into the miner.

use qar_trace::TraceEvent;
use std::time::Duration;

/// Totals over the counting passes (`pass_finished` events with
/// `pass >= 2`; pass 1 is the per-attribute item scan and has no shard
/// structure).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassTotals {
    /// Number of counting passes observed.
    pub passes: usize,
    /// Candidates counted across all passes.
    pub candidates: usize,
    /// Frequent itemsets found across all passes.
    pub frequent: usize,
    /// Summed record-scan wall-clock (elapsed time of each pass's whole
    /// fan-out/join region).
    pub scan_wall: Duration,
    /// Summed per-shard busy time; `busy / scan_wall` is the effective
    /// parallel speedup of the scans.
    pub shard_busy: Duration,
    /// Summed counter-merge time.
    pub merge: Duration,
    /// Largest single-pass peak counter estimate, in bytes.
    pub peak_counter_bytes: usize,
}

/// Fold a run's event stream into per-pass totals.
pub fn pass_totals(events: &[TraceEvent]) -> PassTotals {
    let mut totals = PassTotals::default();
    for event in events {
        if let TraceEvent::PassFinished {
            pass,
            candidates,
            frequent,
            counter_bytes,
            scan_us,
            merge_us,
            shard_scan_us,
            ..
        } = event
        {
            if *pass < 2 {
                continue;
            }
            totals.passes += 1;
            totals.candidates += candidates;
            totals.frequent += frequent;
            totals.scan_wall += Duration::from_micros(*scan_us);
            totals.shard_busy += shard_scan_us
                .iter()
                .map(|&us| Duration::from_micros(us))
                .sum();
            totals.merge += Duration::from_micros(*merge_us);
            totals.peak_counter_bytes = totals.peak_counter_bytes.max(*counter_bytes);
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(pass: usize, scan_us: u64, shards: Vec<u64>) -> TraceEvent {
        TraceEvent::PassFinished {
            pass,
            candidates: 10,
            frequent: 4,
            pruned: 0,
            super_candidates: 3,
            array_backed: 2,
            rtree_backed: 1,
            hash_tree_nodes: 5,
            counter_bytes: 1000 * pass,
            scan_us,
            merge_us: 7,
            shard_scan_us: shards,
            pooled: true,
            memoized: false,
            distinct_tuples: 0,
            memo_hits: 0,
            kernel: "direct".to_string(),
        }
    }

    #[test]
    fn totals_skip_pass_one_and_sum_the_rest() {
        let events = vec![
            TraceEvent::RunStarted {
                rows: 100,
                attributes: 3,
                min_count: 10,
                max_count: 40,
                parallelism: 2,
            },
            finished(1, 999, vec![]),
            finished(2, 100, vec![60, 55]),
            finished(3, 50, vec![30, 28]),
            TraceEvent::RunFinished {
                passes: 3,
                frequent_total: 8,
                elapsed_us: 400,
            },
        ];
        let totals = pass_totals(&events);
        assert_eq!(totals.passes, 2);
        assert_eq!(totals.candidates, 20);
        assert_eq!(totals.frequent, 8);
        assert_eq!(totals.scan_wall, Duration::from_micros(150));
        assert_eq!(totals.shard_busy, Duration::from_micros(173));
        assert_eq!(totals.merge, Duration::from_micros(14));
        assert_eq!(totals.peak_counter_bytes, 3000);
    }

    #[test]
    fn empty_stream_is_all_zero() {
        assert_eq!(pass_totals(&[]), PassTotals::default());
    }
}
