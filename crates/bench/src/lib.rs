//! # qar-bench — benchmark and experiment harness
//!
//! One binary per evaluation figure of the paper (`src/bin/`):
//!
//! * `fig7` — interesting-rule counts vs. partial completeness level,
//! * `fig8` — % rules interesting vs. interest level,
//! * `fig9` — scale-up with the number of records,
//! * `ablation` — counting backend, partitioner, and interest-prune
//!   ablations,
//! * `baselines` — the Section 1.1 boolean-mapping strawman and the PS91
//!   single-pair miner vs. the quantitative miner,
//! * `smoke` — quick end-to-end diagnostic.
//!
//! Microbenches live in `benches/` on the in-repo [`harness`] (the
//! offline build cannot pull in criterion). Shared plumbing is in
//! [`experiments`].

#![warn(missing_docs)]

pub mod events;
pub mod experiments;
pub mod harness;
