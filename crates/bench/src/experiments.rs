//! Shared experiment plumbing: the Section 6 parameter sets and dataset
//! construction used by every figure binary.

use qar_core::{InterestConfig, InterestMode, MinerConfig, PartitionSpec};
use qar_datagen::{CreditConfig, CreditDataset};

/// The paper's Section 6 parameters. Maximum support is the stated 40 %,
/// except that runs below minsup 20 % cap it at 2 × minsup: a fixed 40 %
/// cap at minsup 10 % would make *independent* wide-window pairs frequent
/// (0.4 × 0.4 = 0.16 ≥ 0.1), blowing the frequent-pair count into the
/// millions — which no 1996 hardware could have survived either.
pub fn section6_config(
    minsup: f64,
    minconf: f64,
    completeness: f64,
    interest: Option<f64>,
) -> MinerConfig {
    MinerConfig {
        min_support: minsup,
        min_confidence: minconf,
        max_support: (2.0 * minsup).min(0.4).max(minsup),
        partitioning: PartitionSpec::CompletenessLevel(completeness),
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: interest.map(|level| InterestConfig {
            level,
            mode: InterestMode::SupportOrConfidence,
            prune_candidates: false,
        }),
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    }
}

/// Generate the simulated Section 6 dataset at a given size (fixed seed).
pub fn credit(num_records: usize) -> CreditDataset {
    CreditDataset::generate(CreditConfig {
        num_records,
        ..CreditConfig::default()
    })
}

/// Records for the full experiments; figure binaries accept an override as
/// their first CLI argument so EXPERIMENTS.md runs are reproducible at any
/// scale.
pub fn records_arg(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Render one table row with right-aligned fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, &w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_is_valid() {
        assert!(section6_config(0.2, 0.25, 1.5, Some(1.1))
            .validate()
            .is_ok());
        assert!(section6_config(0.1, 0.5, 5.0, None).validate().is_ok());
    }

    #[test]
    fn row_alignment() {
        let s = row(&["a".into(), "42".into()], &[3, 5]);
        assert_eq!(s, "  a     42");
    }
}
