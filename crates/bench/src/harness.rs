//! A minimal timing harness for the `benches/` targets.
//!
//! Criterion is unavailable offline, and the statistical machinery it
//! brings is overkill for the comparative questions these benches answer
//! (which backend is faster, how does runtime scale). This harness times a
//! closure over a handful of samples after a warmup and prints min /
//! median / mean — enough to read off ratios.
//!
//! Environment knobs:
//!
//! * `QAR_BENCH_SAMPLES` — fixed sample count (default: adaptive, aiming
//!   for ~1 s of total measurement per benchmark, between 5 and 50);
//! * `QAR_BENCH_QUICK` — if set, take 3 samples with no warmup (CI smoke).

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Fastest observed run.
    pub min: Duration,
    /// Median run.
    pub median: Duration,
    /// Mean run.
    pub mean: Duration,
    /// Number of measured runs.
    pub samples: usize,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Time `f`, print a one-line summary labelled `label`, and return the
/// timing summary (for benches that post-process, e.g. speedup ratios).
/// The closure's result is passed through [`std::hint::black_box`] so the
/// work cannot be optimized away.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> Sample {
    let quick = std::env::var_os("QAR_BENCH_QUICK").is_some();

    // Warmup + calibration: one timed run decides the sample count.
    let calibration = {
        let t0 = Instant::now();
        std::hint::black_box(f());
        t0.elapsed()
    };
    let samples = env_usize("QAR_BENCH_SAMPLES").unwrap_or_else(|| {
        if quick {
            3
        } else {
            let budget = Duration::from_secs(1);
            (budget.as_nanos() / calibration.as_nanos().max(1)).clamp(5, 50) as usize
        }
    });

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let sample = Sample {
        min,
        median,
        mean,
        samples,
    };
    println!(
        "{label:<44} min {:>10} | median {:>10} | mean {:>10} | n={samples}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
    sample
}

/// Render one benchmark result as a single JSON line for scripted
/// consumers (CI smoke checks, EXPERIMENTS.md plots): the label, the
/// timings in nanoseconds, the sample count, and any bench-specific
/// extra metrics (e.g. `queries_per_sec`). Keys with non-finite values
/// are emitted as `null` so the line stays valid JSON.
pub fn json_line(label: &str, sample: &Sample, extras: &[(&str, f64)]) -> String {
    let mut s = format!(
        "{{\"bench\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"samples\":{}",
        escape_json(label),
        sample.min.as_nanos(),
        sample.median.as_nanos(),
        sample.mean.as_nanos(),
        sample.samples,
    );
    for (key, value) in extras {
        if value.is_finite() {
            s.push_str(&format!(",\"{}\":{value}", escape_json(key)));
        } else {
            s.push_str(&format!(",\"{}\":null", escape_json(key)));
        }
    }
    s.push('}');
    s
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-readable duration with ~4 significant figures.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_times() {
        std::env::set_var("QAR_BENCH_SAMPLES", "4");
        let s = bench("noop-spin", || {
            let mut x = 0u64;
            for i in 0..10_000u64 {
                x = x.wrapping_add(i * i);
            }
            x
        });
        std::env::remove_var("QAR_BENCH_SAMPLES");
        assert_eq!(s.samples, 4);
        assert!(s.min <= s.median && s.median <= s.mean.max(s.median));
        assert!(s.min > Duration::ZERO);
    }

    #[test]
    fn json_line_is_parseable() {
        let s = Sample {
            min: Duration::from_micros(10),
            median: Duration::from_micros(12),
            mean: Duration::from_micros(13),
            samples: 5,
        };
        let line = json_line("point \"q\"", &s, &[("queries_per_sec", 12_500.0)]);
        let doc = qar_trace::json::parse(&line).expect("valid JSON");
        let obj = doc.as_object().expect("object");
        assert_eq!(obj["bench"].as_str(), Some("point \"q\""));
        assert_eq!(obj["min_ns"].as_u64(), Some(10_000));
        assert_eq!(obj["samples"].as_u64(), Some(5));
        assert_eq!(obj["queries_per_sec"].as_u64(), Some(12_500));
        let nan = json_line("x", &s, &[("rate", f64::NAN)]);
        assert!(qar_trace::json::parse(&nan).is_ok());
        assert!(nan.contains("\"rate\":null"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.500 s");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
    }
}
