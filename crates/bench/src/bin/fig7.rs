//! Figure 7: the effect of the partial completeness level.
//!
//! "Figure 7 shows the number of interesting rules, and the percent of
//! rules found to be interesting, for different interest levels as the
//! partial completeness level increases from 1.5 to 5. The minimum
//! support was set to 20%, minimum confidence to 25%, and maximum support
//! to 40%."
//!
//! Usage: `cargo run --release -p qar-bench --bin fig7 [records]`

use qar_bench::experiments::{credit, records_arg, row, section6_config};
use qar_core::{annotate_interest, InterestConfig, InterestMode, Miner};

fn main() {
    let records = records_arg(500_000);
    let interest_levels = [1.1, 1.5, 2.0];
    let completeness_levels = [1.5, 2.0, 3.0, 4.0, 5.0];

    println!("Figure 7 — partial completeness level sweep");
    println!(
        "dataset: simulated credit data, {records} records; minsup 20%, minconf 25%, maxsup 40%\n"
    );
    let data = credit(records);

    let widths = [6usize, 8, 8, 8, 8, 8, 8, 8];
    let header = row(
        &[
            "K".into(),
            "rules".into(),
            "#int1.1".into(),
            "#int1.5".into(),
            "#int2.0".into(),
            "%int1.1".into(),
            "%int1.5".into(),
            "%int2.0".into(),
        ],
        &widths,
    );
    println!("{header}");
    for &k in &completeness_levels {
        // Mine once per K (rule extraction is interest-independent), then
        // apply the interest measure at each level.
        let config = section6_config(0.20, 0.25, k, None);
        let out = Miner::new(config)
            .mine(&data.table)
            .expect("mining succeeds");
        let total = out.rules.len();
        let mut cells = vec![format!("{k:.1}"), format!("{total}")];
        let mut percents = Vec::new();
        for &level in &interest_levels {
            let verdicts = annotate_interest(
                &out.rules,
                &out.frequent,
                &out.item_supports,
                &InterestConfig {
                    level,
                    mode: InterestMode::SupportOrConfidence,
                    prune_candidates: false,
                },
            );
            let n = verdicts.iter().filter(|v| v.interesting).count();
            cells.push(format!("{n}"));
            percents.push(if total == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * n as f64 / total as f64)
            });
        }
        cells.extend(percents);
        println!("{}", row(&cells, &widths));
    }
    println!(
        "\npaper shape: #interesting decreases as K grows; higher interest level R\n\
         => fewer interesting rules; %interesting rises with K (fewer similar\n\
         fine-grained rules to prune)."
    );
}
