//! Figure 9: scale-up with the number of records.
//!
//! "Figure 9 shows the relative execution time as we increase the number
//! of input records 10-fold from 50,000 to 500,000, for three different
//! levels of minimum support. The times have been normalized with respect
//! to the times for 50,000 records."
//!
//! The paper's cost model (Section 6) splits the runtime into candidate
//! generation (independent of the record count) and support counting
//! (directly proportional to it): "When the number of records is large,
//! this time will dominate the total time. Thus we would expect the
//! algorithm to have near-linear scaleup." On 1996 hardware with
//! disk-resident data the counting component dominated at 50k records
//! already; on a modern in-memory build the record-independent work is a
//! much bigger slice, so this binary reports both the total mining time
//! and the record-scan component — the paper's near-linear claim is about
//! the latter, and the total converges toward it as records grow.
//!
//! Usage: `cargo run --release -p qar-bench --bin fig9 [max_records]`

use qar_bench::experiments::{credit, records_arg, row, section6_config};
use qar_core::pipeline::build_encoders;
use qar_core::Miner;
use qar_table::EncodedTable;
use std::time::Duration;

fn main() {
    let max_records = records_arg(500_000);
    let base = max_records / 10;
    let sizes: Vec<usize> = (1..=10).map(|i| base * i).collect();
    let minsups = [0.30, 0.20, 0.10];
    let completeness = 2.0;

    println!("Figure 9 — scale-up: number of records ({base} .. {max_records})");
    println!("minconf 25%, maxsup = min(40%, 2x minsup), K = {completeness}");
    println!("t = total frequent-itemset time, scan = record-scan component\n");

    let mut header = vec!["records".to_string()];
    for &m in &minsups {
        let pct = (m * 100.0) as u32;
        header.push(format!("t({pct}%)"));
        header.push(format!("scan({pct}%)"));
        header.push(format!("rel({pct}%)"));
    }
    let widths: Vec<usize> = std::iter::once(9usize)
        .chain(std::iter::repeat_n(10, minsups.len() * 3))
        .collect();
    println!("{}", row(&header, &widths));

    let mut baselines: Vec<Option<Duration>> = vec![None; minsups.len()];
    for &n in &sizes {
        let data = credit(n);
        let mut cells = vec![format!("{n}")];
        for (mi, &minsup) in minsups.iter().enumerate() {
            let config = section6_config(minsup, 0.25, completeness, None);
            let (encoders, _) = build_encoders(&data.table, &config).expect("encoders");
            let encoded = EncodedTable::encode(&data.table, encoders).expect("encode");
            // Best of three runs to tame allocator/frequency noise.
            let mut best_total: Option<Duration> = None;
            let mut best_scan: Option<Duration> = None;
            for _ in 0..3 {
                let started = std::time::Instant::now();
                let (_, stats) = Miner::new(config.clone())
                    .frequent_itemsets(&encoded)
                    .expect("mine");
                let total = started.elapsed();
                let scan = stats.total_scan_time();
                if best_total.is_none_or(|b| total < b) {
                    best_total = Some(total);
                }
                if best_scan.is_none_or(|b| scan < b) {
                    best_scan = Some(scan);
                }
            }
            let total = best_total.expect("three runs");
            let scan = best_scan.expect("three runs");
            let baseline = *baselines[mi].get_or_insert(scan);
            cells.push(format!("{:.0}ms", total.as_secs_f64() * 1e3));
            cells.push(format!("{:.0}ms", scan.as_secs_f64() * 1e3));
            cells.push(format!(
                "{:.2}",
                scan.as_secs_f64() / baseline.as_secs_f64()
            ));
        }
        println!("{}", row(&cells, &widths));
    }
    println!(
        "\npaper shape: the scan component scales near-linearly — rel at 10× the\n\
         records ≈ 10; lower minimum support ⇒ more candidates per record ⇒\n\
         larger absolute scan times."
    );
}
