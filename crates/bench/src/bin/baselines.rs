//! Baselines from the paper's Sections 1.1 and 1.3:
//!
//! * **base-bool** — map the table to boolean items over fixed intervals
//!   *without* combining adjacent ranges (Section 1.1's strawman) and run
//!   \[AS94\] Apriori. Demonstrates the paper's "catch-22": coarse
//!   intervals lose confidence (MinConf), fine intervals lose support
//!   (MinSup). Only the quantitative miner recovers the planted rule at
//!   every granularity.
//! * **base-ps91** — \[PS91\] single-⟨attribute, value⟩-pair rules: no
//!   ranges, no multi-attribute antecedents, so the planted range rule is
//!   invisible at any support threshold a single value can't clear.
//!
//! Usage: `cargo run --release -p qar-bench --bin baselines [records]`

use qar_apriori::bridge::to_transactions;
use qar_apriori::{apriori, generate_rules as bool_rules};
use qar_bench::experiments::{records_arg, row};
use qar_core::{Miner, MinerConfig, PartitionSpec};
use qar_datagen::{PlantedConfig, PlantedDataset};
use qar_partition::Partitioner;
use qar_ps91::{mine_pair_rules, Ps91Config};
use qar_table::{AttributeEncoder, AttributeId, AttributeKind, Column, EncodedTable};

fn main() {
    let records = records_arg(50_000);
    println!("Baselines — planted-rule dataset, {records} records");
    println!("ground truth: x0 ∈ [20..39] ⇒ c = \"A\" at 90% confidence (20% support)\n");
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: records,
        seed: 424242,
    });
    let minsup = 0.1;
    let minconf = 0.6;

    // --- The quantitative miner (ours). ---
    let config = MinerConfig {
        min_support: minsup,
        min_confidence: minconf,
        max_support: 0.3,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 2,
        parallelism: None,
        kernel: Default::default(),
    };
    let out = Miner::new(config)
        .mine(&data.table)
        .expect("mining succeeds");
    let recovered = (0..out.rules.len())
        .map(|i| out.format_rule(i))
        .find(|r| r.contains("⟨x0: 20..39⟩ ⇒ ⟨c: A⟩"));
    println!("quantitative miner (range combining, minsup 10%, minconf 60%):");
    match &recovered {
        Some(r) => println!("  RECOVERED: {r}"),
        None => println!("  NOT RECOVERED"),
    }

    // --- Section 1.1 boolean strawman at several fixed granularities. ---
    println!("\nbase-bool — boolean mapping, fixed intervals, no range combining:");
    let widths = [10usize, 16, 14, 20];
    println!(
        "{}",
        row(
            &[
                "intervals".into(),
                "best conf x0⇒A".into(),
                "rules found".into(),
                "failure mode".into(),
            ],
            &widths,
        )
    );
    for intervals in [2usize, 4, 10, 25] {
        let encoders: Vec<AttributeEncoder> = data
            .table
            .schema()
            .iter()
            .map(|(id, def)| match (def.kind(), data.table.column(id)) {
                (AttributeKind::Categorical, Column::Categorical { data }) => {
                    AttributeEncoder::categorical_from(data)
                }
                (AttributeKind::Quantitative, Column::Quantitative { data, integral }) => {
                    let cuts = qar_partition::EquiDepth.cut_points(data, intervals);
                    AttributeEncoder::quant_intervals_from(data, cuts, *integral)
                }
                _ => unreachable!(),
            })
            .collect();
        let encoded = EncodedTable::encode(&data.table, encoders).expect("encode");
        let (db, mapping) = to_transactions(&encoded);
        let frequent = apriori(&db, minsup);
        let rules = bool_rules(&frequent, minconf);
        // Find rules ⟨x0 interval⟩ ⇒ ⟨c = A⟩.
        let x0 = AttributeId(0);
        let c_attr = data.table.schema().id_of("c").expect("attribute c");
        let a_code = encoded
            .encoder(c_attr)
            .encode("c", &qar_table::Value::from("A"))
            .expect("label A");
        let target_item = mapping.item_id(c_attr, a_code);
        let mut best_conf: Option<f64> = None;
        let mut found = 0;
        for r in &rules {
            if r.consequent == vec![target_item]
                && r.antecedent.len() == 1
                && mapping.decode(r.antecedent[0]).0 == x0
            {
                found += 1;
                best_conf = Some(best_conf.map_or(r.confidence, |b: f64| b.max(r.confidence)));
            }
        }
        let failure = match (found, intervals) {
            (0, i) if i >= 10 => "MinSup: intervals too thin",
            (0, _) => "MinConf: intervals too coarse",
            _ if best_conf.unwrap_or(0.0) < 0.85 => "MinConf: diluted",
            _ => "partial (covers one interval)",
        };
        println!(
            "{}",
            row(
                &[
                    format!("{intervals}"),
                    best_conf.map_or("-".into(), |c| format!("{:.1}%", 100.0 * c)),
                    format!("{found}"),
                    failure.into(),
                ],
                &widths,
            )
        );
    }
    println!(
        "  (the strawman can at best report one fixed interval; it never reassembles\n   the true [20..39] antecedent, and fine partitionings drop below minsup)"
    );

    // --- PS91 single-pair rules. ---
    println!("\nbase-ps91 — single ⟨attribute, value⟩ pair rules:");
    let encoded = EncodedTable::encode_full_resolution(&data.table).expect("encode");
    let pair_rules = mine_pair_rules(
        &encoded,
        &Ps91Config {
            min_support: minsup,
            min_confidence: minconf,
        },
    );
    let x0 = AttributeId(0);
    let from_x0 = pair_rules
        .iter()
        .filter(|r| r.antecedent_attr == x0)
        .count();
    println!(
        "  {} pair rules total; {} with antecedent x0 (each x0 value has ~1% support,\n   far below minsup 10% — the planted range rule is structurally unreachable)",
        pair_rules.len(),
        from_x0
    );
}
