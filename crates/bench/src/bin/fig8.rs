//! Figure 8: the effect of the interest level.
//!
//! "Figure 8 shows the fraction of rules identified as 'interesting' as
//! the interest level was increased from 0 (equivalent to not having an
//! interest measure) to 2", for four (minsup, minconf) combinations:
//! (10%, 25%), (10%, 50%), (20%, 25%), (20%, 50%).
//!
//! Usage: `cargo run --release -p qar-bench --bin fig8 [records]`

use qar_bench::experiments::{credit, records_arg, row, section6_config};
use qar_core::{annotate_interest, InterestConfig, InterestMode, Miner};

fn main() {
    let records = records_arg(500_000);
    // K = 2 partial completeness for all runs (the paper reuses the
    // Figure 7 partitioning machinery here).
    let completeness = 2.0;
    let combos = [(0.10, 0.25), (0.10, 0.50), (0.20, 0.25), (0.20, 0.50)];
    let interest_levels: Vec<f64> = (0..=8).map(|i| i as f64 * 0.25).collect();

    println!("Figure 8 — interest level sweep (% of rules found interesting)");
    println!("dataset: simulated credit data, {records} records; maxsup = min(40%, 2x minsup), K = {completeness}\n");
    let data = credit(records);

    let mut widths = vec![6usize];
    widths.extend(std::iter::repeat_n(9, combos.len()));
    let mut header = vec!["R".to_string()];
    header.extend(
        combos
            .iter()
            .map(|&(s, c)| format!("{}%/{}%", (s * 100.0) as u32, (c * 100.0) as u32)),
    );
    println!("{}", row(&header, &widths));

    // Mine once per combo; sweep the interest level over the same rules.
    let outputs: Vec<_> = combos
        .iter()
        .map(|&(minsup, minconf)| {
            let config = section6_config(minsup, minconf, completeness, None);
            Miner::new(config)
                .mine(&data.table)
                .expect("mining succeeds")
        })
        .collect();

    for &level in &interest_levels {
        let mut cells = vec![format!("{level:.2}")];
        for out in &outputs {
            let total = out.rules.len();
            let n = if level == 0.0 {
                total // no interest measure
            } else {
                annotate_interest(
                    &out.rules,
                    &out.frequent,
                    &out.item_supports,
                    &InterestConfig {
                        level,
                        mode: InterestMode::SupportOrConfidence,
                        prune_candidates: false,
                    },
                )
                .iter()
                .filter(|v| v.interesting)
                .count()
            };
            cells.push(if total == 0 {
                "-".into()
            } else {
                format!("{:.1}", 100.0 * n as f64 / total as f64)
            });
        }
        println!("{}", row(&cells, &widths));
    }
    for (out, &(s, c)) in outputs.iter().zip(&combos) {
        println!(
            "total rules at minsup {}%, minconf {}%: {}",
            (s * 100.0) as u32,
            (c * 100.0) as u32,
            out.rules.len()
        );
    }
    println!("\npaper shape: % interesting decreases monotonically as R rises.");
}
