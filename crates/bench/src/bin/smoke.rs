use qar_bench::experiments::section6_config;
use qar_core::Miner;
use qar_trace::{TraceFormat, WriterSink};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // Positional args: N K MAX_SIZE [nointerest] NOISE MINSUP. An optional
    // `--trace json|text` pair anywhere in the list streams the miner's
    // per-pass events to stderr (stdout keeps the report).
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace: Option<TraceFormat> = match args.iter().position(|a| a == "--trace") {
        Some(i) => {
            let fmt = args
                .get(i + 1)
                .expect("--trace needs a value: json | text")
                .parse()
                .expect("--trace value must be json or text");
            args.drain(i..i + 2);
            Some(fmt)
        }
        None => None,
    };
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let k: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let t0 = Instant::now();
    let noise: f64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0.3);
    let data = qar_datagen::CreditDataset::generate(qar_datagen::CreditConfig {
        num_records: n,
        noise,
        ..Default::default()
    });
    println!("generated {n} records in {:?}", t0.elapsed());
    let minsup: f64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let mut config = section6_config(minsup, 0.25, k, Some(1.1));
    config.max_itemset_size = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    if args.get(3).map(String::as_str) == Some("nointerest") {
        config.interest = None;
    }
    let mut miner = Miner::new(config);
    if let Some(format) = trace {
        miner = miner.with_progress(Arc::new(WriterSink::new(format, std::io::stderr())));
    }
    let t1 = Instant::now();
    let out = miner.mine(&data.table).unwrap();
    println!(
        "mined in {:?} (mining {:?})",
        t1.elapsed(),
        out.stats.elapsed_mining
    );
    println!("intervals: {:?}", out.stats.intervals_per_attribute);
    println!(
        "levels: {:?}",
        out.frequent
            .levels
            .iter()
            .map(|l| l.len())
            .collect::<Vec<_>>()
    );
    println!("C_k: {:?}", out.stats.mine.candidates_per_pass);
    println!(
        "rules: {} / interesting: {}",
        out.stats.rules_total, out.stats.rules_interesting
    );
    for (i, _r) in out.rules.iter().enumerate().take(5) {
        println!("  {}", out.format_rule(i));
    }
}
