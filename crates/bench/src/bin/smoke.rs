use qar_bench::experiments::section6_config;
use qar_core::mine_table;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let k: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let t0 = Instant::now();
    let noise: f64 = std::env::args()
        .nth(5)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let data = qar_datagen::CreditDataset::generate(qar_datagen::CreditConfig {
        num_records: n,
        noise,
        ..Default::default()
    });
    println!("generated {n} records in {:?}", t0.elapsed());
    let minsup: f64 = std::env::args()
        .nth(6)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let mut config = section6_config(minsup, 0.25, k, Some(1.1));
    config.max_itemset_size = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if std::env::args().nth(4).as_deref() == Some("nointerest") {
        config.interest = None;
    }
    let t1 = Instant::now();
    let out = mine_table(&data.table, &config).unwrap();
    println!(
        "mined in {:?} (mining {:?})",
        t1.elapsed(),
        out.stats.elapsed_mining
    );
    println!("intervals: {:?}", out.stats.intervals_per_attribute);
    println!(
        "levels: {:?}",
        out.frequent
            .levels
            .iter()
            .map(|l| l.len())
            .collect::<Vec<_>>()
    );
    println!("C_k: {:?}", out.stats.mine.candidates_per_pass);
    println!(
        "rules: {} / interesting: {}",
        out.stats.rules_total, out.stats.rules_interesting
    );
    for (i, _r) in out.rules.iter().enumerate().take(5) {
        println!("  {}", out.format_rule(i));
    }
}
