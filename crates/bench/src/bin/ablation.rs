//! Ablations of the paper's design choices (DESIGN.md §4):
//!
//! * **abl-count** — n-dimensional array vs. R*-tree support counting
//!   (Section 5.2's CPU/memory tradeoff), plus the paper's auto heuristic;
//! * **abl-part** — equi-depth vs. equi-width vs. 1-D k-means partitioning
//!   on the skewed credit data (Lemma 4 / the future-work suggestion);
//! * **abl-iprune** — the Lemma 5 interest prune on/off.
//!
//! Usage: `cargo run --release -p qar-bench --bin ablation [records]`

use qar_bench::experiments::{credit, records_arg, row, section6_config};
use qar_core::{InterestConfig, InterestMode, Miner, MinerConfig, PartitionSpec};
use qar_itemset::CounterKind;
use qar_partition::partitioner::interval_supports;
use qar_partition::{achieved_level, EquiDepth, EquiWidth, KMeans1D, Partitioner};
use qar_table::{AttributeEncoder, AttributeKind, Column, EncodedTable, Table};
use std::time::Instant;

/// Encode `table` with a specific partitioner at a fixed interval count.
fn encode_with(table: &Table, partitioner: &dyn Partitioner, intervals: usize) -> EncodedTable {
    let encoders: Vec<AttributeEncoder> = table
        .schema()
        .iter()
        .map(|(id, def)| match (def.kind(), table.column(id)) {
            (AttributeKind::Categorical, Column::Categorical { data }) => {
                AttributeEncoder::categorical_from(data)
            }
            (AttributeKind::Quantitative, Column::Quantitative { data, integral }) => {
                let cuts = partitioner.cut_points(data, intervals);
                AttributeEncoder::quant_intervals_from(data, cuts, *integral)
            }
            _ => unreachable!("columns match their schema kind"),
        })
        .collect();
    EncodedTable::encode(table, encoders).expect("encoders derived from the table")
}

fn counting_ablation(table: &Table, config: &MinerConfig) {
    println!("— abl-count: counting structure (Section 5.2) —");
    println!("(coarse partitioning, K = 3: the explicit R*-tree path must visit every");
    println!(" matching rectangle per record, so fine partitionings make it explode —");
    println!(" which is the tradeoff this ablation demonstrates)");
    let widths = [10usize, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "backend".into(),
                "time ms".into(),
                "itemsets".into(),
                "arrays".into(),
                "rtrees".into(),
            ],
            &widths,
        )
    );
    let (encoders, _) = qar_core::pipeline::build_encoders(table, config).expect("encoders");
    let encoded = EncodedTable::encode(table, encoders).expect("encode");
    let mut reference: Option<usize> = None;
    for (name, force) in [
        ("auto", None),
        ("array", Some(CounterKind::Array)),
        ("rtree", Some(CounterKind::RTree)),
    ] {
        let t0 = Instant::now();
        let mut miner = Miner::new(config.clone());
        if let Some(kind) = force {
            miner = miner.with_counter(kind);
        }
        let (frequent, stats) = miner.frequent_itemsets(&encoded).expect("mining succeeds");
        let elapsed = t0.elapsed();
        let arrays: usize = stats.pass_stats.iter().map(|p| p.array_backed).sum();
        let rtrees: usize = stats.pass_stats.iter().map(|p| p.rtree_backed).sum();
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{:.1}", elapsed.as_secs_f64() * 1e3),
                    format!("{}", frequent.total()),
                    format!("{arrays}"),
                    format!("{rtrees}"),
                ],
                &widths,
            )
        );
        match reference {
            None => reference = Some(frequent.total()),
            Some(r) => assert_eq!(r, frequent.total(), "backends disagree!"),
        }
    }
    println!("expected: identical itemset counts; array wins CPU at these dimensionalities.\n");
}

fn partitioning_ablation(table: &Table, config: &MinerConfig) {
    println!("— abl-part: partitioning strategy (Lemma 4 / future work) —");
    let intervals = 25;
    let n_quant = table.schema().quantitative_ids().len();
    let widths = [12usize, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "strategy".into(),
                "achieved K".into(),
                "itemsets".into(),
                "rules".into(),
                "time ms".into(),
            ],
            &widths,
        )
    );
    for p in [
        &EquiDepth as &dyn Partitioner,
        &EquiWidth,
        &KMeans1D::default(),
    ] {
        let encoded = encode_with(table, p, intervals);
        // Achieved partial completeness from measured interval supports.
        let sups: Vec<Vec<(f64, bool)>> = table
            .schema()
            .quantitative_ids()
            .iter()
            .map(|&id| {
                let data = table.column(id).as_quantitative().expect("quantitative");
                let cuts = p.cut_points(data, intervals);
                interval_supports(data, &cuts)
            })
            .collect();
        let k = achieved_level(n_quant, config.min_support, &sups);
        let t0 = Instant::now();
        let (frequent, _) = Miner::new(config.clone())
            .frequent_itemsets(&encoded)
            .expect("mining succeeds");
        let rules = qar_core::generate_rules(&frequent, config.min_confidence);
        let elapsed = t0.elapsed();
        println!(
            "{}",
            row(
                &[
                    p.name().into(),
                    format!("{k:.2}"),
                    format!("{}", frequent.total()),
                    format!("{}", rules.len()),
                    format!("{:.1}", elapsed.as_secs_f64() * 1e3),
                ],
                &widths,
            )
        );
    }
    println!("expected: equi-depth achieves the lowest partial-completeness level K\non this skewed (lognormal) data; equi-width piles records into few intervals.\n");
}

fn interest_prune_ablation(table: &Table) {
    println!("— abl-iprune: the Lemma 5 candidate prune —");
    // The prune bites when items may exceed 1/R support: allow wide ranges
    // (maxsup 60 %) and ask for R = 2 (threshold 50 %).
    let mk = |prune: bool| MinerConfig {
        min_support: 0.2,
        min_confidence: 0.25,
        max_support: 0.6,
        partitioning: PartitionSpec::CompletenessLevel(2.0),
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: Some(InterestConfig {
            level: 2.0,
            mode: InterestMode::SupportAndConfidence,
            prune_candidates: prune,
        }),
        // Wide ranges (maxsup 60 %) make C2 quadratic in the item count;
        // cap the pass depth so the no-prune arm stays measurable.
        max_itemset_size: 2,
        parallelism: None,
        kernel: Default::default(),
    };
    let widths = [8usize, 12, 14, 14, 12];
    println!(
        "{}",
        row(
            &[
                "prune".into(),
                "items L1".into(),
                "C2".into(),
                "itemsets".into(),
                "time ms".into(),
            ],
            &widths,
        )
    );
    for prune in [false, true] {
        let config = mk(prune);
        let (encoders, _) = qar_core::pipeline::build_encoders(table, &config).expect("encoders");
        let encoded = EncodedTable::encode(table, encoders).expect("encode");
        let t0 = Instant::now();
        let (frequent, stats) = Miner::new(config.clone())
            .frequent_itemsets(&encoded)
            .expect("mining succeeds");
        let elapsed = t0.elapsed();
        println!(
            "{}",
            row(
                &[
                    format!("{prune}"),
                    format!("{}", frequent.levels.first().map_or(0, |l| l.len())),
                    format!(
                        "{:?}",
                        stats.candidates_per_pass.first().copied().unwrap_or(0)
                    ),
                    format!("{}", frequent.total()),
                    format!("{:.1}", elapsed.as_secs_f64() * 1e3),
                ],
                &widths,
            )
        );
    }
    println!("expected: pruning drops items with support > 1/R = 50%, shrinking C2 and time.\n");
}

fn main() {
    let records = records_arg(50_000);
    println!("Ablations — simulated credit data, {records} records\n");
    let data = credit(records);
    let config = section6_config(0.20, 0.25, 2.0, None);
    let mut count_config = section6_config(0.20, 0.25, 3.0, None);
    count_config.max_itemset_size = 3;
    let count_data = credit(records.min(10_000));
    counting_ablation(&count_data.table, &count_config);
    partitioning_ablation(&data.table, &config);
    interest_prune_ablation(&data.table);
}
