//! Query-throughput benchmark for the `qar-store` catalog + index.
//!
//! Mines the planted dataset once (looser thresholds than the golden
//! snapshot test so the catalog holds a non-trivial number of rules),
//! stores the result as a `.qarcat` byte buffer, then
//! measures the mine-once / query-many path against the *reopened*
//! catalog: decode, index build, point-query batches ("which rules fire
//! for this record"), and range-overlap batches.
//!
//! Usage: `cargo run --release -p qar-bench --bin store_query [records]`
//!
//! Each benchmark prints the human harness line plus one machine line of
//! harness JSON (`json_line`) carrying a `queries_per_sec` extra. The
//! acceptance floor checked by CI is >= 10k point-queries/sec; the run
//! exits non-zero below it.

use qar_bench::experiments::records_arg;
use qar_bench::harness::{bench, json_line};
use qar_core::{Miner, MinerConfig, PartitionSpec};
use qar_datagen::{PlantedConfig, PlantedDataset};
use qar_prng::Prng;
use qar_store::{Catalog, RuleIndex};

/// Queries per measured batch; large enough that per-batch overhead is
/// noise, small enough that a quick run stays under a second.
const BATCH: usize = 10_000;

fn main() {
    let records = records_arg(20_000);
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: records,
        seed: 1996,
    });
    // Looser thresholds than the golden snapshot so the catalog carries
    // enough rules for index timings to mean something.
    let config = MinerConfig {
        min_support: 0.08,
        min_confidence: 0.5,
        max_support: 0.4,
        partitioning: PartitionSpec::FixedIntervals(20),
        interest: None,
        max_itemset_size: 2,
        ..MinerConfig::default()
    };
    let out = Miner::new(config)
        .mine(&data.table)
        .expect("mining succeeds");
    let catalog = Catalog::from_mining(&out);
    let bytes = catalog.encode();
    println!(
        "planted dataset: {records} records -> {} rules, catalog {} bytes\n",
        catalog.rules().len(),
        bytes.len()
    );

    let s = bench("catalog decode", || {
        Catalog::decode(&bytes).expect("decode")
    });
    println!("{}", json_line("catalog_decode", &s, &[]));

    let loaded = Catalog::decode(&bytes).expect("decode");
    let s = bench("index build", || RuleIndex::build(&loaded, None));
    println!("{}", json_line("index_build", &s, &[]));
    let index = RuleIndex::build(&loaded, None);

    // Random full records in code space: one (attribute, code) per
    // attribute, codes drawn uniformly from each encoder's range.
    let mut rng = Prng::seed_from_u64(42);
    let cards: Vec<u32> = loaded.encoders().iter().map(|e| e.cardinality()).collect();
    let queries: Vec<Vec<(u32, u32)>> = (0..BATCH)
        .map(|_| {
            cards
                .iter()
                .enumerate()
                .map(|(attr, &card)| (attr as u32, rng.gen_range(0..card.max(1))))
                .collect()
        })
        .collect();

    let mut hits = 0usize;
    let s = bench(&format!("point queries ({BATCH} per batch)"), || {
        hits = queries.iter().map(|q| index.query_record(q).len()).sum();
        hits
    });
    let point_qps = BATCH as f64 / s.median.as_secs_f64();
    println!(
        "{}",
        json_line(
            "point_query",
            &s,
            &[
                ("queries_per_sec", point_qps),
                ("batch", BATCH as f64),
                ("rules_fired", hits as f64),
            ],
        )
    );

    // Range-overlap queries in raw value space, windows drawn from each
    // quantitative attribute's encoded domain.
    let ranges: Vec<(u32, f64, f64)> = (0..BATCH)
        .map(|_| loop {
            let attr = rng.gen_range(0..cards.len() as u32);
            let encoder = &loaded.encoders()[attr as usize];
            let last = cards[attr as usize] - 1;
            if let Some((dom_lo, dom_hi)) = encoder.numeric_bounds(0, last) {
                let a = dom_lo + rng.gen_f64() * (dom_hi - dom_lo);
                let b = dom_lo + rng.gen_f64() * (dom_hi - dom_lo);
                break (attr, a.min(b), a.max(b));
            }
        })
        .collect();

    let mut mentions = 0usize;
    let s = bench(&format!("range queries ({BATCH} per batch)"), || {
        mentions = ranges
            .iter()
            .map(|&(attr, lo, hi)| index.query_range(attr, lo, hi).len())
            .sum();
        mentions
    });
    let range_qps = BATCH as f64 / s.median.as_secs_f64();
    println!(
        "{}",
        json_line(
            "range_query",
            &s,
            &[
                ("queries_per_sec", range_qps),
                ("batch", BATCH as f64),
                ("rules_mentioned", mentions as f64),
            ],
        )
    );

    println!("\npoint-query throughput: {point_qps:.0} queries/sec (floor 10000)");
    if point_qps < 10_000.0 {
        eprintln!("store_query: below the 10k point-queries/sec floor");
        std::process::exit(1);
    }
}
