//! Scan-kernel throughput benchmark: the support-counting record scan
//! (`count_candidates_opts`) measured serial vs pooled and memoized vs
//! direct, on the two tables that bracket the memo cache's behavior:
//!
//! * **duplicate-heavy** — 3 low-cardinality categorical attributes
//!   (24 distinct tuples cover every row) + 1 small quantitative, the
//!   regime the categorical-tuple cache is built for;
//! * **all-distinct** — every row's categorical tuple is unique, so the
//!   cache saturates at its admission limit and the scan degenerates to
//!   the direct walk plus cache-probe overhead (the worst case the memo
//!   path must not regress).
//!
//! Usage: `cargo run --release -p qar-bench --bin scan_kernel [records]`
//!
//! Each measurement prints the human harness line plus one JSON line
//! (`rows_per_sec` extra). The whole suite is also written as a single
//! JSON document to `BENCH_scan.json` (override the path with
//! `QAR_BENCH_OUT`) — the committed copy at the repo root is the
//! baseline future perf work diffs against. Exit is non-zero when the
//! memoized pooled scan falls below the throughput floor, when
//! memoization fails to beat the direct scan on the duplicate-heavy
//! table, or when it regresses the all-distinct worst case.

use qar_bench::experiments::records_arg;
use qar_bench::harness::{bench, json_line};
use qar_core::supercand::{count_candidates_opts, ScanOptions};
use qar_core::WorkerPool;
use qar_itemset::{Item, Itemset};
use qar_table::{EncodedTable, Schema, Table, Value};

/// Threads for the pooled measurements (the acceptance criteria are
/// stated at 4 threads).
const THREADS: usize = 4;

/// Floors enforced on exit (chosen well under the committed baseline so
/// machine variance in CI cannot trip them spuriously):
/// memoized pooled rows/sec on the duplicate-heavy table…
const FLOOR_ROWS_PER_SEC: f64 = 1_000_000.0;
/// …memoized/direct speedup there (acceptance asks for ≥ 1.4×)…
const FLOOR_DUP_SPEEDUP: f64 = 1.4;
/// …and the memoized/direct ratio on the all-distinct worst case
/// (acceptance allows at most a 5% regression; quick CI runs get slack).
const FLOOR_DISTINCT_RATIO: f64 = 0.80;

/// The duplicate-heavy table: c0 × c1 × c2 cycle through 2 × 3 × 4
/// labels (24 distinct categorical tuples regardless of row count) and
/// q cycles through 5 values.
fn duplicate_heavy(rows: usize) -> EncodedTable {
    let schema = Schema::builder()
        .categorical("c0")
        .categorical("c1")
        .categorical("c2")
        .quantitative("q")
        .build()
        .expect("static schema");
    let mut t = Table::new(schema);
    let c0 = ["a", "b"];
    let c1 = ["u", "v", "w"];
    let c2 = ["p", "q", "r", "s"];
    for i in 0..rows {
        t.push_row(&[
            Value::from(c0[i % c0.len()]),
            Value::from(c1[i % c1.len()]),
            Value::from(c2[i % c2.len()]),
            Value::Int((i % 5) as i64),
        ])
        .expect("row matches schema");
    }
    EncodedTable::encode_full_resolution(&t).expect("encode")
}

/// The all-distinct worst case: three coprime-cardinality categorical
/// attributes whose combined tuple is unique for every row up to
/// 59 × 61 × 57 ≈ 205k, far past the memo admission limit.
fn all_distinct(rows: usize) -> EncodedTable {
    assert!(rows <= 59 * 61 * 57, "tuples would repeat");
    let schema = Schema::builder()
        .categorical("c0")
        .categorical("c1")
        .categorical("c2")
        .quantitative("q")
        .build()
        .expect("static schema");
    let mut t = Table::new(schema);
    for i in 0..rows {
        t.push_row(&[
            Value::from(format!("v{}", i % 59)),
            Value::from(format!("v{}", (i / 59) % 61)),
            Value::from(format!("v{}", (i / (59 * 61)) % 57)),
            Value::Int((i % 5) as i64),
        ])
        .expect("row matches schema");
    }
    EncodedTable::encode_full_resolution(&t).expect("encode")
}

/// A fixed candidate set over the first few codes of each categorical
/// attribute plus quant-range supersets — enough hash-tree depth and
/// rectangle work that the scan resembles a real pass `k ≥ 2`.
fn candidates(encoded: &EncodedTable) -> Vec<Itemset> {
    let card = |attr: usize| {
        encoded
            .encoder(qar_table::AttributeId(attr))
            .cardinality()
            .min(4)
    };
    let (n0, n1, n2) = (card(0), card(1), card(2));
    let mut out = Vec::new();
    for a in 0..n0 {
        for b in 0..n1 {
            out.push(Itemset::new(vec![Item::value(0, a), Item::value(1, b)]));
            for c in 0..n2 {
                out.push(Itemset::new(vec![
                    Item::value(0, a),
                    Item::value(1, b),
                    Item::value(2, c),
                ]));
            }
        }
    }
    // Mixed categorical + quantitative candidates exercise the rect
    // counters behind the tree walk.
    for a in 0..n0 {
        for (lo, hi) in [(0u32, 1u32), (1, 3), (0, 4)] {
            out.push(Itemset::new(vec![
                Item::value(0, a),
                Item::range(3, lo, hi),
            ]));
        }
    }
    out
}

struct Measurement {
    label: String,
    json: String,
    rows_per_sec: f64,
}

/// Time one scan configuration and return its JSON line + throughput.
fn measure(
    table_name: &str,
    encoded: &EncodedTable,
    cands: &[Itemset],
    threads: usize,
    pool: Option<&WorkerPool>,
    memoize: bool,
) -> Measurement {
    let rows = encoded.num_rows() as f64;
    let mode = if memoize { "memo" } else { "direct" };
    let exec = if threads == 1 {
        "serial".to_string()
    } else {
        format!("pooled{threads}")
    };
    let label = format!("{table_name} {exec} {mode}");
    let opts = ScanOptions {
        pool,
        memoize,
        ..ScanOptions::new(threads)
    };
    let sample = bench(&label, || {
        count_candidates_opts(encoded, cands, None, opts).expect("no cancel token")
    });
    let rows_per_sec = rows / sample.median.as_secs_f64();
    let json = json_line(
        &label,
        &sample,
        &[
            ("rows_per_sec", rows_per_sec),
            ("threads", threads as f64),
            ("memoized", if memoize { 1.0 } else { 0.0 }),
        ],
    );
    println!("{json}");
    Measurement {
        label,
        json,
        rows_per_sec,
    }
}

fn main() {
    let records = records_arg(200_000);
    let pool = WorkerPool::new(THREADS);

    let mut results: Vec<Measurement> = Vec::new();
    let mut suite = Vec::new();
    for (name, encoded) in [
        ("dup_heavy", duplicate_heavy(records)),
        ("all_distinct", all_distinct(records.min(59 * 61 * 57))),
    ] {
        let cands = candidates(&encoded);
        println!(
            "\n{name}: {} rows, {} candidates",
            encoded.num_rows(),
            cands.len()
        );
        for (threads, memoize) in [(1, false), (1, true), (THREADS, false), (THREADS, true)] {
            let pool_ref = (threads > 1).then_some(&pool);
            results.push(measure(name, &encoded, &cands, threads, pool_ref, memoize));
        }
        suite.push((name, results.split_off(0)));
    }

    let find = |rs: &[Measurement], needle: &str| -> f64 {
        rs.iter()
            .find(|m| m.label.contains(needle))
            .map(|m| m.rows_per_sec)
            .expect("measurement present")
    };
    let dup = &suite[0].1;
    let distinct = &suite[1].1;
    let dup_memo_4t = find(dup, &format!("pooled{THREADS} memo"));
    let dup_direct_4t = find(dup, &format!("pooled{THREADS} direct"));
    let distinct_memo_4t = find(distinct, &format!("pooled{THREADS} memo"));
    let distinct_direct_4t = find(distinct, &format!("pooled{THREADS} direct"));
    let dup_speedup = dup_memo_4t / dup_direct_4t;
    let distinct_ratio = distinct_memo_4t / distinct_direct_4t;

    // Assemble the committed baseline document: suite metadata, every
    // per-measurement JSON object, and the two acceptance ratios.
    let mut doc = String::from("{\"suite\":\"scan_kernel\"");
    doc.push_str(&format!(",\"records\":{records},\"threads\":{THREADS}"));
    doc.push_str(&format!(
        ",\"dup_memo_speedup_4t\":{dup_speedup:.4},\"distinct_memo_ratio_4t\":{distinct_ratio:.4}"
    ));
    doc.push_str(",\"results\":[");
    let all: Vec<&str> = suite
        .iter()
        .flat_map(|(_, rs)| rs.iter().map(|m| m.json.as_str()))
        .collect();
    doc.push_str(&all.join(","));
    doc.push_str("]}");
    let out_path = std::env::var("QAR_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench JSON");

    println!(
        "\nduplicate-heavy @{THREADS}t: memo {dup_memo_4t:.0} rows/s vs direct \
         {dup_direct_4t:.0} rows/s ({dup_speedup:.2}x, floor {FLOOR_DUP_SPEEDUP}x)"
    );
    println!(
        "all-distinct  @{THREADS}t: memo {distinct_memo_4t:.0} rows/s vs direct \
         {distinct_direct_4t:.0} rows/s (ratio {distinct_ratio:.2}, floor {FLOOR_DISTINCT_RATIO})"
    );
    println!("wrote {out_path}");

    let mut failed = false;
    if dup_memo_4t < FLOOR_ROWS_PER_SEC {
        eprintln!("scan_kernel: memoized pooled scan below {FLOOR_ROWS_PER_SEC} rows/sec");
        failed = true;
    }
    if dup_speedup < FLOOR_DUP_SPEEDUP {
        eprintln!("scan_kernel: memoization speedup {dup_speedup:.2}x below {FLOOR_DUP_SPEEDUP}x");
        failed = true;
    }
    if distinct_ratio < FLOOR_DISTINCT_RATIO {
        eprintln!(
            "scan_kernel: memoization regresses the all-distinct case \
             ({distinct_ratio:.2} < {FLOOR_DISTINCT_RATIO})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
