//! Scan-kernel throughput benchmark: the support-counting record scan
//! (`count_candidates_opts`) measured serial vs pooled across the three
//! concrete kernels (direct, memoized, bitmask), on the two tables that
//! bracket the kernels' behavior:
//!
//! * **duplicate-heavy** — 3 low-cardinality categorical attributes
//!   (24 distinct tuples cover every row) + 1 small quantitative, the
//!   regime the categorical-tuple cache is built for;
//! * **all-distinct** — every row's categorical tuple is unique, so the
//!   cache saturates at its admission limit and the row-wise scan
//!   degenerates to the direct walk. This is the regime the blocked
//!   bitmask kernel exists for: its throughput floor is enforced here.
//!
//! Usage: `cargo run --release -p qar-bench --bin scan_kernel
//! [records] [--seed S]`
//!
//! `--seed` rotates the deterministic table layouts (default 0 keeps the
//! historical tables bit-for-bit), so a floor violation can be replayed
//! on the exact offending table.
//!
//! Each measurement prints the human harness line plus one JSON line
//! (`rows_per_sec` extra). The whole suite is also written as a single
//! JSON document to `BENCH_scan.json` (override the path with
//! `QAR_BENCH_OUT`) — the committed copy at the repo root is the
//! baseline future perf work diffs against. Exit is non-zero when the
//! memoized pooled scan falls below the throughput floor, when
//! memoization fails to beat the direct scan on the duplicate-heavy
//! table, when it regresses the all-distinct worst case, or when the
//! bitmask kernel fails its all-distinct speedup floor.

use qar_bench::harness::{bench, json_line};
use qar_core::supercand::{count_candidates_opts, ScanOptions};
use qar_core::{ScanKernel, WorkerPool};
use qar_itemset::{Item, Itemset};
use qar_table::{EncodedTable, Schema, Table, Value};

/// Threads for the pooled measurements (the acceptance criteria are
/// stated at 4 threads).
const THREADS: usize = 4;

/// Floors enforced on exit (chosen well under the committed baseline so
/// machine variance in CI cannot trip them spuriously):
/// memoized pooled rows/sec on the duplicate-heavy table…
const FLOOR_ROWS_PER_SEC: f64 = 1_000_000.0;
/// …memoized/direct speedup there (acceptance asks for ≥ 1.4×)…
const FLOOR_DUP_SPEEDUP: f64 = 1.4;
/// …the memoized/direct ratio on the all-distinct worst case
/// (acceptance allows at most a 5% regression; quick CI runs get slack)…
const FLOOR_DISTINCT_RATIO: f64 = 0.80;
/// …and the bitmask/direct serial speedup on the all-distinct worst
/// case. The issue floor is ≥ 3× the committed 14.4M rows/s direct
/// baseline; measuring against the same run's direct scan makes the
/// ratio machine-independent, so the floor holds on slower CI hosts too.
const FLOOR_BITMASK_SPEEDUP: f64 = 3.0;

/// Maximum rows before the all-distinct table's tuples would repeat.
const DISTINCT_SPAN: usize = 59 * 61 * 57;

/// The duplicate-heavy table: c0 × c1 × c2 cycle through 2 × 3 × 4
/// labels (24 distinct categorical tuples regardless of row count) and
/// q cycles through 5 values. `seed` rotates the starting phase.
fn duplicate_heavy(rows: usize, seed: u64) -> EncodedTable {
    let schema = Schema::builder()
        .categorical("c0")
        .categorical("c1")
        .categorical("c2")
        .quantitative("q")
        .build()
        .expect("static schema");
    let mut t = Table::new(schema);
    let c0 = ["a", "b"];
    let c1 = ["u", "v", "w"];
    let c2 = ["p", "q", "r", "s"];
    for i in 0..rows {
        let j = i.wrapping_add(seed as usize);
        t.push_row(&[
            Value::from(c0[j % c0.len()]),
            Value::from(c1[j % c1.len()]),
            Value::from(c2[j % c2.len()]),
            Value::Int((j % 5) as i64),
        ])
        .expect("row matches schema");
    }
    EncodedTable::encode_full_resolution(&t).expect("encode")
}

/// The all-distinct worst case: three coprime-cardinality categorical
/// attributes whose combined tuple is unique for every row up to
/// 59 × 61 × 57 ≈ 205k, far past the memo admission limit. `seed`
/// rotates through the tuple space (i ↦ i + seed is injective, so the
/// tuples stay pairwise distinct for any seed).
fn all_distinct(rows: usize, seed: u64) -> EncodedTable {
    assert!(rows <= DISTINCT_SPAN, "tuples would repeat");
    let schema = Schema::builder()
        .categorical("c0")
        .categorical("c1")
        .categorical("c2")
        .quantitative("q")
        .build()
        .expect("static schema");
    let mut t = Table::new(schema);
    for i in 0..rows {
        let j = (i + (seed as usize % DISTINCT_SPAN)) % DISTINCT_SPAN;
        t.push_row(&[
            Value::from(format!("v{}", j % 59)),
            Value::from(format!("v{}", (j / 59) % 61)),
            Value::from(format!("v{}", (j / (59 * 61)) % 57)),
            Value::Int((j % 5) as i64),
        ])
        .expect("row matches schema");
    }
    EncodedTable::encode_full_resolution(&t).expect("encode")
}

/// A fixed candidate set over the first few codes of each categorical
/// attribute plus quant-range supersets — enough hash-tree depth and
/// rectangle work that the scan resembles a real pass `k ≥ 2`.
fn candidates(encoded: &EncodedTable) -> Vec<Itemset> {
    let card = |attr: usize| {
        encoded
            .encoder(qar_table::AttributeId(attr))
            .cardinality()
            .min(4)
    };
    let (n0, n1, n2) = (card(0), card(1), card(2));
    let mut out = Vec::new();
    for a in 0..n0 {
        for b in 0..n1 {
            out.push(Itemset::new(vec![Item::value(0, a), Item::value(1, b)]));
            for c in 0..n2 {
                out.push(Itemset::new(vec![
                    Item::value(0, a),
                    Item::value(1, b),
                    Item::value(2, c),
                ]));
            }
        }
    }
    // Mixed categorical + quantitative candidates exercise the rect
    // counters behind the tree walk.
    for a in 0..n0 {
        for (lo, hi) in [(0u32, 1u32), (1, 3), (0, 4)] {
            out.push(Itemset::new(vec![
                Item::value(0, a),
                Item::range(3, lo, hi),
            ]));
        }
    }
    out
}

struct Measurement {
    label: String,
    json: String,
    rows_per_sec: f64,
}

/// Time one scan configuration and return its JSON line + throughput.
fn measure(
    table_name: &str,
    encoded: &EncodedTable,
    cands: &[Itemset],
    threads: usize,
    pool: Option<&WorkerPool>,
    kernel: ScanKernel,
) -> Measurement {
    let rows = encoded.num_rows() as f64;
    let exec = if threads == 1 {
        "serial".to_string()
    } else {
        format!("pooled{threads}")
    };
    let label = format!("{table_name} {exec} {}", kernel.name());
    let opts = ScanOptions {
        pool,
        kernel,
        ..ScanOptions::new(threads)
    };
    let sample = bench(&label, || {
        count_candidates_opts(encoded, cands, None, opts).expect("no cancel token")
    });
    let rows_per_sec = rows / sample.median.as_secs_f64();
    let json = json_line(
        &label,
        &sample,
        &[
            ("rows_per_sec", rows_per_sec),
            ("threads", threads as f64),
            (
                "memoized",
                if kernel == ScanKernel::Memoized {
                    1.0
                } else {
                    0.0
                },
            ),
        ],
    );
    println!("{json}");
    Measurement {
        label,
        json,
        rows_per_sec,
    }
}

/// `[records] [--seed S]`: an optional positional record count and an
/// optional table seed (0 keeps the historical layouts).
fn parse_args(default_records: usize) -> (usize, u64) {
    let mut records = default_records;
    let mut seed = 0u64;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--seed" {
            seed = argv
                .get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("scan_kernel: --seed needs an unsigned integer");
                    std::process::exit(2);
                });
            i += 2;
        } else {
            if let Ok(n) = argv[i].parse() {
                records = n;
            }
            i += 1;
        }
    }
    (records, seed)
}

fn main() {
    let (records, seed) = parse_args(200_000);
    let pool = WorkerPool::new(THREADS);

    let mut results: Vec<Measurement> = Vec::new();
    let mut suite = Vec::new();
    for (name, encoded) in [
        ("dup_heavy", duplicate_heavy(records, seed)),
        (
            "all_distinct",
            all_distinct(records.min(DISTINCT_SPAN), seed),
        ),
    ] {
        let cands = candidates(&encoded);
        println!(
            "\n{name}: {} rows, {} candidates (seed {seed})",
            encoded.num_rows(),
            cands.len()
        );
        for threads in [1, THREADS] {
            for kernel in [
                ScanKernel::Direct,
                ScanKernel::Memoized,
                ScanKernel::Bitmask,
            ] {
                let pool_ref = (threads > 1).then_some(&pool);
                results.push(measure(name, &encoded, &cands, threads, pool_ref, kernel));
            }
        }
        suite.push((name, results.split_off(0)));
    }

    fn find<'m>(rs: &'m [Measurement], needle: &str) -> &'m Measurement {
        rs.iter()
            .find(|m| m.label.contains(needle))
            .expect("measurement present")
    }
    let dup = &suite[0].1;
    let distinct = &suite[1].1;
    let pooled_memo = format!("pooled{THREADS} memoized");
    let pooled_direct = format!("pooled{THREADS} direct");
    let dup_memo_4t = find(dup, &pooled_memo).rows_per_sec;
    let dup_direct_4t = find(dup, &pooled_direct).rows_per_sec;
    let distinct_memo_4t = find(distinct, &pooled_memo).rows_per_sec;
    let distinct_direct_4t = find(distinct, &pooled_direct).rows_per_sec;
    let distinct_direct_1t = find(distinct, "serial direct").rows_per_sec;
    let distinct_bitmask_1t = find(distinct, "serial bitmask");
    let dup_speedup = dup_memo_4t / dup_direct_4t;
    let distinct_ratio = distinct_memo_4t / distinct_direct_4t;
    let bitmask_speedup = distinct_bitmask_1t.rows_per_sec / distinct_direct_1t;

    // Assemble the committed baseline document: suite metadata, every
    // per-measurement JSON object, and the acceptance ratios.
    let mut doc = String::from("{\"suite\":\"scan_kernel\"");
    doc.push_str(&format!(
        ",\"records\":{records},\"threads\":{THREADS},\"seed\":{seed}"
    ));
    doc.push_str(&format!(
        ",\"dup_memo_speedup_4t\":{dup_speedup:.4},\"distinct_memo_ratio_4t\":{distinct_ratio:.4}"
    ));
    doc.push_str(&format!(
        ",\"distinct_bitmask_speedup_1t\":{bitmask_speedup:.4}"
    ));
    doc.push_str(",\"results\":[");
    let all: Vec<&str> = suite
        .iter()
        .flat_map(|(_, rs)| rs.iter().map(|m| m.json.as_str()))
        .collect();
    doc.push_str(&all.join(","));
    doc.push_str("]}");
    let out_path = std::env::var("QAR_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench JSON");

    println!(
        "\nduplicate-heavy @{THREADS}t: memo {dup_memo_4t:.0} rows/s vs direct \
         {dup_direct_4t:.0} rows/s ({dup_speedup:.2}x, floor {FLOOR_DUP_SPEEDUP}x)"
    );
    println!(
        "all-distinct  @{THREADS}t: memo {distinct_memo_4t:.0} rows/s vs direct \
         {distinct_direct_4t:.0} rows/s (ratio {distinct_ratio:.2}, floor {FLOOR_DISTINCT_RATIO})"
    );
    println!(
        "all-distinct  @1t: bitmask {:.0} rows/s vs direct {distinct_direct_1t:.0} rows/s \
         ({bitmask_speedup:.2}x, floor {FLOOR_BITMASK_SPEEDUP}x)",
        distinct_bitmask_1t.rows_per_sec
    );
    println!("wrote {out_path}");

    let mut failed = false;
    if dup_memo_4t < FLOOR_ROWS_PER_SEC {
        eprintln!("scan_kernel: memoized pooled scan below {FLOOR_ROWS_PER_SEC} rows/sec");
        failed = true;
    }
    if dup_speedup < FLOOR_DUP_SPEEDUP {
        eprintln!("scan_kernel: memoization speedup {dup_speedup:.2}x below {FLOOR_DUP_SPEEDUP}x");
        failed = true;
    }
    if distinct_ratio < FLOOR_DISTINCT_RATIO {
        eprintln!(
            "scan_kernel: memoization regresses the all-distinct case \
             ({distinct_ratio:.2} < {FLOOR_DISTINCT_RATIO})"
        );
        failed = true;
    }
    if bitmask_speedup < FLOOR_BITMASK_SPEEDUP {
        eprintln!(
            "scan_kernel: bitmask kernel speedup {bitmask_speedup:.2}x below \
             {FLOOR_BITMASK_SPEEDUP}x on the all-distinct case; failing record: {}",
            distinct_bitmask_1t.json
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
