//! Microbench: the Section 5.2 counting structures — n-dimensional array
//! vs. R*-tree — on a fixed rectangle/point load.

use qar_bench::harness::bench;
use qar_itemset::{CounterKind, RectCounter};

type Workload = (Vec<(Vec<u32>, Vec<u32>)>, Vec<Vec<u32>>);

fn workload(dims: &[u32], num_rects: usize, num_points: usize) -> Workload {
    let mut state = 0x5EED_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let rects = (0..num_rects)
        .map(|_| {
            let mut lo = Vec::with_capacity(dims.len());
            let mut hi = Vec::with_capacity(dims.len());
            for &d in dims {
                let a = next() % d;
                let b = next() % d;
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            (lo, hi)
        })
        .collect();
    let points = (0..num_points)
        .map(|_| dims.iter().map(|&d| next() % d).collect())
        .collect();
    (rects, points)
}

fn main() {
    for (label, dims, rects, points) in [
        ("2d-50x50", vec![50u32, 50], 2_000usize, 20_000usize),
        ("3d-25", vec![25, 25, 25], 1_000, 10_000),
    ] {
        let (rect_set, point_set) = workload(&dims, rects, points);
        for kind in [CounterKind::Array, CounterKind::RTree] {
            bench(&format!("counting/{kind:?}/{label}"), || {
                let mut counter = RectCounter::build_with(kind, &dims, rect_set.clone());
                for p in point_set.iter() {
                    counter.count_record(p);
                }
                counter.finish()
            });
        }
    }
}
