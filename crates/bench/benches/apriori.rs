//! Microbench: Apriori vs. AprioriTid (\[AS94\]) on Quest-style baskets.

use qar_apriori::{apriori, apriori_tid};
use qar_bench::harness::bench;
use qar_datagen::{QuestConfig, QuestDataset};

fn main() {
    let data = QuestDataset::generate(QuestConfig {
        num_transactions: 5_000,
        ..QuestConfig::default()
    });
    for minsup in [0.02f64, 0.01] {
        bench(&format!("apriori/minsup{minsup}"), || {
            apriori(&data.db, minsup).total()
        });
        bench(&format!("apriori_tid/minsup{minsup}"), || {
            apriori_tid(&data.db, minsup).total()
        });
    }
}
