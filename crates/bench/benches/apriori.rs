//! Microbench: Apriori vs. AprioriTid (\[AS94\]) on Quest-style baskets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qar_apriori::{apriori, apriori_tid};
use qar_datagen::{QuestConfig, QuestDataset};

fn bench_apriori(c: &mut Criterion) {
    let data = QuestDataset::generate(QuestConfig {
        num_transactions: 5_000,
        ..QuestConfig::default()
    });
    let mut group = c.benchmark_group("boolean_apriori");
    group.sample_size(10);
    for minsup in [0.02f64, 0.01] {
        group.bench_with_input(
            BenchmarkId::new("apriori", format!("{minsup}")),
            &minsup,
            |b, &m| b.iter(|| black_box(apriori(&data.db, m).total())),
        );
        group.bench_with_input(
            BenchmarkId::new("apriori_tid", format!("{minsup}")),
            &minsup,
            |b, &m| b.iter(|| black_box(apriori_tid(&data.db, m).total())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_apriori);
criterion_main!(benches);
