//! Microbench: R*-tree construction (incremental vs. STR bulk load) and
//! point queries.

use qar_bench::harness::bench;
use qar_rtree::{RStarTree, Rect};

fn rects(n: usize) -> Vec<(Rect, u32)> {
    let mut state = 99u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % 10_000) as f64
    };
    (0..n)
        .map(|i| {
            let x = next();
            let y = next();
            (
                Rect::new(&[x, y], &[x + next() / 100.0, y + next() / 100.0]),
                i as u32,
            )
        })
        .collect()
}

fn main() {
    let items = rects(20_000);

    bench("rtree/insert/20k", || {
        let mut tree = RStarTree::new();
        for (r, v) in &items {
            tree.insert(*r, *v);
        }
        tree.len()
    });
    bench("rtree/bulk_load/20k", || {
        RStarTree::bulk_load(items.clone()).len()
    });

    let tree = RStarTree::bulk_load(items.clone());
    let mut probe_state = 7u64;
    let probes: Vec<[f64; 2]> = (0..10_000)
        .map(|_| {
            probe_state = probe_state.wrapping_mul(48271).wrapping_add(11);
            [
                ((probe_state >> 17) % 10_000) as f64,
                ((probe_state >> 33) % 10_000) as f64,
            ]
        })
        .collect();
    bench("rtree/query_point/10k-on-20k", || {
        let mut hits = 0u64;
        for p in &probes {
            tree.query_point(p, |_| hits += 1);
        }
        hits
    });
}
