//! Microbench: R*-tree construction (incremental vs. STR bulk load) and
//! point queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qar_rtree::{RStarTree, Rect};

fn rects(n: usize) -> Vec<(Rect, u32)> {
    let mut state = 99u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % 10_000) as f64
    };
    (0..n)
        .map(|i| {
            let x = next();
            let y = next();
            (
                Rect::new(&[x, y], &[x + next() / 100.0, y + next() / 100.0]),
                i as u32,
            )
        })
        .collect()
}

fn bench_rtree(c: &mut Criterion) {
    let items = rects(20_000);
    let mut group = c.benchmark_group("rtree");
    group.sample_size(10);

    group.bench_function("insert/20k", |b| {
        b.iter(|| {
            let mut tree = RStarTree::new();
            for (r, v) in &items {
                tree.insert(*r, *v);
            }
            black_box(tree.len())
        })
    });
    group.bench_function("bulk_load/20k", |b| {
        b.iter(|| black_box(RStarTree::bulk_load(items.clone()).len()))
    });

    let tree = RStarTree::bulk_load(items.clone());
    let mut probe_state = 7u64;
    let probes: Vec<[f64; 2]> = (0..10_000)
        .map(|_| {
            probe_state = probe_state.wrapping_mul(48271).wrapping_add(11);
            [
                ((probe_state >> 17) % 10_000) as f64,
                ((probe_state >> 33) % 10_000) as f64,
            ]
        })
        .collect();
    group.bench_function("query_point/10k-on-20k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for p in &probes {
                tree.query_point(p, |_| hits += 1);
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rtree);
criterion_main!(benches);
