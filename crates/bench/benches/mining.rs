//! Microbench: the full quantitative mining pipeline on the simulated
//! Section 6 data, at two partial-completeness levels, plus the
//! rule-generation and interest stages separately.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qar_bench::experiments::{credit, section6_config};
use qar_core::pipeline::{build_encoders, item_supports_of};
use qar_core::{annotate_interest, generate_rules, mine_encoded, InterestConfig, InterestMode};
use qar_table::EncodedTable;

fn bench_mining(c: &mut Criterion) {
    let data = credit(10_000);
    let mut group = c.benchmark_group("quant_mining");
    group.sample_size(10);

    for k in [1.5f64, 2.0, 3.0] {
        let config = section6_config(0.20, 0.25, k, None);
        let (encoders, _) = build_encoders(&data.table, &config).expect("encoders");
        let encoded = EncodedTable::encode(&data.table, encoders).expect("encode");
        group.bench_with_input(BenchmarkId::new("mine_encoded", format!("K{k}")), &k, |b, _| {
            b.iter(|| black_box(mine_encoded(&encoded, &config, None).expect("mine").0.total()))
        });
    }

    // Rule generation + interest on a fixed mining result.
    let config = section6_config(0.20, 0.25, 1.5, None);
    let (encoders, _) = build_encoders(&data.table, &config).expect("encoders");
    let encoded = EncodedTable::encode(&data.table, encoders).expect("encode");
    let (frequent, _) = mine_encoded(&encoded, &config, None).expect("mine");
    group.bench_function("generate_rules/K1.5", |b| {
        b.iter(|| black_box(generate_rules(&frequent, 0.25).len()))
    });
    let rules = generate_rules(&frequent, 0.25);
    let supports = item_supports_of(&encoded);
    group.bench_function("interest/K1.5", |b| {
        b.iter(|| {
            let verdicts = annotate_interest(
                &rules,
                &frequent,
                &supports,
                &InterestConfig {
                    level: 1.1,
                    mode: InterestMode::SupportOrConfidence,
                    prune_candidates: false,
                },
            );
            black_box(verdicts.iter().filter(|v| v.interesting).count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
