//! Microbench: the full quantitative mining pipeline on the simulated
//! Section 6 data, at three partial-completeness levels, plus the
//! rule-generation and interest stages separately.

use qar_bench::experiments::{credit, section6_config};
use qar_bench::harness::bench;
use qar_core::pipeline::{build_encoders, item_supports_of};
use qar_core::{annotate_interest, generate_rules, InterestConfig, InterestMode, Miner};
use qar_table::EncodedTable;

fn main() {
    let data = credit(10_000);

    for k in [1.5f64, 2.0, 3.0] {
        let config = section6_config(0.20, 0.25, k, None);
        let (encoders, _) = build_encoders(&data.table, &config).expect("encoders");
        let encoded = EncodedTable::encode(&data.table, encoders).expect("encode");
        let miner = Miner::new(config.clone());
        bench(&format!("mine_encoded/K{k}"), || {
            miner.frequent_itemsets(&encoded).expect("mine").0.total()
        });
    }

    // Rule generation + interest on a fixed mining result.
    let config = section6_config(0.20, 0.25, 1.5, None);
    let (encoders, _) = build_encoders(&data.table, &config).expect("encoders");
    let encoded = EncodedTable::encode(&data.table, encoders).expect("encode");
    let (frequent, _) = Miner::new(config.clone())
        .frequent_itemsets(&encoded)
        .expect("mine");
    bench("generate_rules/K1.5", || {
        generate_rules(&frequent, 0.25).len()
    });
    let rules = generate_rules(&frequent, 0.25);
    let supports = item_supports_of(&encoded);
    bench("interest/K1.5", || {
        let verdicts = annotate_interest(
            &rules,
            &frequent,
            &supports,
            &InterestConfig {
                level: 1.1,
                mode: InterestMode::SupportOrConfidence,
                prune_candidates: false,
            },
        );
        verdicts.iter().filter(|v| v.interesting).count()
    });
}
