//! Microbench: partitioner cut-point computation on large skewed columns.

use qar_bench::harness::bench;
use qar_partition::{EquiDepth, EquiWidth, KMeans1D, Partitioner};

fn lognormal_column(n: usize) -> Vec<f64> {
    let mut state = 4242u64;
    (0..n)
        .map(|_| {
            // Cheap Box-Muller over an LCG.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u1 = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u2 = (state >> 11) as f64 / (1u64 << 53) as f64;
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (7.5 + 0.5 * z).exp()
        })
        .collect()
}

fn main() {
    let values = lognormal_column(100_000);
    for k in [25usize, 100] {
        for p in [
            &EquiDepth as &dyn Partitioner,
            &EquiWidth,
            &KMeans1D::default(),
        ] {
            bench(&format!("partition/{}/k{k}", p.name()), || {
                p.cut_points(&values, k).len()
            });
        }
    }
}
