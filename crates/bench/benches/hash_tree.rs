//! Microbench: hash-tree subset matching (Section 5.2 / \[AS94\]) against
//! a naive per-candidate scan.

use qar_bench::harness::bench;
use qar_itemset::HashTree;

fn keys_and_records() -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let mut state = 17u64;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (state >> 33) % m
    };
    let mut keys: Vec<Vec<u64>> = Vec::new();
    while keys.len() < 5_000 {
        let mut k = vec![next(200), next(200), next(200)];
        k.sort_unstable();
        k.dedup();
        if k.len() == 3 {
            keys.push(k);
        }
    }
    let records: Vec<Vec<u64>> = (0..2_000)
        .map(|_| {
            let mut r: Vec<u64> = (0..15).map(|_| next(200)).collect();
            r.sort_unstable();
            r.dedup();
            r
        })
        .collect();
    (keys, records)
}

fn main() {
    let (keys, records) = keys_and_records();

    bench("hash_tree/5k-keys-2k-records", || {
        let mut tree = HashTree::new();
        for (i, k) in keys.iter().enumerate() {
            tree.insert(k.clone(), i as u64);
        }
        let mut hits = 0u64;
        for r in &records {
            tree.for_each_subset_of(r, |_, _| hits += 1);
        }
        hits
    });

    bench("naive/5k-keys-2k-records", || {
        let mut hits = 0u64;
        for r in &records {
            for k in &keys {
                if k.iter().all(|x| r.binary_search(x).is_ok()) {
                    hits += 1;
                }
            }
        }
        hits
    });
}
