//! Microbench: hash-tree subset matching (Section 5.2 / \[AS94\]) against
//! a naive per-candidate scan.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qar_itemset::HashTree;

fn keys_and_records() -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let mut state = 17u64;
    let mut next = move |m: u64| {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 33) % m
    };
    let mut keys: Vec<Vec<u64>> = Vec::new();
    while keys.len() < 5_000 {
        let mut k = vec![next(200), next(200), next(200)];
        k.sort_unstable();
        k.dedup();
        if k.len() == 3 {
            keys.push(k);
        }
    }
    let records: Vec<Vec<u64>> = (0..2_000)
        .map(|_| {
            let mut r: Vec<u64> = (0..15).map(|_| next(200)).collect();
            r.sort_unstable();
            r.dedup();
            r
        })
        .collect();
    (keys, records)
}

fn bench_subset_matching(c: &mut Criterion) {
    let (keys, records) = keys_and_records();
    let mut group = c.benchmark_group("hash_tree");

    group.bench_function("hash_tree/5k-keys-2k-records", |b| {
        b.iter(|| {
            let mut tree = HashTree::new();
            for (i, k) in keys.iter().enumerate() {
                tree.insert(k.clone(), i as u64);
            }
            let mut hits = 0u64;
            for r in &records {
                tree.for_each_subset_of(r, |_, _| hits += 1);
            }
            black_box(hits)
        })
    });

    group.bench_function("naive/5k-keys-2k-records", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for r in &records {
                for k in &keys {
                    if k.iter().all(|x| r.binary_search(x).is_ok()) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_subset_matching);
criterion_main!(benches);
