//! Thread-sweep benchmark: end-to-end mining time and counting-pass scan
//! time versus the `parallelism` knob, on the fig7-scale credit workload.
//!
//! Usage: `cargo bench --bench threads [-- <num_records> [thread list]]`
//! (defaults: 50000 records, threads 1 2 4 8). Prints, per thread count,
//! the wall-clock mining time, the summed counting-pass scan wall-clock,
//! the per-shard busy total, and the speedup over the single-thread run —
//! and asserts that every run mines the identical rule count, so the
//! sweep doubles as an equivalence check at scale.

use qar_bench::experiments::{credit, section6_config};
use qar_bench::harness::{bench, fmt_duration};
use qar_core::pipeline::build_encoders;
use qar_core::{generate_rules, mine_encoded};
use qar_table::EncodedTable;
use std::num::NonZeroUsize;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .collect();
    let num_records: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let threads: Vec<usize> = if args.len() > 1 {
        args[1..].iter().filter_map(|a| a.parse().ok()).collect()
    } else {
        vec![1, 2, 4, 8]
    };

    println!("thread sweep: {num_records} credit records, threads {threads:?}");
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware: available_parallelism = {available}\n");

    let data = credit(num_records);
    let mut config = section6_config(0.20, 0.25, 2.0, None);
    let (encoders, _) = build_encoders(&data.table, &config).expect("encoders");
    let encoded = EncodedTable::encode(&data.table, encoders).expect("encode");

    let mut baseline: Option<Duration> = None;
    let mut reference_rules: Option<usize> = None;
    for &t in &threads {
        config.parallelism = NonZeroUsize::new(t);
        let mut scan_total = Duration::ZERO;
        let mut busy_total = Duration::ZERO;
        let mut merge_total = Duration::ZERO;
        let mut rules_out = 0usize;
        let sample = bench(&format!("mine/threads={t}"), || {
            let (frequent, stats) = mine_encoded(&encoded, &config, None).expect("mine");
            scan_total = stats
                .pass_stats
                .iter()
                .map(|p| p.scan_time)
                .sum::<Duration>();
            busy_total = stats
                .pass_stats
                .iter()
                .flat_map(|p| p.shard_scan_times.iter().copied())
                .sum::<Duration>();
            merge_total = stats
                .pass_stats
                .iter()
                .map(|p| p.merge_time)
                .sum::<Duration>();
            rules_out = generate_rules(&frequent, config.min_confidence).len();
            rules_out
        });
        match reference_rules {
            None => reference_rules = Some(rules_out),
            Some(r) => assert_eq!(
                r, rules_out,
                "thread count {t} changed the mined rules — determinism bug"
            ),
        }
        let speedup = match baseline {
            None => {
                baseline = Some(sample.median);
                1.0
            }
            Some(base) => base.as_secs_f64() / sample.median.as_secs_f64(),
        };
        println!(
            "  threads={t}: scan wall {} | shard busy {} | merge {} | rules {} | speedup {:.2}x\n",
            fmt_duration(scan_total),
            fmt_duration(busy_total),
            fmt_duration(merge_total),
            rules_out,
            speedup,
        );
    }
}
