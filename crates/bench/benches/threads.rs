//! Thread-sweep benchmark: end-to-end mining time and counting-pass scan
//! time versus the `parallelism` knob, on the fig7-scale credit workload.
//!
//! Usage: `cargo bench --bench threads [-- <num_records> [thread list]]`
//! (defaults: 50000 records, threads 1 2 4 8). Prints, per thread count,
//! the wall-clock mining time, the summed counting-pass scan wall-clock,
//! the per-shard busy total, and the speedup over the single-thread run —
//! and asserts that every run mines the identical rule count, so the
//! sweep doubles as an equivalence check at scale.
//!
//! All timing detail comes from the miner's trace events (the same stream
//! `qar mine --trace` exposes), folded by [`qar_bench::events::pass_totals`].

use qar_bench::events::pass_totals;
use qar_bench::experiments::{credit, section6_config};
use qar_bench::harness::{bench, fmt_duration};
use qar_core::pipeline::build_encoders;
use qar_core::{generate_rules, Miner};
use qar_table::EncodedTable;
use qar_trace::CollectingSink;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .collect();
    let num_records: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let threads: Vec<usize> = if args.len() > 1 {
        args[1..].iter().filter_map(|a| a.parse().ok()).collect()
    } else {
        vec![1, 2, 4, 8]
    };

    println!("thread sweep: {num_records} credit records, threads {threads:?}");
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware: available_parallelism = {available}\n");

    let data = credit(num_records);
    let mut config = section6_config(0.20, 0.25, 2.0, None);
    let (encoders, _) = build_encoders(&data.table, &config).expect("encoders");
    let encoded = EncodedTable::encode(&data.table, encoders).expect("encode");

    let mut baseline: Option<Duration> = None;
    let mut reference_rules: Option<usize> = None;
    for &t in &threads {
        config.parallelism = NonZeroUsize::new(t);
        let sink = Arc::new(CollectingSink::new());
        let miner = Miner::new(config.clone()).with_progress(sink.clone());
        let mut totals = Default::default();
        let mut rules_out = 0usize;
        let sample = bench(&format!("mine/threads={t}"), || {
            sink.drain();
            let (frequent, _) = miner.frequent_itemsets(&encoded).expect("mine");
            totals = pass_totals(&sink.events());
            rules_out = generate_rules(&frequent, config.min_confidence).len();
            rules_out
        });
        match reference_rules {
            None => reference_rules = Some(rules_out),
            Some(r) => assert_eq!(
                r, rules_out,
                "thread count {t} changed the mined rules — determinism bug"
            ),
        }
        let speedup = match baseline {
            None => {
                baseline = Some(sample.median);
                1.0
            }
            Some(base) => base.as_secs_f64() / sample.median.as_secs_f64(),
        };
        println!(
            "  threads={t}: scan wall {} | shard busy {} | merge {} | rules {} | speedup {:.2}x\n",
            fmt_duration(totals.scan_wall),
            fmt_duration(totals.shard_busy),
            fmt_duration(totals.merge),
            rules_out,
            speedup,
        );
    }
}
