//! The Apriori algorithm of \[AS94\].
//!
//! Level-wise search: `L_1` from a counting pass, then repeatedly
//! `C_k = apriori-gen(L_{k-1})` (join + subset prune), count `C_k` in one
//! pass with a hash tree, keep the frequent ones as `L_k`, stop when empty.

use crate::transaction::TransactionDb;
use qar_itemset::HashTree;
use std::collections::HashMap;

/// A frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// Sorted item ids.
    pub items: Vec<u32>,
    /// Number of transactions containing all items.
    pub support: u64,
}

/// All frequent itemsets grouped by size, plus a support lookup table.
#[derive(Debug, Clone, Default)]
pub struct FrequentItemsets {
    /// `by_size[k-1]` holds the frequent `k`-itemsets, sorted by items.
    pub by_size: Vec<Vec<FrequentItemset>>,
    support: HashMap<Vec<u32>, u64>,
}

impl FrequentItemsets {
    /// Support count of an itemset (sorted ids), if frequent.
    pub fn support_of(&self, items: &[u32]) -> Option<u64> {
        self.support.get(items).copied()
    }

    /// Total number of frequent itemsets across all sizes.
    pub fn total(&self) -> usize {
        self.by_size.iter().map(|v| v.len()).sum()
    }

    /// Iterate over all frequent itemsets of size ≥ 1.
    pub fn iter(&self) -> impl Iterator<Item = &FrequentItemset> {
        self.by_size.iter().flatten()
    }

    fn push_level(&mut self, mut level: Vec<FrequentItemset>) {
        level.sort_by(|a, b| a.items.cmp(&b.items));
        for f in &level {
            self.support.insert(f.items.clone(), f.support);
        }
        self.by_size.push(level);
    }

    /// Append a level (sorting it and indexing supports). Exposed for
    /// sibling algorithms ([`crate::apriori_tid`](mod@crate::apriori_tid)) that build the same
    /// result through different counting.
    pub fn push_level_public(&mut self, level: Vec<FrequentItemset>) {
        self.push_level(level);
    }
}

/// `apriori-gen`: join `L_{k-1}` with itself on the first `k-2` items, then
/// delete joins with an infrequent `(k-1)`-subset.
///
/// `prev` must be sorted by items (as produced by [`apriori`]).
pub(crate) fn apriori_gen(prev: &[FrequentItemset]) -> Vec<Vec<u32>> {
    let prev_set: std::collections::HashSet<&[u32]> =
        prev.iter().map(|f| f.items.as_slice()).collect();
    let mut candidates = Vec::new();
    // Join: scan runs sharing the first k-2 items.
    let mut run_start = 0;
    while run_start < prev.len() {
        let k1 = prev[run_start].items.len();
        let prefix = &prev[run_start].items[..k1 - 1];
        let mut run_end = run_start + 1;
        while run_end < prev.len() && &prev[run_end].items[..k1 - 1] == prefix {
            run_end += 1;
        }
        for i in run_start..run_end {
            for j in (i + 1)..run_end {
                let mut cand = prev[i].items.clone();
                cand.push(prev[j].items[k1 - 1]);
                // Subset prune: all (k-1)-subsets must be frequent. The two
                // parents are, so only check subsets dropping one of the
                // first k-1 positions... dropping position p for p < k-1
                // (dropping the last gives parent i; dropping second-to-last
                // gives parent j).
                let frequent = (0..cand.len() - 2).all(|p| {
                    let mut sub = cand.clone();
                    sub.remove(p);
                    prev_set.contains(sub.as_slice())
                });
                if frequent {
                    candidates.push(cand);
                }
            }
        }
        run_start = run_end;
    }
    candidates
}

/// Run Apriori over `db` at fractional minimum support `minsup`.
///
/// ```
/// use qar_apriori::{apriori, TransactionDb};
///
/// let db = TransactionDb::from_transactions(vec![
///     vec![1, 3, 4],
///     vec![2, 3, 5],
///     vec![1, 2, 3, 5],
///     vec![2, 5],
/// ]);
/// let frequent = apriori(&db, 0.5); // support >= 2 transactions
/// // The classic AS94 example: {2,3,5} is the only frequent 3-itemset.
/// assert_eq!(frequent.by_size[2].len(), 1);
/// assert_eq!(frequent.by_size[2][0].items, vec![2, 3, 5]);
/// assert_eq!(frequent.support_of(&[2, 3, 5]), Some(2));
/// ```
pub fn apriori(db: &TransactionDb, minsup: f64) -> FrequentItemsets {
    let mut result = FrequentItemsets::default();
    if db.is_empty() {
        return result;
    }
    let min_count = db.support_count(minsup);

    // Pass 1: plain array count of single items.
    let mut counts = vec![0u64; db.num_items() as usize];
    for t in db.iter() {
        for &i in t {
            counts[i as usize] += 1;
        }
    }
    let l1: Vec<FrequentItemset> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(i, &c)| FrequentItemset {
            items: vec![i as u32],
            support: c,
        })
        .collect();
    if l1.is_empty() {
        return result;
    }
    result.push_level(l1);

    // Passes k >= 2.
    loop {
        let prev = result.by_size.last().expect("pushed above");
        let candidates = apriori_gen(prev);
        if candidates.is_empty() {
            break;
        }
        let mut tree: HashTree<u64> = HashTree::new();
        for cand in &candidates {
            tree.insert(cand.iter().map(|&i| i as u64).collect(), 0);
        }
        let mut record_buf: Vec<u64> = Vec::new();
        for t in db.iter() {
            record_buf.clear();
            record_buf.extend(t.iter().map(|&i| i as u64));
            tree.for_each_subset_of(&record_buf, |_, c| *c += 1);
        }
        let level: Vec<FrequentItemset> = tree
            .into_entries()
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .map(|(key, c)| FrequentItemset {
                items: key.into_iter().map(|i| i as u32).collect(),
                support: c,
            })
            .collect();
        if level.is_empty() {
            break;
        }
        result.push_level(level);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as94_db() -> TransactionDb {
        // The worked example from the AS94 paper.
        TransactionDb::from_transactions(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn as94_worked_example() {
        let f = apriori(&as94_db(), 0.5);
        let l1: Vec<&[u32]> = f.by_size[0].iter().map(|x| x.items.as_slice()).collect();
        assert_eq!(l1, vec![&[1][..], &[2], &[3], &[5]]);
        let l2: Vec<&[u32]> = f.by_size[1].iter().map(|x| x.items.as_slice()).collect();
        assert_eq!(l2, vec![&[1, 3][..], &[2, 3], &[2, 5], &[3, 5]]);
        let l3: Vec<&[u32]> = f.by_size[2].iter().map(|x| x.items.as_slice()).collect();
        assert_eq!(l3, vec![&[2, 3, 5][..]]);
        assert_eq!(f.support_of(&[2, 5]), Some(3));
        assert_eq!(f.support_of(&[1, 2]), None);
        assert_eq!(f.total(), 4 + 4 + 1);
    }

    #[test]
    fn supports_are_exact() {
        let db = as94_db();
        let f = apriori(&db, 0.25);
        for itemset in f.iter() {
            let recount = db
                .iter()
                .filter(|t| itemset.items.iter().all(|i| t.contains(i)))
                .count() as u64;
            assert_eq!(itemset.support, recount, "{:?}", itemset.items);
        }
    }

    #[test]
    fn anti_monotone_support() {
        let f = apriori(&as94_db(), 0.25);
        for level in f.by_size.iter().skip(1) {
            for itemset in level {
                for drop in 0..itemset.items.len() {
                    let mut sub = itemset.items.clone();
                    sub.remove(drop);
                    let sub_sup = f.support_of(&sub).expect("subset must be frequent");
                    assert!(sub_sup >= itemset.support);
                }
            }
        }
    }

    #[test]
    fn empty_db_and_high_support() {
        let empty = TransactionDb::from_transactions(vec![]);
        assert_eq!(apriori(&empty, 0.5).total(), 0);
        let db = as94_db();
        let f = apriori(&db, 1.0);
        assert_eq!(f.total(), 0); // no item is in all four transactions
    }

    #[test]
    fn single_transaction() {
        let db = TransactionDb::from_transactions(vec![vec![0, 1, 2]]);
        let f = apriori(&db, 1.0);
        assert_eq!(f.by_size.len(), 3);
        assert_eq!(f.by_size[2][0].items, vec![0, 1, 2]);
    }

    #[test]
    fn apriori_gen_join_and_prune() {
        // L3 = {1,2,3}, {1,2,4}, {1,3,4}, {1,3,5}, {2,3,4}
        // join -> {1,2,3,4} (from {1,2,3}+{1,2,4}), {1,3,4,5} (from {1,3,4}+{1,3,5})
        // prune deletes {1,3,4,5} because {1,4,5} not in L3. (AS94 example.)
        let l3: Vec<FrequentItemset> = [
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![1, 3, 4],
            vec![1, 3, 5],
            vec![2, 3, 4],
        ]
        .into_iter()
        .map(|items| FrequentItemset { items, support: 2 })
        .collect();
        let c4 = apriori_gen(&l3);
        assert_eq!(c4, vec![vec![1, 2, 3, 4]]);
    }
}
