//! Section 1.1: mapping the quantitative problem onto the boolean one.
//!
//! "Conceptually, instead of having just one field in the table for each
//! attribute, we have as many fields as the number of attribute values" —
//! each ⟨attribute, code⟩ pair becomes a boolean item, each record a
//! transaction of exactly one item per attribute. The paper's "Mapping
//! Woes" (MinSup and MinConf problems) make this a strawman: ranges are
//! never combined, so low-support values and information-losing coarse
//! intervals both hurt. The `baselines` bench measures exactly that.

use crate::transaction::TransactionDb;
use qar_table::{AttributeId, EncodedTable};

/// How ⟨attribute, code⟩ pairs map to boolean item ids: items of attribute
/// `a` occupy the dense id block starting at `base[a]`.
#[derive(Debug, Clone)]
pub struct BooleanMapping {
    base: Vec<u32>,
    num_items: u32,
}

impl BooleanMapping {
    /// Derive the mapping from an encoded table's attribute cardinalities.
    pub fn from_encoded(table: &EncodedTable) -> Self {
        let mut base = Vec::with_capacity(table.schema().len());
        let mut next = 0u32;
        for (id, _) in table.schema().iter() {
            base.push(next);
            next += table.cardinality(id);
        }
        BooleanMapping {
            base,
            num_items: next,
        }
    }

    /// The boolean item id of ⟨attribute, code⟩.
    pub fn item_id(&self, attr: AttributeId, code: u32) -> u32 {
        self.base[attr.index()] + code
    }

    /// Reverse lookup: which ⟨attribute, code⟩ does `item` denote?
    pub fn decode(&self, item: u32) -> (AttributeId, u32) {
        // base is sorted; find the last base <= item.
        let attr = match self.base.binary_search(&item) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (AttributeId(attr), item - self.base[attr])
    }

    /// Total number of boolean items.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Decode a whole boolean itemset back to `(attribute, code)` pairs,
    /// sorted by attribute — the canonical relational form differential
    /// tests compare against the quantitative miner's value itemsets.
    pub fn decode_items(&self, items: &[u32]) -> Vec<(u32, u32)> {
        let mut decoded: Vec<(u32, u32)> = items
            .iter()
            .map(|&item| {
                let (attr, code) = self.decode(item);
                (attr.index() as u32, code)
            })
            .collect();
        decoded.sort_unstable();
        decoded
    }
}

/// Map an encoded relational table to a transaction database (Figure 2 of
/// the paper, generalized): one transaction per record, one item per
/// attribute value.
pub fn to_transactions(table: &EncodedTable) -> (TransactionDb, BooleanMapping) {
    let mapping = BooleanMapping::from_encoded(table);
    let n = table.num_rows();
    let mut txns: Vec<Vec<u32>> = Vec::with_capacity(n);
    for row in 0..n {
        let mut t = Vec::with_capacity(table.schema().len());
        for (id, _) in table.schema().iter() {
            t.push(mapping.item_id(id, table.codes(id)[row]));
        }
        txns.push(t);
    }
    (TransactionDb::from_transactions(txns), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_table::{Schema, Table, Value};

    fn people_encoded() -> EncodedTable {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        EncodedTable::encode_full_resolution(&t).unwrap()
    }

    #[test]
    fn figure_2_shape() {
        // Full-resolution people table: 5 age values + 2 married values +
        // 3 num_cars values = 10 boolean items; one item per attribute per
        // record.
        let enc = people_encoded();
        let (db, mapping) = to_transactions(&enc);
        assert_eq!(mapping.num_items(), 10);
        assert_eq!(db.len(), 5);
        for t in db.iter() {
            assert_eq!(t.len(), 3, "one item per attribute");
        }
    }

    #[test]
    fn ids_round_trip() {
        let enc = people_encoded();
        let mapping = BooleanMapping::from_encoded(&enc);
        for (id, _) in enc.schema().iter() {
            for code in 0..enc.cardinality(id) {
                let item = mapping.item_id(id, code);
                assert_eq!(mapping.decode(item), (id, code));
            }
        }
    }

    #[test]
    fn decode_items_sorts_by_attribute() {
        let enc = people_encoded();
        let mapping = BooleanMapping::from_encoded(&enc);
        let married = enc.schema().id_of("married").unwrap();
        let cars = enc.schema().id_of("num_cars").unwrap();
        // Pass the items in reverse attribute order; decoding sorts them.
        let items = [mapping.item_id(cars, 2), mapping.item_id(married, 1)];
        assert_eq!(
            mapping.decode_items(&items),
            vec![(married.index() as u32, 1), (cars.index() as u32, 2)]
        );
        assert!(mapping.decode_items(&[]).is_empty());
    }

    #[test]
    fn blocks_are_disjoint() {
        let enc = people_encoded();
        let mapping = BooleanMapping::from_encoded(&enc);
        let mut seen = std::collections::HashSet::new();
        for (id, _) in enc.schema().iter() {
            for code in 0..enc.cardinality(id) {
                assert!(seen.insert(mapping.item_id(id, code)), "id collision");
            }
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn boolean_rules_match_paper_figure_2_discussion() {
        // "the rule ⟨NumCars: 0⟩ ⇒ ⟨Married: No⟩ has 100% confidence"
        // at full resolution.
        let enc = people_encoded();
        let (db, mapping) = to_transactions(&enc);
        let frequent = crate::apriori::apriori(&db, 0.2); // support >= 1 record
        let rules = crate::rulegen::generate_rules(&frequent, 0.99);
        let married = enc.schema().id_of("married").unwrap();
        let cars = enc.schema().id_of("num_cars").unwrap();
        let cars0 = mapping.item_id(cars, 0); // code 0 == value 0
        let married_no = mapping.item_id(married, 0); // "No" sorts first
        assert!(
            rules
                .iter()
                .any(|r| r.antecedent == vec![cars0] && r.consequent == vec![married_no]),
            "expected ⟨NumCars:0⟩ ⇒ ⟨Married:No⟩ in {rules:?}"
        );
    }
}
