//! AprioriTid, the second algorithm of \[AS94\].
//!
//! Instead of scanning raw transactions on every pass, the database is
//! rewritten after each pass into `C̄_k`: for every transaction, the list
//! of candidate `k`-itemsets it contains. Pass `k+1` then intersects
//! generator ids instead of matching items — cheaper in late passes when
//! `C̄_k` shrinks far below the raw database.

use crate::apriori::{apriori_gen, FrequentItemset, FrequentItemsets};
use crate::transaction::TransactionDb;
use std::collections::HashMap;

/// Run AprioriTid over `db` at fractional minimum support `minsup`.
/// Produces exactly the same [`FrequentItemsets`] as [`crate::apriori()`]
/// (asserted by tests), by a different counting strategy.
pub fn apriori_tid(db: &TransactionDb, minsup: f64) -> FrequentItemsets {
    let mut result = FrequentItemsets::default();
    if db.is_empty() {
        return result;
    }
    let min_count = db.support_count(minsup);

    // Pass 1: count single items; build C̄_1 (transaction -> item ids kept).
    let mut counts = vec![0u64; db.num_items() as usize];
    for t in db.iter() {
        for &i in t {
            counts[i as usize] += 1;
        }
    }
    let l1: Vec<FrequentItemset> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(i, &c)| FrequentItemset {
            items: vec![i as u32],
            support: c,
        })
        .collect();
    if l1.is_empty() {
        return result;
    }
    push_sorted(&mut result, l1);

    // C̄_1: per transaction, the contained frequent 1-itemsets as candidate
    // ids (= positions in the level vector).
    let frequent1: HashMap<u32, u32> = result.by_size[0]
        .iter()
        .enumerate()
        .map(|(pos, f)| (f.items[0], pos as u32))
        .collect();
    let mut cbar: Vec<Vec<u32>> = db
        .iter()
        .map(|t| t.iter().filter_map(|i| frequent1.get(i).copied()).collect())
        .collect();

    loop {
        let prev = result.by_size.last().expect("pushed above");
        let candidates = apriori_gen(prev);
        if candidates.is_empty() {
            break;
        }
        // Each candidate k-itemset is the join of two (k-1)-itemsets
        // (its generators): candidate = gen1 ∪ {last item of gen2}.
        // Record generator positions within the previous level.
        let prev_index: HashMap<&[u32], u32> = prev
            .iter()
            .enumerate()
            .map(|(pos, f)| (f.items.as_slice(), pos as u32))
            .collect();
        struct Cand {
            items: Vec<u32>,
            gen1: u32,
            gen2: u32,
            count: u64,
        }
        let mut cands: Vec<Cand> = candidates
            .into_iter()
            .map(|items| {
                let k = items.len();
                let mut g1 = items.clone();
                g1.remove(k - 1);
                let mut g2 = items.clone();
                g2.remove(k - 2);
                Cand {
                    gen1: prev_index[g1.as_slice()],
                    gen2: prev_index[g2.as_slice()],
                    items,
                    count: 0,
                }
            })
            .collect();
        // Index candidates by gen1 for the per-transaction walk.
        let mut by_gen1: HashMap<u32, Vec<u32>> = HashMap::new();
        for (pos, c) in cands.iter().enumerate() {
            by_gen1.entry(c.gen1).or_default().push(pos as u32);
        }

        // One pass over C̄_{k-1}: a transaction supports a candidate iff it
        // contains both generators.
        let mut next_cbar: Vec<Vec<u32>> = Vec::with_capacity(cbar.len());
        for prev_ids in &cbar {
            let mut contained: Vec<u32> = Vec::new();
            if prev_ids.len() >= 2 {
                for &g1 in prev_ids {
                    if let Some(cand_ids) = by_gen1.get(&g1) {
                        for &cid in cand_ids {
                            let cand = &cands[cid as usize];
                            if prev_ids.binary_search(&cand.gen2).is_ok() {
                                contained.push(cid);
                            }
                        }
                    }
                }
            }
            contained.sort_unstable();
            for &cid in &contained {
                cands[cid as usize].count += 1;
            }
            next_cbar.push(contained);
        }

        // Keep frequent candidates; remap C̄_k ids onto the kept level.
        let mut keep_map: HashMap<u32, u32> = HashMap::new();
        let mut level = Vec::new();
        let mut kept_sorted: Vec<(Vec<u32>, u32, u64)> = cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.count >= min_count)
            .map(|(pos, c)| (c.items.clone(), pos as u32, c.count))
            .collect();
        kept_sorted.sort();
        for (new_pos, (items, old_pos, count)) in kept_sorted.into_iter().enumerate() {
            keep_map.insert(old_pos, new_pos as u32);
            level.push(FrequentItemset {
                items,
                support: count,
            });
        }
        if level.is_empty() {
            break;
        }
        for t in &mut next_cbar {
            let mut remapped: Vec<u32> = t
                .iter()
                .filter_map(|cid| keep_map.get(cid).copied())
                .collect();
            remapped.sort_unstable();
            *t = remapped;
        }
        cbar = next_cbar;
        push_sorted(&mut result, level);
    }
    result
}

fn push_sorted(result: &mut FrequentItemsets, level: Vec<FrequentItemset>) {
    // FrequentItemsets::push_level is private to `apriori`; replicate the
    // bookkeeping through the public surface.
    result.push_level_public(level);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;

    fn as94_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn matches_apriori_on_as94_example() {
        for minsup in [0.25, 0.5, 0.75, 1.0] {
            let a = apriori(&as94_db(), minsup);
            let t = apriori_tid(&as94_db(), minsup);
            assert_eq!(a.by_size.len(), t.by_size.len(), "minsup {minsup}");
            for (la, lt) in a.by_size.iter().zip(&t.by_size) {
                assert_eq!(la, lt, "minsup {minsup}");
            }
        }
    }

    #[test]
    fn matches_apriori_on_synthetic_data() {
        // Deterministic pseudo-random transactions.
        let mut state = 7u64;
        let mut txns = Vec::new();
        for _ in 0..300 {
            let mut t = Vec::new();
            for item in 0u32..20 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (state >> 33).is_multiple_of(5) {
                    t.push(item);
                }
            }
            txns.push(t);
        }
        let db = TransactionDb::from_transactions(txns);
        for minsup in [0.02, 0.05, 0.1, 0.2] {
            let a = apriori(&db, minsup);
            let t = apriori_tid(&db, minsup);
            assert_eq!(a.total(), t.total(), "minsup {minsup}");
            for (la, lt) in a.by_size.iter().zip(&t.by_size) {
                assert_eq!(la, lt, "minsup {minsup}");
            }
        }
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::from_transactions(vec![]);
        assert_eq!(apriori_tid(&db, 0.5).total(), 0);
    }
}
