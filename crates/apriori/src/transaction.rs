//! Transaction databases for the boolean association-rule setting.

/// A set of transactions, each a sorted duplicate-free list of item ids.
///
/// ```
/// use qar_apriori::TransactionDb;
///
/// let db = TransactionDb::from_transactions(vec![
///     vec![1, 2, 5],
///     vec![2, 4],
///     vec![5, 2, 1], // unsorted input is normalized
/// ]);
/// assert_eq!(db.len(), 3);
/// assert_eq!(db.transaction(2), &[1, 2, 5]);
/// assert_eq!(db.num_items(), 6); // ids are dense 0..=5
/// ```
#[derive(Debug, Clone, Default)]
pub struct TransactionDb {
    transactions: Vec<Vec<u32>>,
    num_items: u32,
}

impl TransactionDb {
    /// Build from raw transactions; each is sorted and deduplicated.
    /// `num_items` becomes one past the largest id seen.
    pub fn from_transactions(raw: Vec<Vec<u32>>) -> Self {
        let mut num_items = 0;
        let transactions = raw
            .into_iter()
            .map(|mut t| {
                t.sort_unstable();
                t.dedup();
                if let Some(&max) = t.last() {
                    num_items = num_items.max(max + 1);
                }
                t
            })
            .collect();
        TransactionDb {
            transactions,
            num_items,
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// One past the largest item id (the id domain size).
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The `i`-th transaction (sorted, duplicate-free).
    pub fn transaction(&self, i: usize) -> &[u32] {
        &self.transactions[i]
    }

    /// Iterate over all transactions.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.transactions.iter().map(|t| t.as_slice())
    }

    /// Convert a fractional minimum support into an absolute record count
    /// (rounded up, minimum 1).
    pub fn support_count(&self, minsup_frac: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&minsup_frac),
            "minimum support must be a fraction"
        );
        ((minsup_frac * self.len() as f64).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let db = TransactionDb::from_transactions(vec![vec![3, 1, 3, 2]]);
        assert_eq!(db.transaction(0), &[1, 2, 3]);
        assert_eq!(db.num_items(), 4);
    }

    #[test]
    fn support_count_rounds_up() {
        let db = TransactionDb::from_transactions(vec![vec![0]; 10]);
        assert_eq!(db.support_count(0.25), 3);
        assert_eq!(db.support_count(0.3), 3);
        assert_eq!(db.support_count(0.0), 1);
        assert_eq!(db.support_count(1.0), 10);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn support_fraction_validated() {
        let db = TransactionDb::from_transactions(vec![vec![0]]);
        db.support_count(40.0);
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::from_transactions(vec![]);
        assert!(db.is_empty());
        assert_eq!(db.num_items(), 0);
        assert_eq!(db.iter().count(), 0);
    }
}
