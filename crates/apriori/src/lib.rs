//! # qar-apriori — boolean association rules (Agrawal & Srikant, VLDB '94)
//!
//! The quantitative miner "shares the basic structure of the algorithm for
//! finding boolean association rules given in \[AS94\]", and the paper's
//! Section 1.1 considers mapping the quantitative problem onto the boolean
//! one as a strawman. This crate implements that foundation from scratch:
//!
//! * [`transaction`] — transaction databases (sorted item-id lists),
//! * [`apriori`](mod@apriori) — the level-wise Apriori algorithm with hash-tree support
//!   counting and the join + subset-prune candidate generation,
//! * [`apriori_tid`](mod@apriori_tid) — the AprioriTid variant of \[AS94\], which rewrites
//!   the database into candidate-id lists after the first pass,
//! * [`rulegen`] — the "ap-genrules" fast rule generator with consequent
//!   growing,
//! * [`bridge`] — Section 1.1's mapping of an encoded relational table to a
//!   boolean transaction database (one item per ⟨attribute, value⟩ pair),
//!   used as the no-range-combining baseline in the benches.

#![warn(missing_docs)]

pub mod apriori;
pub mod apriori_tid;
pub mod bridge;
pub mod rulegen;
pub mod transaction;

pub use apriori::{apriori, FrequentItemset, FrequentItemsets};
pub use apriori_tid::apriori_tid;
pub use rulegen::{generate_rules, Rule};
pub use transaction::TransactionDb;
