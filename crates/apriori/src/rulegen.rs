//! Rule generation: the fast "ap-genrules" procedure of \[AS94\].
//!
//! For each frequent itemset `f`, rules `f−c ⇒ c` are generated with
//! growing consequents `c`. Confidence is antitone in the consequent
//! (`conf = sup(f)/sup(f−c)`, and shrinking the antecedent can only raise
//! its support), so consequents failing `minconf` are never extended.

use crate::apriori::{apriori_gen, FrequentItemset, FrequentItemsets};

/// A boolean association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Sorted item ids of the antecedent (non-empty).
    pub antecedent: Vec<u32>,
    /// Sorted item ids of the consequent (non-empty, disjoint).
    pub consequent: Vec<u32>,
    /// Absolute support count of `antecedent ∪ consequent`.
    pub support: u64,
    /// `support / support(antecedent)`.
    pub confidence: f64,
}

fn difference(f: &[u32], c: &[u32]) -> Vec<u32> {
    f.iter().filter(|i| !c.contains(i)).copied().collect()
}

/// Generate all rules meeting `minconf` from `frequent`, sorted by
/// (antecedent, consequent) for deterministic output.
pub fn generate_rules(frequent: &FrequentItemsets, minconf: f64) -> Vec<Rule> {
    let mut rules = Vec::new();
    for level in frequent.by_size.iter().skip(1) {
        for itemset in level {
            // Seed consequents: single items.
            let seeds: Vec<FrequentItemset> = itemset
                .items
                .iter()
                .map(|&i| FrequentItemset {
                    items: vec![i],
                    support: 0, // support field unused for consequent bookkeeping
                })
                .collect();
            grow_consequents(frequent, itemset, seeds, minconf, &mut rules);
        }
    }
    rules.sort_by(|a, b| {
        a.antecedent
            .cmp(&b.antecedent)
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

fn grow_consequents(
    frequent: &FrequentItemsets,
    itemset: &FrequentItemset,
    consequents: Vec<FrequentItemset>,
    minconf: f64,
    rules: &mut Vec<Rule>,
) {
    if consequents.is_empty() || consequents[0].items.len() >= itemset.items.len() {
        return;
    }
    let mut passing = Vec::new();
    for c in consequents {
        let antecedent = difference(&itemset.items, &c.items);
        let ant_sup = frequent
            .support_of(&antecedent)
            .expect("subsets of frequent itemsets are frequent");
        let confidence = itemset.support as f64 / ant_sup as f64;
        if confidence >= minconf {
            rules.push(Rule {
                antecedent,
                consequent: c.items.clone(),
                support: itemset.support,
                confidence,
            });
            passing.push(c);
        }
    }
    // Extend only the passing consequents (confidence is antitone).
    let next = apriori_gen(&passing);
    let next: Vec<FrequentItemset> = next
        .into_iter()
        .map(|items| FrequentItemset { items, support: 0 })
        .collect();
    grow_consequents(frequent, itemset, next, minconf, rules);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::transaction::TransactionDb;

    fn db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn rules_satisfy_minconf_and_are_exact() {
        let d = db();
        let f = apriori(&d, 0.5);
        let rules = generate_rules(&f, 0.6);
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(r.confidence >= 0.6, "{r:?}");
            // Recount from the raw transactions.
            let both = d
                .iter()
                .filter(|t| {
                    r.antecedent.iter().all(|i| t.contains(i))
                        && r.consequent.iter().all(|i| t.contains(i))
                })
                .count() as u64;
            let ant = d
                .iter()
                .filter(|t| r.antecedent.iter().all(|i| t.contains(i)))
                .count() as u64;
            assert_eq!(r.support, both);
            assert!((r.confidence - both as f64 / ant as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn known_rule_present() {
        // {2,5} has support 3; {2} has support 3 => 2 ⇒ 5 with conf 1.0.
        let f = apriori(&db(), 0.5);
        let rules = generate_rules(&f, 0.9);
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![2] && r.consequent == vec![5] && r.confidence == 1.0));
    }

    #[test]
    fn multi_item_consequents_generated() {
        // From {2,3,5}: rule 3 ⇒ {2,5}: sup({2,3,5})=2, sup({3})=3, conf 2/3.
        let f = apriori(&db(), 0.5);
        let rules = generate_rules(&f, 0.6);
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![3] && r.consequent == vec![2, 5]));
    }

    #[test]
    fn exhaustive_against_brute_force() {
        // Every rule from every frequent itemset, brute force, must match.
        let d = db();
        let f = apriori(&d, 0.25);
        let minconf = 0.5;
        let fast = generate_rules(&f, minconf);
        let mut brute = Vec::new();
        for itemset in f.iter().filter(|x| x.items.len() >= 2) {
            let k = itemset.items.len();
            for mask in 1u32..(1 << k) - 1 {
                let consequent: Vec<u32> = (0..k)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| itemset.items[i])
                    .collect();
                let antecedent = difference(&itemset.items, &consequent);
                let conf = itemset.support as f64 / f.support_of(&antecedent).unwrap() as f64;
                if conf >= minconf {
                    brute.push((antecedent, consequent));
                }
            }
        }
        brute.sort();
        let fast_pairs: Vec<(Vec<u32>, Vec<u32>)> = fast
            .into_iter()
            .map(|r| (r.antecedent, r.consequent))
            .collect();
        assert_eq!(fast_pairs, brute);
    }

    #[test]
    fn high_minconf_prunes_everything() {
        let f = apriori(&db(), 0.5);
        let rules = generate_rules(&f, 1.01);
        assert!(rules.is_empty());
    }
}
