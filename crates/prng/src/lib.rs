//! # qar-prng — deterministic pseudo-randomness without external crates
//!
//! The workspace builds against an offline registry, so it cannot pull in
//! `rand` or `proptest`. This crate provides the small slice of both that
//! the workspace actually needs:
//!
//! * [`Prng`] — a seeded SplitMix64 generator with `gen_range`,
//!   `gen_bool`, `shuffle`, and friends, API-compatible with the way the
//!   data generators used `rand::rngs::StdRng`;
//! * [`cases`] — a tiny property-test driver: run a closure over many
//!   independently-seeded generators and report the failing case seed;
//! * [`dist`] — value-distribution samplers (Zipf, duplicate-heavy,
//!   ulp-neighborhood, exact-grid fractions) that skew fuzzing toward the
//!   edge regions where boundary bugs live.
//!
//! Streams are stable across platforms and releases: tests and golden
//! snapshots may rely on exact sequences for a fixed seed.

#![warn(missing_docs)]

pub mod dist;

use std::ops::Range;

/// A seeded [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator.
///
/// SplitMix64 passes BigCrush, has a full 2^64 period for every seed, and
/// needs only one `u64` of state — more than enough statistical quality
/// for synthetic datasets and randomized tests.
///
/// ```
/// use qar_prng::Prng;
///
/// let mut a = Prng::seed_from_u64(7);
/// let mut b = Prng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x: i64 = a.gen_range(0..100);
/// assert!((0..100).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is
    /// fine; the first output is already well mixed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample from a half-open range; works for the integer types
    /// the workspace uses and for `f64`.
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// A reference to a uniformly chosen element (`None` when empty).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0..xs.len())])
        }
    }

    /// Derive an independent generator (for splitting one seed into
    /// per-case streams without correlating them).
    pub fn fork(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }
}

/// Types [`Prng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`. Panics when the range is empty.
    fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire, without the
                // rejection step): bias is < span / 2^64, far below any
                // statistical test in this workspace.
                let x = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + x) as Self
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let x = lo + rng.gen_f64() * (hi - lo);
        // Guard against rounding up to `hi` when the span is tiny.
        if x >= hi {
            lo
        } else {
            x
        }
    }
}

/// Run `prop` over `n` independently seeded generators — a minimal
/// stand-in for a property-testing harness. The closure receives the case
/// index and a fresh [`Prng`]; assertion failures inside it name the case,
/// so a failure is reproducible with `Prng::seed_from_u64(base_seed ^ i)`.
///
/// ```
/// qar_prng::cases(32, 0xABCD, |case, rng| {
///     let x: u32 = rng.gen_range(0..1000);
///     assert!(x < 1000, "case {case}");
/// });
/// ```
pub fn cases(n: u64, base_seed: u64, mut prop: impl FnMut(u64, &mut Prng)) {
    for i in 0..n {
        // Distinct, well-separated streams per case.
        let mut rng = Prng::seed_from_u64(base_seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F));
        prop(i, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the reference C
        // implementation (Vigna).
        let mut r = Prng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Prng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-50..-40);
            assert!((-50..-40).contains(&x));
            let f: f64 = r.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Prng::seed_from_u64(99);
        let n = 100_000;
        let mut counts = [0u32; 8];
        for _ in 0..n {
            counts[r.gen_range(0..8usize)] += 1;
        }
        let expect = n as f64 / 8.0;
        for c in counts {
            assert!((c as f64 - expect).abs() < expect * 0.05, "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Prng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = Prng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            xs, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
        assert!(xs.contains(r.choose(&xs).unwrap()));
        assert_eq!(r.choose::<u32>(&[]), None);
    }

    #[test]
    fn fork_decorrelates() {
        let mut r = Prng::seed_from_u64(3);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Prng::seed_from_u64(0);
        let _: u32 = r.gen_range(5..5);
    }

    #[test]
    fn cases_runs_each_once_with_distinct_seeds() {
        let mut seen = Vec::new();
        cases(16, 77, |i, rng| {
            seen.push((i, rng.next_u64()));
        });
        assert_eq!(seen.len(), 16);
        let mut outputs: Vec<u64> = seen.iter().map(|&(_, x)| x).collect();
        outputs.sort_unstable();
        outputs.dedup();
        assert_eq!(outputs.len(), 16, "case streams must differ");
    }
}
