//! Value-distribution generators for edge-region fuzzing.
//!
//! Uniform streams almost never hit the inputs where boundary bugs live:
//! duplicate-heavy columns that stress tie handling, values packed into a
//! few-ulp float neighborhood that stress midpoint rounding, and
//! fractions sitting *exactly* on `k/n` thresholds that stress
//! strict-vs-non-strict comparisons. These samplers make those regions
//! the common case instead of the astronomically rare one.

use crate::Prng;

impl Prng {
    /// Index sampled proportionally to `weights` (non-negative, not all
    /// zero — a degenerate weight vector falls back to uniform).
    pub fn gen_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "gen_weighted: no weights");
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return self.gen_range(0..weights.len());
        }
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                x -= w;
                if x < 0.0 {
                    return i;
                }
            }
        }
        weights.len() - 1
    }

    /// Zipf-distributed rank in `0..n`: rank `r` with probability
    /// proportional to `1 / (r + 1)^exponent`. Exponent `0` is uniform;
    /// larger exponents concentrate mass on the first ranks — the classic
    /// shape of a duplicate-heavy column.
    pub fn gen_zipf(&mut self, n: usize, exponent: f64) -> usize {
        assert!(n > 0, "gen_zipf: empty support");
        // n is small in this workspace (column cardinalities); the O(n)
        // inverse-CDF walk is simpler than rejection sampling and exact.
        let total: f64 = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(exponent)).sum();
        let mut x = self.gen_f64() * total;
        for r in 0..n {
            x -= 1.0 / ((r + 1) as f64).powf(exponent);
            if x < 0.0 {
                return r;
            }
        }
        n - 1
    }

    /// A duplicate-heavy column: `len` draws from only `distinct` values,
    /// Zipf-weighted so a few values dominate. The values themselves are
    /// spread over `0..distinct * 3` so runs and gaps both occur.
    pub fn gen_duplicate_heavy(&mut self, len: usize, distinct: usize) -> Vec<f64> {
        assert!(distinct > 0);
        let pool: Vec<f64> = (0..distinct)
            .map(|_| self.gen_range(0i64..(distinct as i64 * 3).max(2)) as f64)
            .collect();
        (0..len)
            .map(|_| pool[self.gen_zipf(distinct, 1.5)])
            .collect()
    }

    /// A column whose values all sit within `radius_ulps` representable
    /// floats of `base` — adjacent-float territory, where a midpoint
    /// between two values can round onto one of them.
    pub fn gen_ulp_neighborhood(&mut self, len: usize, base: f64, radius_ulps: u64) -> Vec<f64> {
        assert!(base.is_finite() && base > 0.0, "positive finite base");
        let bits = base.to_bits();
        (0..len)
            .map(|_| f64::from_bits(bits + self.gen_range(0..radius_ulps + 1)))
            .collect()
    }

    /// A clustered column: values in `clusters` groups, each group packed
    /// within `spread` of its center — k-means-style structure with
    /// near-duplicates inside clusters.
    pub fn gen_clustered(&mut self, len: usize, clusters: usize, spread: f64) -> Vec<f64> {
        assert!(clusters > 0);
        let centers: Vec<f64> = (0..clusters)
            .map(|i| i as f64 * 10.0 + self.gen_f64())
            .collect();
        (0..len)
            .map(|_| {
                let c = centers[self.gen_range(0..clusters)];
                c + self.gen_f64() * spread
            })
            .collect()
    }

    /// A fraction for thresholds like minsup/minconf, skewed toward the
    /// edge regions where rounding bugs live: exact grid points `k/n`
    /// (so `ceil(minsup·rows)` sits on an integer), near-zero, near-one,
    /// and the endpoints themselves. `denominator` is typically the row
    /// count of the table under test. Always in `(0, 1]`.
    pub fn gen_edge_fraction(&mut self, denominator: u64) -> f64 {
        let n = denominator.max(1);
        match self.gen_weighted(&[4.0, 2.0, 1.0, 1.0, 2.0]) {
            // Exactly k/n for a uniform k — the boundary where a support
            // count equals the threshold.
            0 => self.gen_range(1..n + 1) as f64 / n as f64,
            // Near zero (everything frequent).
            1 => f64::from_bits(self.gen_range(1u64..0x0010_0000_0000_0000)).max(1e-300),
            // Just below one.
            2 => 1.0 - f64::EPSILON * self.gen_range(1i64..8) as f64,
            // Exactly one.
            3 => 1.0,
            // Plain uniform.
            _ => loop {
                let x = self.gen_f64();
                if x > 0.0 {
                    break x;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_tracks_weights() {
        let mut r = Prng::seed_from_u64(1);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.gen_weighted(&[1.0, 2.0, 1.0])] += 1;
        }
        assert!(counts[1] > counts[0] && counts[1] > counts[2], "{counts:?}");
        // Zero-weight entries are never picked.
        for _ in 0..1000 {
            assert_ne!(r.gen_weighted(&[1.0, 0.0, 1.0]), 1);
        }
        // All-zero weights degrade to uniform without panicking.
        let _ = r.gen_weighted(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_concentrates_on_low_ranks() {
        let mut r = Prng::seed_from_u64(2);
        let mut counts = vec![0u32; 6];
        for _ in 0..30_000 {
            counts[r.gen_zipf(6, 1.5)] += 1;
        }
        assert!(counts[0] > counts[5] * 4, "{counts:?}");
        // Exponent 0 is uniform-ish.
        let mut flat = vec![0u32; 4];
        for _ in 0..20_000 {
            flat[r.gen_zipf(4, 0.0)] += 1;
        }
        let (lo, hi) = (
            *flat.iter().min().unwrap() as f64,
            *flat.iter().max().unwrap() as f64,
        );
        assert!(hi / lo < 1.2, "{flat:?}");
    }

    #[test]
    fn duplicate_heavy_has_heavy_duplicates() {
        let mut r = Prng::seed_from_u64(3);
        let v = r.gen_duplicate_heavy(100, 4);
        assert_eq!(v.len(), 100);
        let mut d = v.clone();
        d.sort_by(f64::total_cmp);
        d.dedup();
        assert!(d.len() <= 4, "at most `distinct` values: {d:?}");
    }

    #[test]
    fn ulp_neighborhood_stays_within_radius() {
        let mut r = Prng::seed_from_u64(4);
        let base = 1.0f64;
        let v = r.gen_ulp_neighborhood(200, base, 3);
        for x in &v {
            let d = x.to_bits() - base.to_bits();
            assert!(d <= 3, "{x} is {d} ulps from base");
        }
        // With radius 3 and 200 draws, adjacent floats must occur.
        let mut d: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
        d.sort_unstable();
        d.dedup();
        assert!(d.len() >= 3, "neighborhood too narrow: {d:?}");
    }

    #[test]
    fn clustered_values_cluster() {
        let mut r = Prng::seed_from_u64(5);
        let v = r.gen_clustered(300, 3, 0.5);
        assert_eq!(v.len(), 300);
        // Every value is within spread+1 of some cluster center lattice
        // point (centers at ~0, ~10, ~20).
        for x in &v {
            let nearest = (x / 10.0).round() * 10.0;
            assert!((x - nearest).abs() < 2.0, "{x} not near any cluster");
        }
    }

    #[test]
    fn edge_fractions_are_valid_and_hit_edges() {
        let mut r = Prng::seed_from_u64(6);
        let mut exact_grid = 0;
        let mut ones = 0;
        for _ in 0..5000 {
            let f = r.gen_edge_fraction(20);
            assert!(f > 0.0 && f <= 1.0, "{f} out of (0, 1]");
            if f == 1.0 {
                ones += 1;
            }
            if (f * 20.0).fract() == 0.0 && f < 1.0 {
                exact_grid += 1;
            }
        }
        assert!(exact_grid > 500, "grid fractions too rare: {exact_grid}");
        assert!(ones > 100, "exact 1.0 too rare: {ones}");
    }

    #[test]
    fn dist_streams_are_deterministic() {
        let mut a = Prng::seed_from_u64(9);
        let mut b = Prng::seed_from_u64(9);
        assert_eq!(a.gen_duplicate_heavy(50, 5), b.gen_duplicate_heavy(50, 5));
        assert_eq!(a.gen_edge_fraction(17), b.gen_edge_fraction(17));
    }
}
