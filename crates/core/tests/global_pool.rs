//! `WorkerPool::global()` is a process-wide singleton: the free counting
//! entry points (`ScanOptions.pool == None`) all share it, across calls
//! and across `Miner` instances, and it never respawns. These paths were
//! previously only exercised indirectly through full mining runs.

use qar_core::supercand::{count_candidates, count_candidates_sharded};
use qar_core::{Miner, MinerConfig, PartitionSpec, WorkerPool};
use qar_itemset::{Item, Itemset};
use qar_table::{EncodedTable, Schema, Table, Value};
use std::num::NonZeroUsize;

fn people(rows: usize) -> Table {
    let schema = Schema::builder()
        .quantitative("age")
        .categorical("married")
        .quantitative("num_cars")
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    let labels = ["Yes", "No"];
    for i in 0..rows {
        t.push_row(&[
            Value::Int(20 + (i % 30) as i64),
            Value::from(labels[i % 2]),
            Value::Int((i % 3) as i64),
        ])
        .unwrap();
    }
    t
}

fn candidates() -> Vec<Itemset> {
    vec![
        vec![Item::range(0, 3, 8), Item::value(1, 0)]
            .into_iter()
            .collect(),
        vec![Item::range(0, 0, 14), Item::value(2, 2)]
            .into_iter()
            .collect(),
        vec![Item::value(1, 1), Item::value(2, 1)]
            .into_iter()
            .collect(),
    ]
}

fn config(threads: usize) -> MinerConfig {
    MinerConfig {
        min_support: 0.1,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::FixedIntervals(5),
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 0,
        parallelism: NonZeroUsize::new(threads),
        kernel: Default::default(),
    }
}

/// Sharded counting with no explicit pool routes through
/// `WorkerPool::global()`; interleaving those scans with runs of two
/// distinct `Miner` instances (each owning a private pool) must leave the
/// global pool untouched — same instance, same worker count — and every
/// counting result bit-identical to the serial reference.
#[test]
fn global_pool_survives_unchanged_across_miners_and_free_scans() {
    let global = WorkerPool::global();
    let workers_before = global.workers();

    let table = people(400);
    let encoded = EncodedTable::encode_full_resolution(&table).unwrap();
    let cands = candidates();
    let (serial_counts, serial_stats) = count_candidates(&encoded, &cands, None);
    assert!(!serial_stats.pooled, "one thread scans inline");

    // Two independent Miner instances, each with its own pool.
    let first = Miner::new(config(2)).mine(&table).expect("first miner");
    // A global-pool scan between the two miners.
    let (mid_counts, mid_stats) = count_candidates_sharded(&encoded, &cands, None, 4);
    assert!(mid_stats.pooled, "four shards go through the pool");
    assert_eq!(mid_counts, serial_counts);
    let second = Miner::new(config(3)).mine(&table).expect("second miner");

    assert_eq!(first.rules.len(), second.rules.len());
    for (a, b) in first.rules.iter().zip(&second.rules) {
        assert_eq!(a.support, b.support);
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }

    // And once more after both miners (and their pools) are gone.
    drop((first, second));
    let (after_counts, _) = count_candidates_sharded(&encoded, &cands, None, 4);
    assert_eq!(after_counts, serial_counts);

    let global_after = WorkerPool::global();
    assert!(
        std::ptr::eq(global, global_after),
        "global() is the same instance for the life of the process"
    );
    assert_eq!(global_after.workers(), workers_before);
}

/// One `Miner` reuses its own pool across repeated runs (the pool is
/// lazily created on the first parallel pass and kept), and the results
/// stay identical run over run.
#[test]
fn one_miner_reuses_its_pool_across_runs() {
    let table = people(400);
    let mut miner = Miner::new(config(2));
    let first = miner.mine(&table).expect("first run");
    let second = miner.mine(&table).expect("second run");
    assert!(second.stats.encoding_reused, "same table hits the cache");
    assert_eq!(first.rules.len(), second.rules.len());
    for (a, b) in first.rules.iter().zip(&second.rules) {
        assert_eq!(a.support, b.support);
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }
}
