//! The level-wise mining loop (Step 3, second half; Section 5).

use crate::candidate::{generate_candidates, interest_prune_level1};
use crate::config::{CancelledInfo, InterestMode, MinerConfig, MinerError};
use crate::frequent::{find_frequent_items, QuantFrequentItemsets};
use crate::pool::WorkerPool;
use crate::supercand::{
    count_candidates_opts, count_pairs_opts, PassStats, ScanCancelled, ScanOptions,
};

/// Cell budget for the implicit pass-2 arrays (64 MB of u64 cells).
const PAIR_CELL_BUDGET: usize = 8 << 20;
use qar_itemset::{CounterKind, Itemset};
use qar_table::{AttributeKind, EncodedTable};
use qar_trace::{event::micros, CancelToken, ProgressSink, TraceEvent};

/// Per-pass numbers collected while mining.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MineStats {
    /// `candidates[k-2]` — |C_k| before counting, for k ≥ 2.
    pub candidates_per_pass: Vec<usize>,
    /// Super-candidate statistics per pass, aligned with
    /// `candidates_per_pass`.
    pub pass_stats: Vec<PassStats>,
    /// Frequent items removed by the Lemma 5 interest prune.
    pub interest_pruned_items: usize,
    /// Record-scan time of pass 1 (per-attribute value counting).
    pub pass1_scan_time: std::time::Duration,
    /// Worker threads the counting passes were allowed to use (the
    /// resolved [`MinerConfig::effective_parallelism`]; actual shard
    /// counts per pass are in [`PassStats::shard_scan_times`]).
    pub parallelism: usize,
}

impl MineStats {
    /// Total record-scan time across all passes — the component of the
    /// runtime the paper's Section 6 cost model says is "directly
    /// proportional to the number of records".
    pub fn total_scan_time(&self) -> std::time::Duration {
        self.pass1_scan_time
            + self
                .pass_stats
                .iter()
                .map(|p| p.scan_time)
                .sum::<std::time::Duration>()
    }
}

/// The observability context a mining run carries: an optional event sink
/// and an optional cancellation token. Built by the [`crate::Miner`]
/// facade; the deprecated free functions run with [`RunCtx::none`].
#[derive(Clone, Copy, Default)]
pub(crate) struct RunCtx<'a> {
    /// Receives one [`TraceEvent`] per pipeline milestone.
    pub sink: Option<&'a dyn ProgressSink>,
    /// Checked at pass boundaries and inside shard scans.
    pub cancel: Option<&'a CancelToken>,
    /// Runs the shard tasks of every counting pass. `None` falls back to
    /// the process-wide [`WorkerPool::global`].
    pub pool: Option<&'a WorkerPool>,
}

impl<'a> RunCtx<'a> {
    /// No observers, no cancellation — the legacy behavior.
    pub fn none() -> Self {
        RunCtx::default()
    }

    /// Emit an event if a sink is attached (the closure keeps event
    /// construction off the unobserved path).
    pub(crate) fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink {
            sink.on_event(&make());
        }
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Emit the `cancelled` event and build the [`MinerError::Cancelled`]
    /// carrying the completed passes' statistics.
    pub(crate) fn cancelled(&self, pass: usize, stats: MineStats) -> MinerError {
        let deadline = self.cancel.is_some_and(CancelToken::deadline_exceeded);
        self.emit(|| TraceEvent::Cancelled { pass, deadline });
        MinerError::Cancelled(CancelledInfo {
            pass,
            deadline_exceeded: deadline,
            stats,
        })
    }
}

/// A [`TraceEvent::PassFinished`] for a counting pass `k ≥ 2`.
pub(crate) fn pass_finished_event(
    pass: usize,
    candidates: usize,
    frequent: usize,
    stats: &PassStats,
) -> TraceEvent {
    TraceEvent::PassFinished {
        pass,
        candidates,
        frequent,
        pruned: 0,
        super_candidates: stats.super_candidates,
        array_backed: stats.array_backed,
        rtree_backed: stats.rtree_backed,
        hash_tree_nodes: stats.hash_tree_nodes,
        counter_bytes: stats.counter_bytes,
        scan_us: micros(stats.scan_time),
        merge_us: micros(stats.merge_time),
        shard_scan_us: stats.shard_scan_times.iter().map(|&d| micros(d)).collect(),
        pooled: stats.pooled,
        memoized: stats.memoized,
        distinct_tuples: stats.distinct_tuples,
        memo_hits: stats.memo_hits,
        kernel: stats.kernel.clone(),
    }
}

/// Mine all frequent itemsets of an already-encoded table.
///
/// `force_counter` pins the quantitative counting backend for ablations.
#[deprecated(
    since = "0.1.0",
    note = "use the `Miner` facade: `Miner::new(config).mine_encoded(&table)` \
            (or `.with_counter(..)` for the backend pin)"
)]
pub fn mine_encoded(
    table: &EncodedTable,
    config: &MinerConfig,
    force_counter: Option<CounterKind>,
) -> Result<(QuantFrequentItemsets, MineStats), MinerError> {
    mine_encoded_ctx(table, config, force_counter, RunCtx::none())
}

/// [`mine_encoded`] with an observability context: every pass emits trace
/// events into `ctx.sink`, and `ctx.cancel` aborts the run cooperatively
/// (pass boundaries plus periodic checks inside every shard scan),
/// returning the completed passes' statistics in
/// [`MinerError::Cancelled`].
pub(crate) fn mine_encoded_ctx(
    table: &EncodedTable,
    config: &MinerConfig,
    force_counter: Option<CounterKind>,
    ctx: RunCtx<'_>,
) -> Result<(QuantFrequentItemsets, MineStats), MinerError> {
    config.validate()?;
    let num_rows = table.num_rows() as u64;
    if num_rows == 0 {
        return Err(MinerError::Schema(qar_table::TableError::EmptyTable));
    }
    let min_count = ((config.min_support * num_rows as f64).ceil() as u64).max(1);
    let max_count = (config.max_support * num_rows as f64).floor() as u64;

    let mut frequent = QuantFrequentItemsets::new(num_rows);
    let mut stats = MineStats::default();
    let num_threads = config.effective_parallelism();
    stats.parallelism = num_threads;
    let scan_opts = ScanOptions {
        cancel: ctx.cancel,
        pool: ctx.pool,
        kernel: config.kernel,
        ..ScanOptions::new(num_threads)
    };

    let run_started = std::time::Instant::now();
    ctx.emit(|| TraceEvent::RunStarted {
        rows: num_rows,
        attributes: table.schema().len(),
        min_count,
        max_count,
        parallelism: num_threads,
    });
    if ctx.is_cancelled() {
        return Err(ctx.cancelled(1, stats));
    }

    // Pass 1: frequent items.
    ctx.emit(|| TraceEvent::PassStarted {
        pass: 1,
        candidates: 0,
    });
    let pass1_started = std::time::Instant::now();
    let items = find_frequent_items(table, min_count, max_count);
    stats.pass1_scan_time = pass1_started.elapsed();
    let mut level1: Vec<(Itemset, u64)> = items
        .items
        .iter()
        .map(|&(item, count)| (Itemset::singleton(item), count))
        .collect();

    // Lemma 5 interest prune (only sound when the user wants support AND
    // confidence above expectation).
    if let Some(interest) = &config.interest {
        if interest.prune_candidates && interest.mode == InterestMode::SupportAndConfidence {
            let before = level1.len();
            // Build a transient store so the prune can see fractions.
            let mut probe = QuantFrequentItemsets::new(num_rows);
            probe.push_level(level1.clone());
            let schema = table.schema();
            let is_quant = |attr: u32| {
                schema.attributes()[attr as usize].kind() == AttributeKind::Quantitative
            };
            level1 = interest_prune_level1(level1, &probe, interest.level, &is_quant);
            stats.interest_pruned_items = before - level1.len();
        }
    }
    ctx.emit(|| TraceEvent::PassFinished {
        pass: 1,
        candidates: 0,
        frequent: level1.len(),
        pruned: stats.interest_pruned_items,
        super_candidates: 0,
        array_backed: 0,
        rtree_backed: 0,
        hash_tree_nodes: 0,
        counter_bytes: 0,
        scan_us: micros(stats.pass1_scan_time),
        merge_us: 0,
        shard_scan_us: Vec::new(),
        pooled: false,
        memoized: false,
        distinct_tuples: 0,
        memo_hits: 0,
        // Pass 1 is a plain per-attribute value count — no hash tree, no
        // cache, no masks — which is the direct kernel's shape.
        kernel: "direct".to_string(),
    });
    if level1.is_empty() {
        ctx.emit(|| TraceEvent::RunFinished {
            passes: 1,
            frequent_total: 0,
            elapsed_us: micros(run_started.elapsed()),
        });
        return Ok((frequent, stats));
    }
    frequent.push_level(level1);

    // Passes k >= 2.
    loop {
        let k = frequent.levels.len() + 1;
        if config.max_itemset_size != 0 && k > config.max_itemset_size {
            break;
        }
        if ctx.is_cancelled() {
            return Err(ctx.cancelled(k, stats));
        }
        let prev = frequent.levels.last().expect("level 1 pushed");
        let level: Vec<(Itemset, u64)> = if k == 2 && force_counter.is_none() {
            // C_2 is the cross product of frequent items over distinct
            // attribute pairs — count it implicitly (one 2-D array per
            // attribute pair) instead of materializing millions of pairs.
            let mut items_by_attr: std::collections::BTreeMap<u32, Vec<(qar_itemset::Item, u64)>> =
                std::collections::BTreeMap::new();
            let mut c2_size = 0usize;
            for (itemset, count) in prev {
                items_by_attr
                    .entry(itemset.items()[0].attr)
                    .or_default()
                    .push((itemset.items()[0], *count));
            }
            let sizes: Vec<usize> = items_by_attr.values().map(|v| v.len()).collect();
            for i in 0..sizes.len() {
                for j in (i + 1)..sizes.len() {
                    c2_size += sizes[i] * sizes[j];
                }
            }
            stats.candidates_per_pass.push(c2_size);
            ctx.emit(|| TraceEvent::PassStarted {
                pass: k,
                candidates: c2_size,
            });
            let (level, pass) = match count_pairs_opts(
                table,
                &items_by_attr,
                min_count,
                PAIR_CELL_BUDGET,
                scan_opts,
            ) {
                Ok(result) => result,
                Err(ScanCancelled) => return Err(ctx.cancelled(k, stats)),
            };
            ctx.emit(|| pass_finished_event(k, c2_size, level.len(), &pass));
            stats.pass_stats.push(pass);
            level
        } else {
            let candidates = generate_candidates(prev);
            if candidates.is_empty() {
                break;
            }
            stats.candidates_per_pass.push(candidates.len());
            ctx.emit(|| TraceEvent::PassStarted {
                pass: k,
                candidates: candidates.len(),
            });
            let (counts, pass) =
                match count_candidates_opts(table, &candidates, force_counter, scan_opts) {
                    Ok(result) => result,
                    Err(ScanCancelled) => return Err(ctx.cancelled(k, stats)),
                };
            let level: Vec<(Itemset, u64)> = candidates
                .into_iter()
                .zip(counts)
                .filter(|(_, c)| *c >= min_count)
                .collect();
            ctx.emit(|| {
                pass_finished_event(k, stats.candidates_per_pass[k - 2], level.len(), &pass)
            });
            stats.pass_stats.push(pass);
            level
        };
        if level.is_empty() {
            break;
        }
        frequent.push_level(level);
    }
    ctx.emit(|| TraceEvent::RunFinished {
        passes: 1 + stats.pass_stats.len(),
        frequent_total: frequent.total(),
        elapsed_us: micros(run_started.elapsed()),
    });
    Ok((frequent, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionSpec;
    use qar_itemset::Item;
    use qar_table::{AttributeEncoder, AttributeId, Schema, Table, Value};

    fn mine(
        table: &EncodedTable,
        config: &MinerConfig,
        force: Option<CounterKind>,
    ) -> Result<(QuantFrequentItemsets, MineStats), MinerError> {
        mine_encoded_ctx(table, config, force, RunCtx::none())
    }

    /// Figure 3's People table with the Figure 3(b) Age partitioning.
    fn people_fig3() -> EncodedTable {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        let ages = t.column(AttributeId(0)).as_quantitative().unwrap().to_vec();
        let cars = t.column(AttributeId(2)).as_quantitative().unwrap().to_vec();
        let encoders = vec![
            AttributeEncoder::quant_intervals_from(&ages, vec![25.0, 30.0, 35.0], true),
            AttributeEncoder::categorical_from(t.column(AttributeId(1)).as_categorical().unwrap()),
            AttributeEncoder::quant_values_from(&cars, true),
        ];
        EncodedTable::encode(&t, encoders).unwrap()
    }

    fn fig3_config() -> MinerConfig {
        MinerConfig {
            min_support: 0.4,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: PartitionSpec::None, // already encoded
            partition_strategy: Default::default(),
            taxonomies: Default::default(),
            interest: None,
            max_itemset_size: 0,
            parallelism: None,
            kernel: Default::default(),
        }
    }

    #[test]
    fn figure_3f_frequent_itemsets() {
        let enc = people_fig3();
        let (frequent, _) = mine(&enc, &fig3_config(), None).unwrap();
        // The paper's sample (Figure 3f):
        // {⟨Age: 30..39⟩} support 2, {⟨Age: 20..29⟩} support 3,
        // {⟨Married: Yes⟩} 3, {⟨Married: No⟩} 2, {⟨NumCars: 0..1⟩} 3,
        // {⟨Age: 30..39⟩, ⟨Married: Yes⟩} 2.
        let sup = |items: Vec<Item>| frequent.support_of(&Itemset::new(items));
        assert_eq!(sup(vec![Item::range(0, 2, 3)]), Some(2)); // Age 30..39
        assert_eq!(sup(vec![Item::range(0, 0, 1)]), Some(3)); // Age 20..29
        assert_eq!(sup(vec![Item::value(1, 1)]), Some(3)); // Married Yes
        assert_eq!(sup(vec![Item::value(1, 0)]), Some(2)); // Married No
        assert_eq!(sup(vec![Item::range(2, 0, 1)]), Some(3)); // NumCars 0..1
        assert_eq!(sup(vec![Item::range(0, 2, 3), Item::value(1, 1)]), Some(2));
        // The headline rule's 3-itemset:
        // {⟨Age: 30..39⟩, ⟨Married: Yes⟩, ⟨NumCars: 2⟩} support 2.
        assert_eq!(
            sup(vec![
                Item::range(0, 2, 3),
                Item::value(1, 1),
                Item::value(2, 2)
            ]),
            Some(2)
        );
    }

    #[test]
    fn all_reported_supports_are_exact() {
        let enc = people_fig3();
        let (frequent, _) = mine(&enc, &fig3_config(), None).unwrap();
        for (itemset, count) in frequent.iter() {
            let recount =
                crate::supercand::count_candidates_naive(&enc, std::slice::from_ref(itemset))[0];
            assert_eq!(*count, recount, "{itemset}");
        }
    }

    #[test]
    fn support_is_anti_monotone_across_levels() {
        let enc = people_fig3();
        let (frequent, _) = mine(&enc, &fig3_config(), None).unwrap();
        for level in frequent.levels.iter().skip(1) {
            for (itemset, count) in level {
                for sub in itemset.subsets_dropping_one() {
                    let sub_count = frequent.support_of(&sub).expect("subset frequent");
                    assert!(sub_count >= *count);
                }
            }
        }
    }

    #[test]
    fn max_itemset_size_caps_levels() {
        let enc = people_fig3();
        let mut cfg = fig3_config();
        cfg.max_itemset_size = 1;
        let (frequent, stats) = mine(&enc, &cfg, None).unwrap();
        assert_eq!(frequent.levels.len(), 1);
        assert!(stats.candidates_per_pass.is_empty());
    }

    #[test]
    fn empty_table_rejected() {
        let schema = Schema::builder().quantitative("x").build().unwrap();
        let t = Table::new(schema);
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        assert!(matches!(
            mine(&enc, &fig3_config(), None),
            Err(MinerError::Schema(_))
        ));
    }

    #[test]
    fn interest_prune_reduces_items() {
        // With R = 2 items of support > 50% are pruned: ⟨NumCars: 0..2⟩
        // (the full range, support 5) and friends.
        let enc = people_fig3();
        let mut cfg = fig3_config();
        cfg.interest = Some(crate::config::InterestConfig {
            level: 2.0,
            mode: InterestMode::SupportAndConfidence,
            prune_candidates: true,
        });
        let (pruned, stats) = mine(&enc, &cfg, None).unwrap();
        assert!(stats.interest_pruned_items > 0);
        // ⟨Age: 20..29⟩ has support 3/5 = 0.6 > 0.5 -> pruned.
        assert_eq!(
            pruned.support_of(&Itemset::singleton(Item::range(0, 0, 1))),
            None
        );
        // Categorical ⟨Married: Yes⟩ (0.6) stays.
        assert_eq!(
            pruned.support_of(&Itemset::singleton(Item::value(1, 1))),
            Some(3)
        );
    }

    #[test]
    fn counting_backends_agree_end_to_end() {
        let enc = people_fig3();
        let cfg = fig3_config();
        let (a, _) = mine(&enc, &cfg, Some(CounterKind::Array)).unwrap();
        let (r, _) = mine(&enc, &cfg, Some(CounterKind::RTree)).unwrap();
        assert_eq!(a.total(), r.total());
        for (itemset, count) in a.iter() {
            assert_eq!(r.support_of(itemset), Some(*count));
        }
    }

    #[test]
    fn events_cover_every_pass_and_run_lifecycle() {
        let enc = people_fig3();
        let sink = qar_trace::CollectingSink::new();
        let ctx = RunCtx {
            sink: Some(&sink),
            ..RunCtx::none()
        };
        let (frequent, stats) = mine_encoded_ctx(&enc, &fig3_config(), None, ctx).unwrap();
        let events = sink.events();
        assert_eq!(events[0].name(), "run_started");
        assert_eq!(events.last().unwrap().name(), "run_finished");
        let started = events.iter().filter(|e| e.name() == "pass_started").count();
        let finished = events
            .iter()
            .filter(|e| e.name() == "pass_finished")
            .count();
        // One started/finished pair per counting pass (pass 1 + each k).
        assert_eq!(started, 1 + stats.pass_stats.len());
        assert_eq!(started, finished);
        assert!(frequent.total() > 0);
        // Pass-finished events agree with the returned stats.
        for event in &events {
            if let TraceEvent::PassFinished {
                pass,
                candidates,
                super_candidates,
                ..
            } = event
            {
                if *pass >= 2 {
                    assert_eq!(*candidates, stats.candidates_per_pass[pass - 2]);
                    assert_eq!(
                        *super_candidates,
                        stats.pass_stats[pass - 2].super_candidates
                    );
                }
            }
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_pass_one() {
        let enc = people_fig3();
        let token = CancelToken::new();
        token.cancel();
        let ctx = RunCtx {
            cancel: Some(&token),
            ..RunCtx::none()
        };
        match mine_encoded_ctx(&enc, &fig3_config(), None, ctx) {
            Err(MinerError::Cancelled(info)) => {
                assert_eq!(info.pass, 1);
                assert!(!info.deadline_exceeded);
                assert!(info.stats.pass_stats.is_empty());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let enc = people_fig3();
        let token = CancelToken::new();
        let ctx = RunCtx {
            cancel: Some(&token),
            ..RunCtx::none()
        };
        let (with_token, _) = mine_encoded_ctx(&enc, &fig3_config(), None, ctx).unwrap();
        let (plain, _) = mine(&enc, &fig3_config(), None).unwrap();
        assert_eq!(with_token.total(), plain.total());
        for (itemset, count) in plain.iter() {
            assert_eq!(with_token.support_of(itemset), Some(*count));
        }
    }
}
