//! Rule generation (Step 4).
//!
//! "If, say, ABCD and AB are frequent itemsets, then we can determine if
//! the rule AB ⇒ CD holds by computing the ratio conf =
//! support(ABCD)/support(AB)." Confidence is antitone in the consequent,
//! so consequents are grown apriori-style and failing ones never extended
//! (the \[AS94\] rule generator the paper reuses).

use crate::frequent::QuantFrequentItemsets;
use qar_itemset::{Item, Itemset};

/// A quantitative association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantRule {
    /// Antecedent itemset (non-empty).
    pub antecedent: Itemset,
    /// Consequent itemset (non-empty, attribute-disjoint from the
    /// antecedent).
    pub consequent: Itemset,
    /// Support count of `antecedent ∪ consequent`.
    pub support: u64,
    /// `support / support(antecedent)`.
    pub confidence: f64,
}

impl QuantRule {
    /// The rule's full itemset `antecedent ∪ consequent`.
    pub fn itemset(&self) -> Itemset {
        self.antecedent.union_disjoint(&self.consequent)
    }

    /// Fractional support given the table size.
    pub fn support_fraction(&self, num_rows: u64) -> f64 {
        self.support as f64 / num_rows as f64
    }

    /// Is `other` a strict generalization of this rule (same attribute
    /// split, each side's ranges containing ours, at least one strictly)?
    pub fn is_generalization_of(&self, other: &QuantRule) -> bool {
        self.antecedent.generalizes(&other.antecedent)
            && self.consequent.generalizes(&other.consequent)
            && (self.antecedent != other.antecedent || self.consequent != other.consequent)
    }
}

/// Generate every rule meeting `min_confidence` from the frequent
/// itemsets, sorted by (antecedent, consequent).
pub fn generate_rules(frequent: &QuantFrequentItemsets, min_confidence: f64) -> Vec<QuantRule> {
    let mut rules = Vec::new();
    for level in frequent.levels.iter().skip(1) {
        for (itemset, support) in level {
            let seeds: Vec<Itemset> = itemset
                .items()
                .iter()
                .map(|&i| Itemset::singleton(i))
                .collect();
            grow(
                frequent,
                itemset,
                *support,
                seeds,
                min_confidence,
                &mut rules,
            );
        }
    }
    rules.sort_by(|a, b| {
        a.antecedent
            .cmp(&b.antecedent)
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

fn grow(
    frequent: &QuantFrequentItemsets,
    itemset: &Itemset,
    support: u64,
    consequents: Vec<Itemset>,
    min_confidence: f64,
    rules: &mut Vec<QuantRule>,
) {
    if consequents.is_empty() || consequents[0].len() >= itemset.len() {
        return;
    }
    let mut passing: Vec<Itemset> = Vec::new();
    for consequent in consequents {
        let antecedent = itemset.minus_attributes(&consequent);
        let ant_support = frequent
            .support_of(&antecedent)
            .expect("subsets of frequent itemsets are frequent");
        let confidence = support as f64 / ant_support as f64;
        if confidence >= min_confidence {
            rules.push(QuantRule {
                antecedent,
                consequent: consequent.clone(),
                support,
                confidence,
            });
            passing.push(consequent);
        }
    }
    // Grow consequents: join passing m-consequents sharing m-1 items.
    let mut next: Vec<Itemset> = Vec::new();
    for i in 0..passing.len() {
        for j in (i + 1)..passing.len() {
            let a = &passing[i];
            let b = &passing[j];
            let m = a.len();
            if a.items()[..m - 1] == b.items()[..m - 1]
                && a.items()[m - 1].attr != b.items()[m - 1].attr
            {
                let mut items: Vec<Item> = a.items().to_vec();
                items.push(b.items()[m - 1]);
                next.push(Itemset::new(items));
            }
        }
    }
    grow(frequent, itemset, support, next, min_confidence, rules);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the Figure 3 frequent itemsets by hand (5 records).
    fn fig3_frequent() -> QuantFrequentItemsets {
        let mut f = QuantFrequentItemsets::new(5);
        let age_30_39 = Item::range(0, 2, 3);
        let age_20_29 = Item::range(0, 0, 1);
        let married_yes = Item::value(1, 1);
        let married_no = Item::value(1, 0);
        let cars_0_1 = Item::range(2, 0, 1);
        let cars_2 = Item::value(2, 2);
        f.push_level(vec![
            (Itemset::singleton(age_30_39), 2),
            (Itemset::singleton(age_20_29), 3),
            (Itemset::singleton(married_yes), 3),
            (Itemset::singleton(married_no), 2),
            (Itemset::singleton(cars_0_1), 3),
            (Itemset::singleton(cars_2), 2),
        ]);
        f.push_level(vec![
            (Itemset::new(vec![age_30_39, married_yes]), 2),
            (Itemset::new(vec![age_30_39, cars_2]), 2),
            (Itemset::new(vec![married_yes, cars_2]), 2),
            (Itemset::new(vec![age_20_29, cars_0_1]), 3),
        ]);
        f.push_level(vec![(
            Itemset::new(vec![age_30_39, married_yes, cars_2]),
            2,
        )]);
        f
    }

    #[test]
    fn figure_1_headline_rule() {
        // ⟨Age: 30..39⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩,
        // support 40 %, confidence 100 %.
        let rules = generate_rules(&fig3_frequent(), 0.5);
        let ant = Itemset::new(vec![Item::range(0, 2, 3), Item::value(1, 1)]);
        let con = Itemset::singleton(Item::value(2, 2));
        let r = rules
            .iter()
            .find(|r| r.antecedent == ant && r.consequent == con)
            .expect("headline rule missing");
        assert_eq!(r.support, 2);
        assert_eq!(r.confidence, 1.0);
        assert_eq!(r.support_fraction(5), 0.4);
    }

    #[test]
    fn figure_3g_age_rule() {
        // ⟨Age: 20..29⟩ ⇒ ⟨NumCars: 0..1⟩, support 60 %, conf 100 %...
        // support({Age 20..29, NumCars 0..1}) = 3, support({Age 20..29}) = 3.
        let rules = generate_rules(&fig3_frequent(), 0.5);
        let r = rules
            .iter()
            .find(|r| {
                r.antecedent == Itemset::singleton(Item::range(0, 0, 1))
                    && r.consequent == Itemset::singleton(Item::range(2, 0, 1))
            })
            .expect("rule missing");
        assert_eq!(r.support, 3);
        assert!((r.confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_respected_and_exact() {
        let f = fig3_frequent();
        for minconf in [0.0, 0.5, 0.8, 1.0] {
            let rules = generate_rules(&f, minconf);
            for r in &rules {
                assert!(r.confidence >= minconf);
                let ant_sup = f.support_of(&r.antecedent).unwrap();
                assert!((r.confidence - r.support as f64 / ant_sup as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rules_match_exhaustive_enumeration() {
        let f = fig3_frequent();
        let minconf = 0.5;
        let fast: Vec<(Itemset, Itemset)> = generate_rules(&f, minconf)
            .into_iter()
            .map(|r| (r.antecedent, r.consequent))
            .collect();
        let mut brute = Vec::new();
        for (itemset, support) in f.iter().filter(|(s, _)| s.len() >= 2) {
            let k = itemset.len();
            for mask in 1u32..(1 << k) - 1 {
                let consequent: Itemset = (0..k)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| itemset.items()[i])
                    .collect();
                let antecedent = itemset.minus_attributes(&consequent);
                let conf = *support as f64 / f.support_of(&antecedent).unwrap() as f64;
                if conf >= minconf {
                    brute.push((antecedent, consequent));
                }
            }
        }
        brute.sort();
        assert_eq!(fast, brute);
    }

    #[test]
    fn rule_generalization_relation() {
        let wide = QuantRule {
            antecedent: Itemset::singleton(Item::range(0, 0, 9)),
            consequent: Itemset::singleton(Item::range(1, 0, 5)),
            support: 10,
            confidence: 0.8,
        };
        let narrow = QuantRule {
            antecedent: Itemset::singleton(Item::range(0, 2, 5)),
            consequent: Itemset::singleton(Item::range(1, 0, 5)),
            support: 4,
            confidence: 0.7,
        };
        assert!(wide.is_generalization_of(&narrow));
        assert!(!narrow.is_generalization_of(&wide));
        assert!(!wide.is_generalization_of(&wide));
        assert_eq!(narrow.itemset().len(), 2);
    }
}
