//! A persistent worker pool for the support-counting scan.
//!
//! The paper's cost model (Section 6) says pass runtime is dominated by
//! the record scan, and a mining run issues one sharded scan per pass —
//! so spawning OS threads per pass (the previous `std::thread::scope`
//! design) pays thread start-up latency `k` times per run. The pool here
//! is created once (per [`crate::Miner`], or process-wide for the free
//! counting functions) and reused by every subsequent scan: workers park
//! on a shared job queue between passes.
//!
//! The pool runs *borrowed* closures — shard tasks capture `&EncodedTable`
//! and `&[SuperPlan]` from the caller's stack — which a channel of
//! `'static` jobs cannot express directly. [`WorkerPool::run`] therefore
//! erases the closure lifetime and restores soundness structurally: it
//! never returns (or unwinds) before every submitted job has finished, so
//! no job can outlive the borrows it captured. This is the same contract
//! scoped-thread APIs provide, minus the per-call spawn.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A lifetime-erased job, executable on any worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads executing submitted closures; see the
/// module docs for why this exists and how borrowing stays sound.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `threads.max(1)` workers, parked until jobs arrive.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("qar-scan-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn scan worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The process-wide pool used by counting entry points that are not
    /// handed a [`crate::Miner`]'s own pool, sized to the machine. Created
    /// on first use and kept for the life of the process (its workers park
    /// between scans).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            WorkerPool::new(threads)
        })
    }

    /// Enqueue a detached job and return immediately. Unlike
    /// [`WorkerPool::run`] the job must be `'static` (it outlives the
    /// caller's frame) and its result — including a panic, which is
    /// caught so the worker survives — is discarded. This is the
    /// long-lived-service entry point: `qar serve` runs one connection
    /// handler per job, so the same workers that count a mining pass can
    /// carry client connections between passes.
    ///
    /// Jobs queued when the pool is dropped still run: dropping closes
    /// the channel, and workers drain it before parking forever.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(move || {
            // A detached job has no caller to resume the panic on; eat it
            // so the worker thread stays in its loop.
            let _ = catch_unwind(AssertUnwindSafe(job));
        });
        self.sender
            .as_ref()
            .expect("pool is alive while borrowed")
            .send(job)
            .expect("scan workers alive");
    }

    /// Execute every task on the pool and return their results in task
    /// order. Blocks until all tasks completed; if any task panicked, the
    /// first panic (in task order) is resumed on the caller after all
    /// tasks have settled. Tasks may borrow from the caller's stack.
    ///
    /// More tasks than workers is fine — the excess queue and run as
    /// workers free up. A single task runs inline on the caller.
    pub fn run<'env, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        if tasks.len() <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let n = tasks.len();
        // One slot per task, written by the worker that runs it. The slots
        // live on this stack frame; the completion loop below guarantees
        // the frame outlives every job.
        let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let (done_tx, done_rx) = channel::<()>();
        let sender = self.sender.as_ref().expect("pool is alive while borrowed");
        for (slot, task) in slots.iter().zip(tasks) {
            let done = done_tx.clone();
            let job = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                *slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                // Receiver hang-up is impossible here: the submitting call
                // frame is still inside its completion loop.
                let _ = done.send(());
            });
            // SAFETY: the job is only lifetime-erased (see `erase_job`).
            // The erased borrows — `slot` and whatever `task` captured —
            // stay valid because this function does not return until the
            // completion loop below has received one `done` message per
            // submitted job, and the loop itself cannot exit early: `recv`
            // only fails once every sender — each owned by a not-yet-run
            // job — is dropped, and worker threads cannot vanish while
            // `self` keeps their join handles.
            let job = unsafe { erase_job(job) };
            sender.send(job).expect("scan workers alive");
        }
        drop(done_tx);
        for _ in 0..n {
            done_rx.recv().expect("scan worker completion");
        }
        slots
            .into_iter()
            .map(|slot| {
                let result = slot
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every job signalled completion");
                match result {
                    Ok(value) => value,
                    Err(panic) => resume_unwind(panic),
                }
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every parked worker with `Err`.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Erase a job closure's borrow lifetime so it can travel through the
/// `'static` job channel.
///
/// # Safety
///
/// The caller must not let the erased job run (or be dropped) after any
/// borrow it captures expires. [`WorkerPool::run`] upholds this by
/// blocking until every submitted job has completed.
unsafe fn erase_job<'env>(job: Box<dyn FnOnce() + Send + 'env>) -> Job {
    // SAFETY: identical layout — only the lifetime parameter differs.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = receiver
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => break, // pool dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowed_tasks_in_order() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(9).collect();
        let sums = pool.run(
            chunks
                .iter()
                .map(|c| move || c.iter().sum::<u64>())
                .collect(),
        );
        let want: Vec<u64> = chunks.iter().map(|c| c.iter().sum()).collect();
        assert_eq!(sums, want);
    }

    #[test]
    fn reused_across_many_rounds() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        for round in 0..20 {
            let results = pool.run(
                (0..5)
                    .map(|i| {
                        let hits = &hits;
                        move || {
                            hits.fetch_add(1, Ordering::Relaxed);
                            round * 10 + i
                        }
                    })
                    .collect::<Vec<_>>(),
            );
            assert_eq!(results, (0..5).map(|i| round * 10 + i).collect::<Vec<_>>());
        }
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_task_runs_inline() {
        let pool = WorkerPool::new(2);
        let caller = std::thread::current().id();
        let ids = pool.run(vec![move || std::thread::current().id() == caller]);
        assert_eq!(ids, vec![true]);
    }

    #[test]
    fn more_tasks_than_workers_all_complete() {
        let pool = WorkerPool::new(2);
        let results = pool.run((0..64).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<i32>>());
    }

    #[test]
    fn task_panic_propagates_after_all_settle() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..6)
                    .map(|i| {
                        let finished = &finished;
                        move || {
                            if i == 3 {
                                panic!("task 3 failed");
                            }
                            finished.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(finished.load(Ordering::Relaxed), 5, "other tasks still ran");
        // The pool survives a panicking round.
        assert_eq!(pool.run(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn panic_resumed_on_caller_is_the_first_in_task_order_with_its_payload() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..8)
                    .map(|i| {
                        move || match i {
                            2 => panic!("boom from task 2"),
                            5 => panic!("boom from task 5"),
                            _ => {}
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        let payload = result.expect_err("a panicking task must unwind the caller");
        let message = payload
            .downcast_ref::<&str>()
            .expect("panic! with a string literal carries a &str payload");
        assert_eq!(
            *message, "boom from task 2",
            "run resumes the first panic in task order, not arrival order"
        );
    }

    #[test]
    fn rounds_run_on_the_same_persistent_worker_threads() {
        use std::collections::HashSet;
        use std::sync::Barrier;
        use std::thread::ThreadId;

        let pool = WorkerPool::new(3);
        let occupy = |pool: &WorkerPool| -> HashSet<ThreadId> {
            // One task per worker, all held at a barrier: every worker
            // must pick up exactly one task, so the returned ids are the
            // full worker set.
            let barrier = Barrier::new(3);
            pool.run(
                (0..3)
                    .map(|_| {
                        let barrier = &barrier;
                        move || {
                            barrier.wait();
                            std::thread::current().id()
                        }
                    })
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .collect()
        };
        let first = occupy(&pool);
        assert_eq!(first.len(), 3, "three workers ran the three tasks");
        let second = occupy(&pool);
        assert_eq!(
            first, second,
            "later rounds reuse the same parked threads — no respawn"
        );
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        for i in 0..16u32 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).expect("test receiver alive"));
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn spawned_panic_is_contained_and_the_worker_survives() {
        // A single worker: the panicking job and everything after it run
        // on the same thread, so surviving proves the catch.
        let pool = WorkerPool::new(1);
        pool.spawn(|| panic!("detached job blew up"));
        let (tx, rx) = channel();
        pool.spawn(move || tx.send(7u32).expect("test receiver alive"));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)),
            Ok(7),
            "jobs after a panicking job still run"
        );
        // Fork-join rounds keep working on the same worker too.
        assert_eq!(pool.run(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn drop_drains_jobs_queued_behind_a_busy_worker() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let (gate_tx, gate_rx) = channel::<()>();
        pool.spawn(move || gate_rx.recv().expect("gate opens"));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        // The eight jobs are queued behind the gated one while the pool is
        // dropped; a helper opens the gate so the join can finish. Drop
        // must drain the queue, not abandon it.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            gate_tx.send(()).expect("worker still gated");
        });
        drop(pool);
        releaser.join().expect("releaser ran");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            8,
            "every job queued at drop time still ran"
        );
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.workers() >= 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(vec![|| 7, || 8, || 9]), vec![7, 8, 9]);
    }
}
