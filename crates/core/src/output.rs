//! Rendering mined rules in terms of the original attribute values.

use crate::rules::QuantRule;
use qar_itemset::{Item, Itemset};
use qar_table::{AttributeEncoder, AttributeId, EncodedTable, Schema};

/// Anything that can decode item codes back to attribute names and value
/// bounds. [`EncodedTable`] is the in-process implementation; `qar-store`'s
/// `Catalog` implements it too, so a reloaded catalog renders and exports
/// rules byte-identically to the mine that produced it.
pub trait RuleDecoder {
    /// The schema the rules' attribute ids refer to.
    fn schema(&self) -> &Schema;
    /// The encoder that maps an attribute's codes back to values.
    fn encoder(&self, id: AttributeId) -> &AttributeEncoder;
}

impl RuleDecoder for EncodedTable {
    fn schema(&self) -> &Schema {
        EncodedTable::schema(self)
    }
    fn encoder(&self, id: AttributeId) -> &AttributeEncoder {
        EncodedTable::encoder(self, id)
    }
}

/// Render one item, e.g. `⟨Age: 30..39⟩` or `⟨Married: Yes⟩`.
pub fn format_item(item: Item, table: &impl RuleDecoder) -> String {
    let id = AttributeId(item.attr as usize);
    let name = table.schema().attribute(id).name();
    let range = table.encoder(id).describe_range(item.lo, item.hi);
    format!("⟨{name}: {range}⟩")
}

/// Render an itemset, items joined by `and`.
pub fn format_itemset(itemset: &Itemset, table: &impl RuleDecoder) -> String {
    itemset
        .items()
        .iter()
        .map(|&i| format_item(i, table))
        .collect::<Vec<_>>()
        .join(" and ")
}

/// Render a rule in the paper's style:
/// `⟨Age: 30..39⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩  (40.0% sup, 100.0% conf)`.
pub fn format_rule(rule: &QuantRule, num_rows: u64, table: &impl RuleDecoder) -> String {
    format!(
        "{} ⇒ {}  ({:.1}% sup, {:.1}% conf)",
        format_itemset(&rule.antecedent, table),
        format_itemset(&rule.consequent, table),
        100.0 * rule.support as f64 / num_rows as f64,
        100.0 * rule.confidence,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_table::{AttributeEncoder, Schema, Table, Value};

    fn people() -> EncodedTable {
        let schema = Schema::builder()
            .quantitative("Age")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        let ages = t.column(AttributeId(0)).as_quantitative().unwrap().to_vec();
        let cars = t.column(AttributeId(2)).as_quantitative().unwrap().to_vec();
        EncodedTable::encode(
            &t,
            vec![
                AttributeEncoder::quant_intervals_from(&ages, vec![25.0, 30.0, 35.0], true),
                AttributeEncoder::categorical_from(
                    t.column(AttributeId(1)).as_categorical().unwrap(),
                ),
                AttributeEncoder::quant_values_from(&cars, true),
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_headline_rule_renders() {
        let enc = people();
        let rule = QuantRule {
            antecedent: Itemset::new(vec![Item::range(0, 2, 3), Item::value(1, 1)]),
            consequent: Itemset::singleton(Item::value(2, 2)),
            support: 2,
            confidence: 1.0,
        };
        let s = format_rule(&rule, 5, &enc);
        assert_eq!(
            s,
            "⟨Age: 34..38⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩  (40.0% sup, 100.0% conf)"
        );
    }

    #[test]
    fn item_rendering_uses_observed_bounds() {
        let enc = people();
        assert_eq!(format_item(Item::range(0, 0, 1), &enc), "⟨Age: 23..29⟩");
        assert_eq!(format_item(Item::value(1, 0), &enc), "⟨Married: No⟩");
        assert_eq!(format_item(Item::range(2, 0, 1), &enc), "⟨NumCars: 0..1⟩");
    }
}
