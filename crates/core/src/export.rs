//! Exporting mined rules to machine-readable formats (CSV and JSON).
//!
//! Both formats decode items back to original attribute names and value
//! bounds, carry exact support counts, and include the interest verdict
//! when one was computed. Hand-rolled writers — the rule structure is flat
//! enough that a serialization framework would be pure dependency weight.

use std::io::Write;

use crate::interest::RuleInterest;
use crate::output::RuleDecoder;
use crate::rules::QuantRule;
use qar_itemset::Item;
use qar_table::AttributeId;

fn item_fields(item: Item, table: &impl RuleDecoder) -> (String, String) {
    let id = AttributeId(item.attr as usize);
    let name = table.schema().attribute(id).name().to_owned();
    let range = table.encoder(id).describe_range(item.lo, item.hi);
    (name, range)
}

fn side_to_string(items: &[Item], table: &impl RuleDecoder) -> String {
    items
        .iter()
        .map(|&i| {
            let (name, range) = item_fields(i, table);
            format!("{name}={range}")
        })
        .collect::<Vec<_>>()
        .join(" & ")
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Write rules as CSV with the header
/// `antecedent,consequent,support_count,support,confidence,interesting`.
/// The `interesting` column is empty when no verdicts are supplied.
pub fn rules_to_csv<W: Write>(
    out: &mut W,
    rules: &[QuantRule],
    verdicts: Option<&[RuleInterest]>,
    table: &impl RuleDecoder,
    num_rows: u64,
) -> std::io::Result<()> {
    if let Some(v) = verdicts {
        assert_eq!(v.len(), rules.len(), "one verdict per rule");
    }
    writeln!(
        out,
        "antecedent,consequent,support_count,support,confidence,interesting"
    )?;
    for (i, rule) in rules.iter().enumerate() {
        let interesting = match verdicts {
            Some(v) => v[i].interesting.to_string(),
            None => String::new(),
        };
        writeln!(
            out,
            "{},{},{},{:.6},{:.6},{}",
            csv_escape(&side_to_string(rule.antecedent.items(), table)),
            csv_escape(&side_to_string(rule.consequent.items(), table)),
            rule.support,
            rule.support as f64 / num_rows as f64,
            rule.confidence,
            interesting,
        )?;
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn items_to_json(items: &[Item], table: &impl RuleDecoder) -> String {
    let parts: Vec<String> = items
        .iter()
        .map(|&i| {
            let (name, range) = item_fields(i, table);
            let id = AttributeId(i.attr as usize);
            match table.encoder(id).numeric_bounds(i.lo, i.hi) {
                Some((lo, hi)) => format!(
                    "{{\"attribute\":\"{}\",\"lo\":{lo},\"hi\":{hi}}}",
                    json_escape(&name)
                ),
                None => format!(
                    "{{\"attribute\":\"{}\",\"value\":\"{}\"}}",
                    json_escape(&name),
                    json_escape(&range)
                ),
            }
        })
        .collect();
    format!("[{}]", parts.join(","))
}

/// Render an `f64` as a JSON value. JSON has no encoding for `inf` or
/// `NaN` — emitting them verbatim (as `{:?}`/`{}` would) produces a
/// document every conforming parser rejects — so non-finite values
/// become `null`. This is the one convention for every JSON boundary in
/// the workspace: an analytics measure that is undefined (χ² with an
/// empty margin) or divergent (conviction of an exact rule) reads as
/// `null`, never as `inf`/`NaN` tokens.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Write rules as a JSON array. Quantitative items carry numeric `lo`/`hi`
/// bounds; categorical items carry their `value` label.
pub fn rules_to_json<W: Write>(
    out: &mut W,
    rules: &[QuantRule],
    verdicts: Option<&[RuleInterest]>,
    table: &impl RuleDecoder,
    num_rows: u64,
) -> std::io::Result<()> {
    rules_to_json_with(out, rules, verdicts, table, num_rows, |_| String::new())
}

/// [`rules_to_json`] with an extra-fields hook: for each rule index the
/// closure returns raw JSON members (each prefixed with a comma, e.g.
/// `,"lift":1.5`) appended inside that rule's object. Callers use this
/// to attach analytics measures without this crate depending on the
/// analytics types.
pub fn rules_to_json_with<W: Write>(
    out: &mut W,
    rules: &[QuantRule],
    verdicts: Option<&[RuleInterest]>,
    table: &impl RuleDecoder,
    num_rows: u64,
    extra: impl Fn(usize) -> String,
) -> std::io::Result<()> {
    if let Some(v) = verdicts {
        assert_eq!(v.len(), rules.len(), "one verdict per rule");
    }
    writeln!(out, "[")?;
    for (i, rule) in rules.iter().enumerate() {
        let interesting = match verdicts {
            Some(v) => format!(",\"interesting\":{}", v[i].interesting),
            None => String::new(),
        };
        let comma = if i + 1 < rules.len() { "," } else { "" };
        writeln!(
            out,
            "  {{\"antecedent\":{},\"consequent\":{},\"support_count\":{},\"support\":{:.6},\"confidence\":{:.6}{}{}}}{}",
            items_to_json(rule.antecedent.items(), table),
            items_to_json(rule.consequent.items(), table),
            rule.support,
            rule.support as f64 / num_rows as f64,
            rule.confidence,
            interesting,
            extra(i),
            comma,
        )?;
    }
    writeln!(out, "]")?;
    Ok(())
}

/// Write run statistics as a JSON object, including the pass-level
/// numbers (`passes[k]` covers counting pass `k + 2`; pass 1 is the
/// per-attribute scan reported by `pass1_scan_us`).
pub fn stats_to_json<W: Write>(
    out: &mut W,
    stats: &crate::pipeline::MiningStats,
) -> std::io::Result<()> {
    let us = |d: std::time::Duration| d.as_micros() as u64;
    let intervals: Vec<String> = stats
        .intervals_per_attribute
        .iter()
        .map(|i| match i {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        })
        .collect();
    let passes: Vec<String> = stats
        .mine
        .pass_stats
        .iter()
        .enumerate()
        .map(|(i, p)| {
            format!(
                "{{\"pass\":{},\"candidates\":{},\"super_candidates\":{},\
                 \"array_backed\":{},\"rtree_backed\":{},\"hash_tree_nodes\":{},\
                 \"counter_bytes\":{},\"scan_us\":{},\"merge_us\":{},\"shards\":{}}}",
                i + 2,
                stats.mine.candidates_per_pass.get(i).copied().unwrap_or(0),
                p.super_candidates,
                p.array_backed,
                p.rtree_backed,
                p.hash_tree_nodes,
                p.counter_bytes,
                us(p.scan_time),
                us(p.merge_time),
                p.shard_scan_times.len().max(1),
            )
        })
        .collect();
    writeln!(
        out,
        "{{\"rules_total\":{},\"rules_interesting\":{},\"elapsed_us\":{},\
         \"elapsed_mining_us\":{},\"encoding_reused\":{},\"parallelism\":{},\
         \"interest_pruned_items\":{},\"pass1_scan_us\":{},\
         \"intervals_per_attribute\":[{}],\"passes\":[{}]}}",
        stats.rules_total,
        stats.rules_interesting,
        us(stats.elapsed),
        us(stats.elapsed_mining),
        stats.encoding_reused,
        stats.mine.parallelism,
        stats.mine.interest_pruned_items,
        us(stats.mine.pass1_scan_time),
        intervals.join(","),
        passes.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MinerConfig, PartitionSpec};
    use crate::miner::Miner;
    use qar_table::{Schema, Table, Value};

    fn mined() -> crate::pipeline::MiningOutput {
        let schema = Schema::builder()
            .quantitative("Age")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        Miner::new(MinerConfig {
            min_support: 0.4,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: PartitionSpec::None,
            partition_strategy: Default::default(),
            taxonomies: Default::default(),
            interest: Some(crate::config::InterestConfig {
                level: 1.1,
                mode: crate::config::InterestMode::SupportOrConfidence,
                prune_candidates: false,
            }),
            max_itemset_size: 0,
            parallelism: None,
            kernel: Default::default(),
        })
        .mine(&t)
        .unwrap()
    }

    #[test]
    fn csv_has_header_and_one_line_per_rule() {
        let out = mined();
        let mut buf = Vec::new();
        rules_to_csv(
            &mut buf,
            &out.rules,
            out.interest.as_deref(),
            &out.encoded,
            out.frequent.num_rows,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), out.rules.len() + 1);
        assert!(lines[0].starts_with("antecedent,consequent,"));
        // The headline rule appears with its exact numbers.
        assert!(
            text.contains("Age=34..38 & Married=Yes,NumCars=2,2,0.400000,1.000000"),
            "{text}"
        );
        // Every data line has an interest verdict.
        assert!(lines[1..]
            .iter()
            .all(|l| l.ends_with(",true") || l.ends_with(",false")));
    }

    #[test]
    fn json_is_parseable_shape() {
        let out = mined();
        let mut buf = Vec::new();
        rules_to_json(
            &mut buf,
            &out.rules,
            out.interest.as_deref(),
            &out.encoded,
            out.frequent.num_rows,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Structural sanity without a JSON parser dependency: balanced
        // brackets, one object per rule, correct key set.
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"antecedent\"").count(), out.rules.len());
        assert_eq!(text.matches("\"interesting\"").count(), out.rules.len());
        assert!(text.contains("\"attribute\":\"NumCars\",\"lo\":2,\"hi\":2"));
        assert!(text.contains("\"attribute\":\"Married\",\"value\":\"Yes\""));
        // Object-comma discipline: no trailing comma before the closing ].
        assert!(!text.contains("},\n]"));
    }

    #[test]
    fn no_verdicts_leaves_column_empty() {
        let out = mined();
        let mut buf = Vec::new();
        rules_to_csv(&mut buf, &out.rules, None, &out.encoded, 5).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().skip(1).all(|l| l.ends_with(',')));
    }

    #[test]
    fn escaping_helpers() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }

    #[test]
    fn json_f64_nulls_non_finite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(-3.25e-4), "-0.000325");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn extra_fields_land_inside_each_rule_object() {
        let out = mined();
        let mut buf = Vec::new();
        rules_to_json_with(
            &mut buf,
            &out.rules,
            None,
            &out.encoded,
            out.frequent.num_rows,
            |i| format!(",\"lift\":{},\"conviction\":{}", i, json_f64(f64::INFINITY)),
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = qar_trace::json::parse(&text).expect("valid JSON");
        let rules = parsed.as_array().expect("an array");
        assert_eq!(rules.len(), out.rules.len());
        for (i, rule) in rules.iter().enumerate() {
            let obj = rule.as_object().expect("a rule object");
            assert_eq!(obj["lift"].as_u64(), Some(i as u64));
            assert!(obj["conviction"].is_null());
        }
    }

    #[test]
    fn stats_json_carries_pass_level_numbers() {
        let out = mined();
        let mut buf = Vec::new();
        stats_to_json(&mut buf, &out.stats).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = qar_trace::json::parse(&text).expect("valid JSON");
        let obj = parsed.as_object().expect("an object");
        assert_eq!(
            obj["rules_total"].as_u64(),
            Some(out.stats.rules_total as u64)
        );
        assert_eq!(obj["encoding_reused"].as_bool(), Some(false));
        let passes = obj["passes"].as_array().expect("passes array");
        assert_eq!(passes.len(), out.stats.mine.pass_stats.len());
        for (i, p) in passes.iter().enumerate() {
            let p = p.as_object().expect("pass object");
            assert_eq!(p["pass"].as_u64(), Some(i as u64 + 2));
            assert!(p["scan_us"].is_integer());
        }
    }
}
