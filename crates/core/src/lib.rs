//! # qar-core — mining quantitative association rules
//!
//! The primary contribution of Srikant & Agrawal, SIGMOD 1996, implemented
//! end to end as the five-step decomposition of Section 2.1:
//!
//! 1. **Partition** each quantitative attribute (number of intervals from
//!    the partial-completeness level, Section 3) — [`pipeline`] driving
//!    `qar-partition`;
//! 2. **Map** values/intervals to consecutive integers — `qar-table`'s
//!    encoders;
//! 3. **Find frequent itemsets**: frequent values/ranges per attribute
//!    ([`frequent`], with the `max_support` range-combining cap), then the
//!    level-wise search with super-candidate counting ([`mine`],
//!    [`supercand`]) and the Lemma 5 interest prune ([`candidate`]);
//! 4. **Generate rules** ([`rules`]);
//! 5. **Identify interesting rules** with the greater-than-expected-value
//!    measure, close ancestors, and specialization differences
//!    ([`interest`]).
//!
//! The [`Miner`] facade runs the whole thing — with optional progress
//! events ([`qar_trace::ProgressSink`]), cooperative cancellation
//! ([`qar_trace::CancelToken`]), and encoding reuse across repeated
//! runs — and [`output`] renders rules back in terms of the original
//! attribute values, like the paper's
//! `⟨Age: 30..39⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩`.

#![warn(missing_docs)]

pub mod candidate;
pub mod config;
pub mod counts;
pub mod delta;
pub mod export;
pub mod frequent;
pub mod interest;
pub mod mine;
pub mod miner;
pub mod naive;
pub mod output;
pub mod pipeline;
pub mod pool;
pub mod rules;
pub mod source;
pub mod supercand;

pub use delta::{f64_close_ulps, ItemsetSetDelta, RuleSetDelta};

pub use config::{
    CancelledInfo, InterestConfig, InterestMode, MinerConfig, MinerError, PartitionSpec,
    PartitionStrategy, ScanKernel,
};
pub use counts::{
    encoding_fingerprint, update_precheck, CapturedCounts, CountsConfig, SupportCounts,
};
pub use frequent::QuantFrequentItemsets;
pub use interest::{annotate_interest, RuleInterest};
#[allow(deprecated)]
pub use mine::mine_encoded;
pub use miner::Miner;
pub use miner::{UpdateInput, UpdateOutput};
pub use output::RuleDecoder;
#[allow(deprecated)]
pub use pipeline::{mine_table, MiningOutput, MiningStats};
pub use pool::WorkerPool;
pub use rules::{generate_rules, QuantRule};
pub use source::{
    mine_source, mine_source_captured, CaptureSource, ChunkedSource, CountError, CountSource,
    InMemorySource, MergeSource,
};
