//! Candidate generation (Section 5.1): join, subset prune, interest prune.

use crate::frequent::QuantFrequentItemsets;
use qar_itemset::{Item, Itemset};
use std::collections::HashSet;

/// Join `L_{k-1}` with itself and subset-prune, returning `C_k`.
///
/// Join condition: "the lexicographically ordered first k−2 items are the
/// same, and the attributes of the last two items are different". Two
/// items of the same attribute can never co-occur in an itemset (records
/// hold each attribute once), so same-attribute pairs are skipped rather
/// than joined.
///
/// `prev` must be sorted (as [`QuantFrequentItemsets::push_level`]
/// guarantees).
pub fn generate_candidates(prev: &[(Itemset, u64)]) -> Vec<Itemset> {
    if prev.is_empty() {
        return Vec::new();
    }
    let k1 = prev[0].0.len();
    debug_assert!(prev.iter().all(|(s, _)| s.len() == k1));
    let prev_set: HashSet<&Itemset> = prev.iter().map(|(s, _)| s).collect();
    let mut candidates = Vec::new();

    let mut run_start = 0;
    while run_start < prev.len() {
        let prefix = &prev[run_start].0.items()[..k1 - 1];
        let mut run_end = run_start + 1;
        while run_end < prev.len() && &prev[run_end].0.items()[..k1 - 1] == prefix {
            run_end += 1;
        }
        for i in run_start..run_end {
            let last_i = prev[i].0.items()[k1 - 1];
            for j in (i + 1)..run_end {
                let last_j = prev[j].0.items()[k1 - 1];
                if last_i.attr == last_j.attr {
                    continue;
                }
                let mut items: Vec<Item> = prev[i].0.items().to_vec();
                items.push(last_j);
                let cand = Itemset::new(items);
                // Subset prune: every (k-1)-subset must be frequent. The
                // two parents are by construction; check the rest.
                let keep = (0..cand.len() - 2).all(|p| prev_set.contains(&cand.without_index(p)));
                if keep {
                    candidates.push(cand);
                }
            }
        }
        run_start = run_end;
    }
    candidates
}

/// Interest Prune Phase (Lemma 5): items whose fractional support exceeds
/// `1/R` cannot appear in any itemset whose support beats `R ×` expected,
/// so delete them from `L_1` at the end of the first pass. Applies to
/// quantitative items only (the lemma is stated for quantitative `x`;
/// categorical single values are their own full information).
pub fn interest_prune_level1(
    level1: Vec<(Itemset, u64)>,
    frequent: &QuantFrequentItemsets,
    interest_level: f64,
    is_quantitative: &dyn Fn(u32) -> bool,
) -> Vec<(Itemset, u64)> {
    level1
        .into_iter()
        .filter(|(itemset, count)| {
            let item = itemset.items()[0];
            if !is_quantitative(item.attr) {
                return true;
            }
            // Keep iff support ≤ 1/R — the lemma prunes on *strict*
            // excess. Stated multiplicatively (`count · R ≤ rows`) so a
            // support sitting exactly on 1/R survives: the division form
            // `count/rows ≤ 1/R` misjudges the boundary when both
            // quotients round in opposite directions (e.g. rows = 3·10¹⁵,
            // count = 10¹⁵, R = 3).
            *count as f64 * interest_level <= frequent.num_rows as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(sets: &[&[(u32, u32, u32)]]) -> Vec<(Itemset, u64)> {
        let mut v: Vec<(Itemset, u64)> = sets
            .iter()
            .map(|items| {
                (
                    items
                        .iter()
                        .map(|&(a, l, u)| Item::range(a, l, u))
                        .collect::<Itemset>(),
                    2,
                )
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    #[test]
    fn paper_join_example() {
        // Section 5.1's example:
        // L2 = {⟨Married:Yes⟩⟨Age:20..24⟩}, {⟨Married:Yes⟩⟨Age:20..29⟩},
        //      {⟨Married:Yes⟩⟨NumCars:0..1⟩}, {⟨Age:20..29⟩⟨NumCars:0..1⟩}
        // (attrs: age=0, married=1, cars=2; Yes=1.)
        // Join yields the two 3-candidates with both age ranges; prune
        // deletes the 20..24 one because {⟨Age:20..24⟩⟨NumCars:0..1⟩} ∉ L2.
        let l2 = level(&[
            &[(1, 1, 1), (0, 0, 0)], // Married:Yes, Age interval 0 (20..24)
            &[(1, 1, 1), (0, 0, 1)], // Married:Yes, Age 0..1 (20..29)
            &[(1, 1, 1), (2, 0, 1)], // Married:Yes, NumCars 0..1
            &[(0, 0, 1), (2, 0, 1)], // Age 0..1, NumCars 0..1
        ]);
        let c3 = generate_candidates(&l2);
        assert_eq!(c3.len(), 1);
        let expected: Itemset = vec![
            Item::range(0, 0, 1),
            Item::value(1, 1),
            Item::range(2, 0, 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(c3[0], expected);
    }

    #[test]
    fn same_attribute_pairs_never_join() {
        // Two ranges of the same attribute never form a 2-candidate.
        let l1 = level(&[&[(0, 0, 1)], &[(0, 2, 3)], &[(1, 0, 0)]]);
        let c2 = generate_candidates(&l1);
        assert_eq!(c2.len(), 2); // each age range with the categorical item
        assert!(c2.iter().all(|c| {
            let attrs = c.attributes();
            attrs.windows(2).all(|w| w[0] != w[1])
        }));
    }

    #[test]
    fn empty_and_single_input() {
        assert!(generate_candidates(&[]).is_empty());
        let l1 = level(&[&[(0, 0, 0)]]);
        assert!(generate_candidates(&l1).is_empty());
    }

    #[test]
    fn candidates_contain_all_frequent_supersets() {
        // Completeness: C_k ⊇ every itemset whose (k-1)-subsets are all in
        // L_{k-1}. Build a closed family and check.
        let l2 = level(&[
            &[(0, 0, 1), (1, 0, 0)],
            &[(0, 0, 1), (2, 1, 1)],
            &[(1, 0, 0), (2, 1, 1)],
        ]);
        let c3 = generate_candidates(&l2);
        let expected: Itemset = vec![Item::range(0, 0, 1), Item::value(1, 0), Item::value(2, 1)]
            .into_iter()
            .collect();
        assert_eq!(c3, vec![expected]);
    }

    #[test]
    fn interest_prune_drops_wide_quantitative_items() {
        let mut store = QuantFrequentItemsets::new(100);
        let wide = Itemset::singleton(Item::range(0, 0, 9)); // support 95
        let narrow = Itemset::singleton(Item::range(0, 2, 3)); // support 40
        let cat = Itemset::singleton(Item::value(1, 0)); // support 95, categorical
        let l1 = vec![(wide.clone(), 95), (narrow.clone(), 40), (cat.clone(), 95)];
        store.push_level(l1.clone());
        // R = 2: threshold 1/2 = 50 records.
        let pruned = interest_prune_level1(l1, &store, 2.0, &|attr| attr == 0);
        let kept: Vec<&Itemset> = pruned.iter().map(|(s, _)| s).collect();
        assert!(!kept.contains(&&wide), "wide quantitative item must go");
        assert!(kept.contains(&&narrow));
        assert!(kept.contains(&&cat), "categorical items exempt");
    }
}
