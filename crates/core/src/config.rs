//! Miner configuration and validation.

use std::collections::BTreeMap;
use std::fmt;

/// How quantitative attributes are partitioned before mining (Step 1).
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionSpec {
    /// Do not partition: every distinct value is its own base interval
    /// (what the paper does "if the number of values is small").
    None,
    /// Choose the interval count from the desired partial-completeness
    /// level via Equation (2); attributes with fewer distinct values than
    /// the computed interval count are left unpartitioned.
    CompletenessLevel(f64),
    /// A fixed number of equi-depth intervals for every quantitative
    /// attribute.
    FixedIntervals(usize),
    /// Explicit interval counts per attribute name; attributes absent from
    /// the map are not partitioned.
    PerAttribute(BTreeMap<String, usize>),
}

/// Which algorithm places the interval cut points (Step 1). The paper
/// uses equi-depth (optimal for partial completeness, Lemma 4); its
/// future-work section suggests clustering for skewed data, provided here
/// as 1-D k-means. Equi-width is the ablation baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Equi-depth quantiles (the paper's choice).
    #[default]
    EquiDepth,
    /// Equal-width intervals over the value range.
    EquiWidth,
    /// 1-D k-means (Lloyd's with quantile init) — the \[JD88\] clustering
    /// route of the paper's conclusion.
    KMeans,
}

/// Which support-counting scan kernel the miner runs (Step 3's record
/// scan). Every variant produces **bit-identical counts** — the kernel is
/// a pure performance choice, never semantics — so this knob exists for
/// ablations, benches, and the differential fuzz oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanKernel {
    /// Row-at-a-time hash-tree subset walks with no memo cache — the
    /// reference kernel every other variant is checked against.
    Direct,
    /// Row-at-a-time walks with the categorical-tuple memo cache: the
    /// subset walk runs once per *distinct* tuple. Wins on
    /// duplicate-heavy tables; self-disables (falling back to the direct
    /// walk) when a trial block shows near-zero tuple reuse.
    Memoized,
    /// Blocked bitmask kernel: per-attribute `lo <= code <= hi`
    /// predicates are evaluated over 1024-row blocks into `u64` bitsets,
    /// ANDed across attributes, and popcounted — no per-row branching,
    /// plus per-block min/max pre-screening so non-intersecting plans
    /// skip whole blocks. Wins on (near-)all-distinct tables where the
    /// memo cache cannot help.
    Bitmask,
    /// Start memoized and let each shard's first-full-block
    /// duplicate-ratio trial pick: high tuple reuse keeps the memo cache,
    /// near-zero reuse switches the shard to the bitmask kernel for its
    /// remaining rows.
    #[default]
    Auto,
}

impl ScanKernel {
    /// The kernel's wire name, as recorded in
    /// [`crate::supercand::PassStats::kernel`] and the `pass_finished`
    /// trace event (`Auto` resolves per shard and is never reported
    /// verbatim).
    pub fn name(self) -> &'static str {
        match self {
            ScanKernel::Direct => "direct",
            ScanKernel::Memoized => "memoized",
            ScanKernel::Bitmask => "bitmask",
            ScanKernel::Auto => "auto",
        }
    }

    /// Parse a CLI/config spelling (the [`ScanKernel::name`] strings).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "direct" => Some(ScanKernel::Direct),
            "memoized" | "memo" => Some(ScanKernel::Memoized),
            "bitmask" => Some(ScanKernel::Bitmask),
            "auto" => Some(ScanKernel::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for ScanKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which deviations from expectation make a rule interesting (Section 4:
/// "the user can specify whether it should be support and confidence, or
/// support or confidence").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterestMode {
    /// Support **and** confidence must each be ≥ R × expected. Only this
    /// mode licenses the Lemma 5 candidate prune.
    SupportAndConfidence,
    /// Support **or** confidence ≥ R × expected suffices.
    SupportOrConfidence,
}

/// The greater-than-expected-value interest measure (Section 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterestConfig {
    /// Minimum interest level `R` (> 1). A rule must beat `R ×` its
    /// expectation from a close interesting ancestor to survive.
    pub level: f64,
    /// And/or combination of support and confidence deviation.
    pub mode: InterestMode,
    /// Apply the Lemma 5 prune during candidate generation (delete items
    /// with fractional support > 1/R after pass 1). Sound only for
    /// [`InterestMode::SupportAndConfidence`]; ignored otherwise.
    pub prune_candidates: bool,
}

/// Full miner configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MinerConfig {
    /// Minimum fractional support (`minsup`), in `(0, 1]`.
    pub min_support: f64,
    /// Minimum confidence (`minconf`), in `[0, 1]`.
    pub min_confidence: f64,
    /// Maximum fractional support for a *combined* range (Section 1.2's
    /// "maximum support" parameter). Single values above it are kept.
    pub max_support: f64,
    /// Step 1 policy: how many intervals.
    pub partitioning: PartitionSpec,
    /// Step 1 policy: where the cut points go.
    pub partition_strategy: PartitionStrategy,
    /// Optional is-a taxonomies over categorical attributes (by attribute
    /// name). Values of such attributes are numbered in taxonomy DFS
    /// order, so interior nodes become contiguous code ranges and
    /// generalized categorical items ride the quantitative range
    /// machinery (the \[SA95\] connection the paper points out).
    pub taxonomies: BTreeMap<String, qar_table::Taxonomy>,
    /// Optional Step 5 interest measure.
    pub interest: Option<InterestConfig>,
    /// Stop after frequent itemsets of this size (0 = unbounded). Matches
    /// the paper's observation that `n` in Equation (2) can be replaced by
    /// a bound on rule size.
    pub max_itemset_size: usize,
    /// Worker threads for the support-counting passes. `None` (the
    /// default) uses [`std::thread::available_parallelism`]; `Some(1)`
    /// forces the exact single-threaded code path. Any setting produces
    /// bit-identical mining output — shards hold disjoint row ranges and
    /// their integer counts are summed in shard order — so this knob is
    /// pure performance, never semantics.
    pub parallelism: Option<std::num::NonZeroUsize>,
    /// Which support-counting scan kernel to run (see [`ScanKernel`]).
    /// Counts are bit-identical for every variant — the default
    /// [`ScanKernel::Auto`] picks memoized vs. bitmask per shard from the
    /// first-full-block duplicate-ratio trial; the explicit variants
    /// exist for the `--kernel` ablation and the differential fuzz
    /// oracle.
    pub kernel: ScanKernel,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            // Section 6 defaults: minsup 20 %, minconf 25 %, maxsup 40 %.
            min_support: 0.2,
            min_confidence: 0.25,
            max_support: 0.4,
            partitioning: PartitionSpec::CompletenessLevel(2.0),
            partition_strategy: PartitionStrategy::default(),
            taxonomies: BTreeMap::new(),
            interest: Some(InterestConfig {
                level: 1.1,
                mode: InterestMode::SupportAndConfidence,
                prune_candidates: true,
            }),
            max_itemset_size: 0,
            parallelism: None,
            kernel: ScanKernel::Auto,
        }
    }
}

impl MinerConfig {
    /// The worker-thread count the counting passes will actually use:
    /// the configured [`MinerConfig::parallelism`], or the machine's
    /// available parallelism when unset (falling back to 1 if the OS
    /// cannot say).
    ///
    /// The `QAR_TEST_THREADS` environment variable, when set to a positive
    /// integer, overrides an *unset* knob — CI uses it to run the whole
    /// test suite through the forced-serial path as well as the default
    /// one. An explicit `parallelism` setting always wins, so tests that
    /// pin a thread count are unaffected.
    pub fn effective_parallelism(&self) -> usize {
        if let Some(n) = self.parallelism {
            return n.get();
        }
        if let Some(n) = std::env::var("QAR_TEST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), MinerError> {
        if !(self.min_support > 0.0 && self.min_support <= 1.0) {
            return Err(MinerError::Config(format!(
                "min_support must be in (0, 1], got {}",
                self.min_support
            )));
        }
        if !(0.0..=1.0).contains(&self.min_confidence) {
            return Err(MinerError::Config(format!(
                "min_confidence must be in [0, 1], got {}",
                self.min_confidence
            )));
        }
        if self.max_support < self.min_support {
            return Err(MinerError::Config(format!(
                "max_support ({}) must be >= min_support ({})",
                self.max_support, self.min_support
            )));
        }
        match &self.partitioning {
            // `!(k > 1)` rather than `k <= 1` so NaN is rejected too.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            PartitionSpec::CompletenessLevel(k) if !(*k > 1.0) => {
                return Err(MinerError::Config(format!(
                    "partial completeness level must exceed 1, got {k}"
                )));
            }
            PartitionSpec::FixedIntervals(0) => {
                return Err(MinerError::Config(
                    "fixed interval count must be positive".into(),
                ));
            }
            _ => {}
        }
        if let Some(interest) = &self.interest {
            // `!(level > 1)` rather than `level <= 1` so NaN is rejected too.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(interest.level > 1.0) {
                return Err(MinerError::Config(format!(
                    "interest level must exceed 1, got {}",
                    interest.level
                )));
            }
        }
        Ok(())
    }
}

/// What a cancelled run had accomplished when it stopped — carried inside
/// [`MinerError::Cancelled`] so callers aborting or deadlining a run still
/// get the statistics of the passes that completed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CancelledInfo {
    /// 1-based pass during (or before) which cancellation was observed.
    pub pass: usize,
    /// True when a [`qar_trace::CancelToken`] deadline expired; false for
    /// an explicit abort.
    pub deadline_exceeded: bool,
    /// Statistics of the passes completed before cancellation. Each later
    /// cancellation point extends (never shrinks) these partial stats.
    pub stats: crate::mine::MineStats,
}

/// Errors surfaced by the miner, by failure domain.
#[derive(Debug, Clone, PartialEq)]
pub enum MinerError {
    /// A configuration parameter was out of range.
    Config(String),
    /// The input table was unusable (empty, wrong arity, type mismatch,
    /// unknown attribute, ...).
    Schema(qar_table::TableError),
    /// Quantitative partitioning failed (bad interval count for an
    /// attribute's value distribution).
    Partition(String),
    /// Reading input (tables, schemas, taxonomy files) failed.
    Io(String),
    /// The run was aborted through a [`qar_trace::CancelToken`]; partial
    /// statistics are inside.
    Cancelled(CancelledInfo),
    /// Distributed-mining setup or protocol failure (worker spawn,
    /// handshake, malformed frame) with no usable fallback.
    Distributed(String),
    /// A worker died or timed out mid-run and its partition could not be
    /// recounted elsewhere.
    WorkerLost {
        /// 0-based index of the lost worker.
        worker: usize,
        /// 1-based pass during which the loss was observed.
        pass: usize,
        /// The underlying I/O or protocol failure.
        detail: String,
    },
    /// An incremental update could not proceed and no fallback was
    /// available (configuration drift from the persisted counts, encoding
    /// fingerprint mismatch, or a delta that invalidates the counts with
    /// no base rows to re-mine from).
    Update(String),
}

impl fmt::Display for MinerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinerError::Config(msg) => write!(f, "bad parameter: {msg}"),
            MinerError::Schema(e) => write!(f, "table error: {e}"),
            MinerError::Partition(msg) => write!(f, "partitioning error: {msg}"),
            MinerError::Io(msg) => write!(f, "i/o error: {msg}"),
            MinerError::Cancelled(info) => write!(
                f,
                "mining cancelled during pass {} ({})",
                info.pass,
                if info.deadline_exceeded {
                    "deadline exceeded"
                } else {
                    "caller abort"
                }
            ),
            MinerError::Distributed(msg) => write!(f, "distributed mining error: {msg}"),
            MinerError::WorkerLost {
                worker,
                pass,
                detail,
            } => write!(f, "worker {worker} lost during pass {pass}: {detail}"),
            MinerError::Update(msg) => write!(f, "incremental update error: {msg}"),
        }
    }
}

impl std::error::Error for MinerError {}

impl From<qar_table::TableError> for MinerError {
    fn from(e: qar_table::TableError) -> Self {
        MinerError::Schema(e)
    }
}

impl From<std::io::Error> for MinerError {
    fn from(e: std::io::Error) -> Self {
        MinerError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(MinerConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_support_rejected() {
        for min_support in [0.0, 1.5] {
            let c = MinerConfig {
                min_support,
                ..MinerConfig::default()
            };
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn maxsup_below_minsup_rejected() {
        let c = MinerConfig {
            min_support: 0.5,
            max_support: 0.3,
            ..MinerConfig::default()
        };
        assert!(matches!(c.validate(), Err(MinerError::Config(_))));
    }

    #[test]
    fn completeness_level_validated() {
        for (partitioning, ok) in [
            (PartitionSpec::CompletenessLevel(1.0), false),
            (PartitionSpec::CompletenessLevel(f64::NAN), false),
            (PartitionSpec::FixedIntervals(0), false),
            (PartitionSpec::None, true),
        ] {
            let c = MinerConfig {
                partitioning,
                ..MinerConfig::default()
            };
            assert_eq!(c.validate().is_ok(), ok);
        }
    }

    #[test]
    fn interest_level_validated() {
        for level in [1.0, 0.0, f64::NAN] {
            let c = MinerConfig {
                interest: Some(InterestConfig {
                    level,
                    mode: InterestMode::SupportAndConfidence,
                    prune_candidates: false,
                }),
                ..MinerConfig::default()
            };
            assert!(c.validate().is_err(), "{level}");
        }
    }

    #[test]
    fn explicit_parallelism_beats_env_override() {
        // An explicitly pinned thread count must never be overridden by
        // QAR_TEST_THREADS (tests that assert serial/parallel equivalence
        // rely on this). Only the pinned path is exercised here: mutating
        // the process environment would race with concurrently running
        // tests that mine under the default config.
        let c = MinerConfig {
            parallelism: std::num::NonZeroUsize::new(3),
            ..MinerConfig::default()
        };
        assert_eq!(c.effective_parallelism(), 3);
        let auto = MinerConfig::default().effective_parallelism();
        assert!(auto >= 1);
    }

    #[test]
    fn scan_kernel_names_round_trip() {
        for kernel in [
            ScanKernel::Direct,
            ScanKernel::Memoized,
            ScanKernel::Bitmask,
            ScanKernel::Auto,
        ] {
            assert_eq!(ScanKernel::parse(kernel.name()), Some(kernel));
            assert_eq!(kernel.to_string(), kernel.name());
        }
        assert_eq!(ScanKernel::parse("memo"), Some(ScanKernel::Memoized));
        assert_eq!(ScanKernel::parse("simd"), None);
        assert_eq!(ScanKernel::default(), ScanKernel::Auto);
    }

    #[test]
    fn error_display_and_conversion() {
        let e: MinerError = qar_table::TableError::EmptyTable.into();
        assert!(e.to_string().contains("table error"));
        assert!(MinerError::Config("x".into()).to_string().contains("x"));
    }
}
