//! Super-candidate support counting (Section 5.2), serial and sharded.
//!
//! Candidates sharing (a) identical categorical items and (b) the same set
//! of quantitative attributes are fused into one *super-candidate*. A hash
//! tree over the categorical parts finds which super-candidates a record's
//! categorical values support; the quantitative values then form a point
//! that is counted against the super-candidate's rectangles — in a dense
//! n-dimensional array or an R*-tree, whichever the memory heuristic
//! prefers.
//!
//! # Parallel counting
//!
//! The paper's Section 6 cost model observes that pass runtime is
//! dominated by the record scan; everything else (grouping, backend
//! choice, summation) is record-independent. The scan parallelizes over
//! *data shards*: the table's rows are split into `num_threads` contiguous
//! ranges, every worker runs the identical per-record counting loop over
//! its range with private counters, and the per-shard tallies are merged
//! by integer addition in shard order before the frequency filter.
//!
//! Shard tasks execute on a persistent [`WorkerPool`] (the [`crate::Miner`]'s
//! own, or the process-wide pool) instead of freshly spawned threads, and
//! every piece of record-independent state is shared rather than cloned:
//! plan rectangles sit behind `Arc`, and the hash trees are walked
//! read-only with per-shard [`VisitScratch`] visit stamps.
//!
//! Because each record is counted by exactly one shard and `u64` addition
//! is exact, the merged counts are **bit-identical** to a serial scan for
//! every thread count — parallelism is pure performance, never semantics.
//! The serial-equivalence property is enforced by unit tests here and a
//! randomized end-to-end test in `tests/proptest_pipeline.rs`.
//!
//! # Categorical-tuple memoization
//!
//! On tables where a handful of distinct categorical tuples cover most
//! rows (low-cardinality categorical attributes — the common shape for
//! the paper's census-style data), the hash-tree subset walk computes the
//! same matched-super-candidate list over and over. Each shard therefore
//! caches `categorical tuple → matched plan list` and reuses the list for
//! every later row with the same tuple, so the subset walk runs once per
//! *distinct* tuple instead of once per row. The cache stops admitting
//! new tuples past [`ScanOptions::memo_limit`], and gives up when the
//! distinct-tuple count is high — after the first full block, if fewer
//! than [`MEMO_TRIAL_FACTOR`] rows share each observed tuple on average,
//! or at any block boundary where the cache is full and has never served
//! a hit, the shard stops probing entirely so near-distinct tables pay at
//! most one block's worth of cache overhead. Cached and direct walks
//! produce the same list, so memoization never changes counts.
//!
//! # The bitmask kernel
//!
//! Where memoization gives up — (near-)all-distinct categorical tuples —
//! the remaining cost is per-row branching: the subset walk plus
//! rectangle containment, row at a time. The bitmask kernel
//! ([`crate::ScanKernel::Bitmask`]) removes the per-row control flow
//! entirely: for each [`CANCEL_CHECK_INTERVAL`]-row block it evaluates
//! every predicate over the whole block into `u64` bitsets — one
//! equality mask per *distinct* categorical `(attribute, code)` pair
//! (shared by all plans that test it), one branchless
//! `lo <= code <= hi` range mask per member rectangle dimension — then
//! ANDs masks together and popcounts, a shape the autovectorizer turns
//! into SIMD compares with no per-row branches. Per-block min/max
//! summaries of each touched column pre-screen plans and members: a
//! predicate code or rectangle that cannot intersect the block's value
//! range skips the block without touching a single row, and a mask word
//! that has gone all-zero short-circuits the remaining ANDs.
//!
//! Which kernel runs is [`ScanOptions::kernel`] (a
//! [`crate::ScanKernel`]): `Direct` and `Memoized` are the row-wise
//! walks above, `Bitmask` is the blocked kernel, and `Auto` (the
//! default) starts memoized and lets the first-full-block trial decide —
//! high tuple reuse keeps the cache, near-zero reuse switches the shard
//! to the bitmask kernel for its remaining blocks. Every kernel produces
//! **bit-identical counts** (enforced by unit tests, the
//! `bitmask_scan_equals_direct_and_naive` proptest, and the fuzz
//! oracle's `kernel` kind); the knob is pure performance, never
//! semantics.

use crate::config::ScanKernel;
use crate::pool::WorkerPool;
use qar_itemset::{CounterKind, HashTree, Itemset, RectCounter, VisitScratch};
use qar_table::{AttributeId, AttributeKind, EncodedTable};
use qar_trace::CancelToken;
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shard scan observed its [`CancelToken`] and stopped early. The pass's
/// partial counts are meaningless (some shards may not have finished), so
/// the counting entry points return this marker instead of tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanCancelled;

/// How many records a shard scans between [`CancelToken`] checks. Small
/// enough that cancellation lands "within one shard's worth of work" even
/// on wide tables, large enough that the atomic load is invisible next to
/// the per-record counting cost. The interval is relative to the rows a
/// shard has scanned (not the absolute row index), so every shard hits
/// its first checkpoint after at most one interval regardless of where
/// its range starts.
pub const CANCEL_CHECK_INTERVAL: usize = 1024;

/// Most distinct categorical tuples a shard's memo cache will admit.
/// Past this the cache stops growing (existing entries still serve hits):
/// a table whose tuples are mostly distinct gains nothing from
/// memoization, so unbounded growth would only add hashing and memory on
/// exactly the tables the optimization cannot help.
pub const MEMO_MAX_DISTINCT: usize = 1 << 12;

/// Minimum average rows-per-distinct-tuple the memo cache must observe in
/// a shard's first full block to stay enabled. Below this the table is
/// (nearly) all-distinct from the cache's point of view, every probe is a
/// miss, and hashing the tuple per row is pure overhead — the shard drops
/// the cache and runs the direct walk for its remaining rows. The trial
/// only runs when the first block is full-size
/// ([`CANCEL_CHECK_INTERVAL`] rows), so small tables and narrow shards —
/// whose total cache cost is bounded anyway — are never kicked off the
/// fast path by a noisy sample.
pub const MEMO_TRIAL_FACTOR: usize = 2;

/// Tuning knobs for one counting scan. [`ScanOptions::new`] gives the
/// defaults every production path uses; the extra fields exist for the
/// `--kernel` ablation, the fuzz oracle, and threshold unit tests.
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions<'a> {
    /// Upper bound on data shards scanned in parallel (`<= 1` is serial).
    pub num_threads: usize,
    /// Cooperative cancellation token, checked every
    /// [`CANCEL_CHECK_INTERVAL`] rows within each shard.
    pub cancel: Option<&'a CancelToken>,
    /// Worker pool to run shard tasks on; `None` uses the process-wide
    /// [`WorkerPool::global`].
    pub pool: Option<&'a WorkerPool>,
    /// Which scan kernel runs the record loop (see module docs). Counts
    /// are bit-identical for every variant.
    pub kernel: ScanKernel,
    /// Distinct-tuple cap of the memo cache, [`MEMO_MAX_DISTINCT`] unless
    /// a test overrides it. Zero disables the cache (under
    /// [`ScanKernel::Auto`] the shard then starts on the bitmask kernel
    /// directly — there is nothing left to trial).
    pub memo_limit: usize,
}

impl<'a> ScanOptions<'a> {
    /// Default options for an uncancellable scan on `num_threads` shards.
    pub fn new(num_threads: usize) -> Self {
        ScanOptions {
            num_threads,
            cancel: None,
            pool: None,
            kernel: ScanKernel::Auto,
            memo_limit: MEMO_MAX_DISTINCT,
        }
    }
}

/// Run shard tasks on the supplied pool, or the process-wide one.
fn run_sharded<'env, T, F>(pool: Option<&WorkerPool>, tasks: Vec<F>) -> Vec<T>
where
    T: Send + 'env,
    F: FnOnce() -> T + Send + 'env,
{
    match pool {
        Some(pool) => pool.run(tasks),
        None => WorkerPool::global().run(tasks),
    }
}

/// Statistics of one counting pass, reported in [`crate::MiningStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Number of super-candidates formed.
    pub super_candidates: usize,
    /// How many chose the n-dimensional array backend.
    pub array_backed: usize,
    /// How many chose the R*-tree backend.
    pub rtree_backed: usize,
    /// Wall-clock time of the record scan (the component the paper's cost
    /// model calls "counting support", proportional to the table size;
    /// the rest of a pass — candidate generation and summation — is
    /// record-independent). With `n` shards this is the elapsed time of
    /// the whole fan-out/join region, so speedup is visible as
    /// `sum(shard_scan_times) / scan_time`.
    pub scan_time: Duration,
    /// Per-shard busy time of the record scan, in shard order. Length is
    /// the number of shards the pass actually used (1 for a serial scan).
    pub shard_scan_times: Vec<Duration>,
    /// Time spent summing per-shard counters into the final tallies
    /// (zero for a serial scan — there is nothing to merge).
    pub merge_time: Duration,
    /// Total nodes across the pass's categorical hash trees (the shared
    /// structure each shard clones; zero when every super-candidate is
    /// purely quantitative).
    pub hash_tree_nodes: usize,
    /// Estimated peak heap bytes of the pass's counting structures —
    /// per-shard counters are live simultaneously, so this is the
    /// single-shard estimate times the shard count (and the maximum over
    /// sequential chunks for the chunked implicit pair pass).
    pub counter_bytes: usize,
    /// True when the scan ran its shards on a worker pool (more than one
    /// shard); a serial scan never leaves the calling thread.
    pub pooled: bool,
    /// True when the categorical-tuple memo cache was enabled for the
    /// scan (it never changes counts — see module docs).
    pub memoized: bool,
    /// Distinct categorical tuples the memo caches admitted, summed over
    /// shards. Zero when memoization was disabled or never engaged.
    pub distinct_tuples: usize,
    /// Rows whose matched-plan list was served from the memo cache,
    /// summed over shards.
    pub memo_hits: u64,
    /// The scan kernel the pass resolved to: `"direct"`, `"memoized"`,
    /// or `"bitmask"` when every shard agreed ([`crate::ScanKernel::Auto`]
    /// resolves per shard), `"mixed"` when shards — or the physical
    /// sub-scans of one logical pass — disagreed.
    pub kernel: String,
}

impl PassStats {
    /// Number of data shards the scan used.
    pub fn num_shards(&self) -> usize {
        self.shard_scan_times.len().max(1)
    }

    /// Fold another pass's scan bookkeeping into this one (used when one
    /// logical pass issues several physical scans, e.g. the chunked
    /// implicit pair pass).
    fn absorb_scan(&mut self, other: &PassStats) {
        self.scan_time += other.scan_time;
        self.merge_time += other.merge_time;
        self.hash_tree_nodes += other.hash_tree_nodes;
        // Sequential sub-scans free their counters before the next one
        // allocates, so the peak is the max, not the sum.
        self.counter_bytes = self.counter_bytes.max(other.counter_bytes);
        self.pooled |= other.pooled;
        self.memoized |= other.memoized;
        self.distinct_tuples += other.distinct_tuples;
        self.memo_hits += other.memo_hits;
        if self.kernel.is_empty() {
            self.kernel = other.kernel.clone();
        } else if !other.kernel.is_empty() && self.kernel != other.kernel {
            self.kernel = "mixed".into();
        }
        add_shard_times(&mut self.shard_scan_times, &other.shard_scan_times);
    }
}

/// Element-wise sum of per-shard durations, extending `dst` as needed.
fn add_shard_times(dst: &mut Vec<Duration>, src: &[Duration]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), Duration::ZERO);
    }
    for (a, &b) in dst.iter_mut().zip(src) {
        *a += b;
    }
}

/// Split `num_rows` into at most `num_threads` contiguous, non-empty,
/// near-equal ranges covering `0..num_rows` in order. Always returns at
/// least one range (possibly `0..0` for an empty table) so callers can
/// treat the serial scan as the one-shard case.
fn shard_bounds(num_rows: usize, num_threads: usize) -> Vec<Range<usize>> {
    let shards = num_threads.max(1).min(num_rows.max(1));
    let base = num_rows / shards;
    let extra = num_rows % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        bounds.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, num_rows);
    bounds
}

/// Encode a categorical item as a hash-tree key element: attribute-major so
/// keys sorted by attribute are sorted numerically.
fn cat_item_id(attr: u32, code: u32) -> u64 {
    ((attr as u64) << 32) | code as u64
}

/// The record-independent description of one super-candidate: everything a
/// shard needs to build its private counters. Built once, shared read-only
/// by every worker.
/// Shared inclusive rectangle list of one super-candidate (`(lo, hi)`
/// corner pairs over the plan's `dims`).
type SharedRects = Arc<[(Vec<u32>, Vec<u32>)]>;

struct SuperPlan {
    /// Sorted hash-tree key of the shared categorical items.
    cat_key: Vec<u64>,
    /// Sorted quantitative attribute ids shared by all members.
    quant_attrs: Vec<u32>,
    /// Indices into the candidate list, aligned with the counter rectangles.
    members: Vec<usize>,
    /// Code-domain sizes of `quant_attrs`.
    dims: Vec<u32>,
    /// Inclusive member rectangles over `dims`, behind `Arc` so per-shard
    /// counter construction shares one allocation instead of deep-cloning
    /// O(rects) vectors per shard.
    rects: SharedRects,
    /// The same bounds column-major for the bitmask kernel:
    /// `lo_cols[d][m]`/`hi_cols[d][m]` is member `m`'s inclusive range
    /// over dimension `d` — contiguous per dimension so the member loop
    /// streams bounds instead of hopping between corner vectors.
    lo_cols: Vec<Vec<u32>>,
    hi_cols: Vec<Vec<u32>>,
    /// Per-dimension union of the member ranges (`min` of the lows,
    /// `max` of the highs), for whole-plan block pre-screening.
    dim_lo_min: Vec<u32>,
    dim_hi_max: Vec<u32>,
    /// Counting backend, decided once for all shards (`None` when the
    /// super-candidate is purely categorical).
    kind: Option<CounterKind>,
}

/// One shard's private tallies, merged in shard order after the scan.
struct ShardTally {
    /// Per-plan rectangle counters (`None` for purely categorical plans,
    /// and for every plan when the shard ran the bitmask kernel from row
    /// zero — the bitmask path never builds them).
    counters: Vec<Option<RectCounter>>,
    /// Per-plan match counts for purely categorical plans (row-wise
    /// increments and bitmask popcounts both land here).
    direct: Vec<u64>,
    /// Per-plan, per-member match counts from the bitmask kernel. All
    /// zero when the shard never ran it; a shard that switched mid-scan
    /// (`Auto`) holds its row-wise prefix in `counters` and the rest
    /// here — the scatter sums both.
    member_counts: Vec<Vec<u64>>,
    /// Busy time of this shard's scan loop.
    scan_time: Duration,
    /// True when the scan stopped early on a fired [`CancelToken`] — the
    /// tallies are partial and must be discarded.
    cancelled: bool,
    /// Distinct categorical tuples this shard's memo cache admitted.
    distinct_tuples: usize,
    /// Rows this shard served from the memo cache.
    memo_hits: u64,
    /// The kernel this shard resolved to — never [`ScanKernel::Auto`]
    /// (`Auto` reports `Memoized` when the cache survived, `Bitmask`
    /// when the trial switched the shard over).
    kernel: ScanKernel,
}

/// Group candidates into super-candidate plans and decide each plan's
/// counting backend. Deterministic: grouping uses a `BTreeMap` and the
/// backend choice is a pure function of the (record-independent) inputs.
fn build_plans(
    table: &EncodedTable,
    candidates: &[Itemset],
    force_kind: Option<CounterKind>,
) -> (Vec<SuperPlan>, PassStats) {
    let schema = table.schema();
    let is_quant: Vec<bool> = schema
        .attributes()
        .iter()
        .map(|a| a.kind() == AttributeKind::Quantitative)
        .collect();

    let mut groups: BTreeMap<(Vec<u64>, Vec<u32>), Vec<usize>> = BTreeMap::new();
    for (idx, cand) in candidates.iter().enumerate() {
        let mut cat_key = Vec::new();
        let mut quant_attrs = Vec::new();
        for item in cand.items() {
            // Range items — quantitative attributes AND taxonomy-
            // generalized categorical items — are counted as rectangle
            // dimensions; single categorical values go through the hash
            // tree. A point item on a quantitative attribute still counts
            // as a (width-1) rectangle so candidates over the same
            // attribute set share one super-candidate.
            if is_quant[item.attr as usize] || item.lo < item.hi {
                quant_attrs.push(item.attr);
            } else {
                cat_key.push(cat_item_id(item.attr, item.lo));
            }
        }
        groups.entry((cat_key, quant_attrs)).or_default().push(idx);
    }

    let mut stats = PassStats::default();
    let mut plans: Vec<SuperPlan> = Vec::with_capacity(groups.len());
    for ((cat_key, quant_attrs), members) in groups {
        let (dims, rects, kind): (Vec<u32>, SharedRects, _) = if quant_attrs.is_empty() {
            (Vec::new(), Vec::new().into(), None)
        } else {
            let dims: Vec<u32> = quant_attrs
                .iter()
                .map(|&a| table.cardinality(AttributeId(a as usize)))
                .collect();
            let rects: Vec<(Vec<u32>, Vec<u32>)> = members
                .iter()
                .map(|&idx| {
                    let cand = &candidates[idx];
                    let mut lo = Vec::with_capacity(quant_attrs.len());
                    let mut hi = Vec::with_capacity(quant_attrs.len());
                    for &a in &quant_attrs {
                        let item = cand.item_for(a).expect("grouped by attribute set");
                        lo.push(item.lo);
                        hi.push(item.hi);
                    }
                    (lo, hi)
                })
                .collect();
            let kind = force_kind.unwrap_or_else(|| RectCounter::choose_kind(&dims, rects.len()));
            match kind {
                CounterKind::Array => stats.array_backed += 1,
                CounterKind::RTree => stats.rtree_backed += 1,
            }
            stats.counter_bytes = stats
                .counter_bytes
                .saturating_add(RectCounter::estimated_bytes(kind, &dims, rects.len()));
            (dims, rects.into(), Some(kind))
        };
        let num_dims = dims.len();
        let mut lo_cols = vec![Vec::with_capacity(rects.len()); num_dims];
        let mut hi_cols = vec![Vec::with_capacity(rects.len()); num_dims];
        let mut dim_lo_min = vec![u32::MAX; num_dims];
        let mut dim_hi_max = vec![0u32; num_dims];
        for (lo, hi) in rects.iter() {
            for d in 0..num_dims {
                lo_cols[d].push(lo[d]);
                hi_cols[d].push(hi[d]);
                dim_lo_min[d] = dim_lo_min[d].min(lo[d]);
                dim_hi_max[d] = dim_hi_max[d].max(hi[d]);
            }
        }
        plans.push(SuperPlan {
            cat_key,
            quant_attrs,
            members,
            dims,
            rects,
            lo_cols,
            hi_cols,
            dim_lo_min,
            dim_hi_max,
            kind,
        });
    }
    stats.super_candidates = plans.len();
    (plans, stats)
}

/// Index the plans for the scan: plans with empty categorical parts match
/// every record; the rest go into one hash tree per key length.
fn build_trees(plans: &[SuperPlan]) -> (Vec<u32>, BTreeMap<usize, HashTree<u32>>) {
    let mut always: Vec<u32> = Vec::new();
    let mut trees: BTreeMap<usize, HashTree<u32>> = BTreeMap::new();
    for (i, plan) in plans.iter().enumerate() {
        if plan.cat_key.is_empty() {
            always.push(i as u32);
        } else {
            // One key may belong to several super-candidates (different
            // quantitative attribute sets); duplicate keys are fine — the
            // subset walk visits each stored entry.
            let tree = trees.entry(plan.cat_key.len()).or_default();
            tree.insert(plan.cat_key.clone(), i as u32);
        }
    }
    (always, trees)
}

/// Words per bitmask block: one bit per row of a
/// [`CANCEL_CHECK_INTERVAL`]-row block.
const BLOCK_WORDS: usize = CANCEL_CHECK_INTERVAL / 64;

/// Count set bits across the active words of a block mask.
#[inline]
fn popcount(mask: &[u64]) -> u64 {
    mask.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// Set the first `n` bits of `mask` (the block's row count), clear the
/// tail of the last active word.
#[inline]
fn fill_ones(mask: &mut [u64; BLOCK_WORDS], n: usize) {
    let words = n.div_ceil(64);
    mask[..words].fill(!0u64);
    let rem = n % 64;
    if rem != 0 {
        mask[words - 1] = !0u64 >> (64 - rem);
    }
}

/// Per-shard state of the bitmask kernel (see module docs): the deduped
/// predicate table built once per shard, plus the per-block mask and
/// min/max scratch reused across blocks.
struct BitmaskScan<'t> {
    /// Distinct code columns touched by any categorical predicate or
    /// quantitative dimension.
    cols: Vec<&'t [u32]>,
    /// Per-column `(min, max)` over the current block, the pre-screening
    /// summaries (aligned with `cols`).
    minmax: Vec<(u32, u32)>,
    /// Deduped categorical equality predicates `(column slot, code)` —
    /// every plan testing the same `(attribute, code)` shares one mask.
    preds: Vec<(usize, u32)>,
    /// Per-predicate equality masks over the current block.
    pred_masks: Vec<[u64; BLOCK_WORDS]>,
    /// `true` when the predicate's code lies outside the block's
    /// `[min, max]` — its mask was never computed and every plan using
    /// it skips the block.
    pred_dead: Vec<bool>,
    /// Per plan: indices into `preds`.
    plan_preds: Vec<Vec<usize>>,
    /// Per plan: column slot of each quantitative dimension.
    plan_dims: Vec<Vec<usize>>,
}

/// Intern `attr`'s code column, returning its slot in `cols`.
fn col_slot<'t>(
    table: &'t EncodedTable,
    attr: u32,
    slot_of: &mut HashMap<u32, usize>,
    cols: &mut Vec<&'t [u32]>,
) -> usize {
    *slot_of.entry(attr).or_insert_with(|| {
        cols.push(table.codes(AttributeId(attr as usize)));
        cols.len() - 1
    })
}

impl<'t> BitmaskScan<'t> {
    fn new(table: &'t EncodedTable, plans: &[SuperPlan]) -> Self {
        let mut slot_of: HashMap<u32, usize> = HashMap::new();
        let mut cols: Vec<&[u32]> = Vec::new();
        let mut pred_of: HashMap<(u32, u32), usize> = HashMap::new();
        let mut preds: Vec<(usize, u32)> = Vec::new();
        let mut plan_preds = Vec::with_capacity(plans.len());
        let mut plan_dims = Vec::with_capacity(plans.len());
        for plan in plans {
            let mut pp = Vec::with_capacity(plan.cat_key.len());
            for &key in &plan.cat_key {
                let (attr, code) = ((key >> 32) as u32, key as u32);
                let idx = *pred_of.entry((attr, code)).or_insert_with(|| {
                    let slot = col_slot(table, attr, &mut slot_of, &mut cols);
                    preds.push((slot, code));
                    preds.len() - 1
                });
                pp.push(idx);
            }
            plan_preds.push(pp);
            plan_dims.push(
                plan.quant_attrs
                    .iter()
                    .map(|&a| col_slot(table, a, &mut slot_of, &mut cols))
                    .collect(),
            );
        }
        let minmax = vec![(0, 0); cols.len()];
        let pred_masks = vec![[0u64; BLOCK_WORDS]; preds.len()];
        let pred_dead = vec![false; preds.len()];
        BitmaskScan {
            cols,
            minmax,
            preds,
            pred_masks,
            pred_dead,
            plan_preds,
            plan_dims,
        }
    }

    /// Count one block of rows into `direct` (purely categorical plans)
    /// and `member_counts` (per-member rectangle matches).
    fn scan_block(
        &mut self,
        plans: &[SuperPlan],
        rows: Range<usize>,
        direct: &mut [u64],
        member_counts: &mut [Vec<u64>],
    ) {
        let n = rows.len();
        let words = n.div_ceil(64);

        // Block summaries: one min/max sweep per touched column.
        for (col, mm) in self.cols.iter().zip(&mut self.minmax) {
            let block = &col[rows.clone()];
            let (mut lo, mut hi) = (u32::MAX, 0u32);
            for &v in block {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            *mm = (lo, hi);
        }

        // Equality masks, once per distinct (attribute, code) predicate;
        // codes outside the block's range are dead without touching rows.
        for ((&(slot, code), dead), mask) in self
            .preds
            .iter()
            .zip(&mut self.pred_dead)
            .zip(&mut self.pred_masks)
        {
            let (lo, hi) = self.minmax[slot];
            *dead = code < lo || code > hi;
            if *dead {
                continue;
            }
            let block = &self.cols[slot][rows.clone()];
            for (w, chunk) in block.chunks(64).enumerate() {
                let mut bits = 0u64;
                for (i, &v) in chunk.iter().enumerate() {
                    bits |= u64::from(v == code) << i;
                }
                mask[w] = bits;
            }
        }

        let mut plan_mask = [0u64; BLOCK_WORDS];
        let mut member_mask = [0u64; BLOCK_WORDS];
        'plans: for (pi, plan) in plans.iter().enumerate() {
            // Pre-screen the whole plan: a dead predicate, or a dimension
            // whose member-range union misses the block's value range,
            // rules every member out without touching a row.
            for &p in &self.plan_preds[pi] {
                if self.pred_dead[p] {
                    continue 'plans;
                }
            }
            let dims = &self.plan_dims[pi];
            for (d, &slot) in dims.iter().enumerate() {
                let (blo, bhi) = self.minmax[slot];
                if plan.dim_lo_min[d] > bhi || plan.dim_hi_max[d] < blo {
                    continue 'plans;
                }
            }

            // AND the plan's shared categorical masks (all-ones for a
            // plan with no categorical part).
            fill_ones(&mut plan_mask, n);
            for &p in &self.plan_preds[pi] {
                let mut any = 0u64;
                for (m, &b) in plan_mask[..words]
                    .iter_mut()
                    .zip(&self.pred_masks[p][..words])
                {
                    *m &= b;
                    any |= *m;
                }
                if any == 0 {
                    continue 'plans;
                }
            }
            if dims.is_empty() {
                direct[pi] += popcount(&plan_mask[..words]);
                continue;
            }

            // Per member: start from the categorical mask and AND one
            // branchless range mask per dimension, skipping words already
            // all-zero and members whose rectangle misses the block.
            'members: for (m, count) in member_counts[pi].iter_mut().enumerate() {
                member_mask[..words].copy_from_slice(&plan_mask[..words]);
                for (d, &slot) in dims.iter().enumerate() {
                    let lo = plan.lo_cols[d][m];
                    let hi = plan.hi_cols[d][m];
                    let (blo, bhi) = self.minmax[slot];
                    if lo > bhi || hi < blo {
                        continue 'members;
                    }
                    let span = hi - lo;
                    let block = &self.cols[slot][rows.clone()];
                    let mut any = 0u64;
                    for (w, chunk) in block.chunks(64).enumerate() {
                        if member_mask[w] == 0 {
                            continue;
                        }
                        let mut bits = 0u64;
                        for (i, &v) in chunk.iter().enumerate() {
                            bits |= u64::from(v.wrapping_sub(lo) <= span) << i;
                        }
                        member_mask[w] &= bits;
                        any |= member_mask[w];
                    }
                    if any == 0 {
                        continue 'members;
                    }
                }
                *count += popcount(&member_mask[..words]);
            }
        }
    }
}

/// The per-record counting loop over one contiguous row range. `trees` is
/// shared read-only across shards (visit stamps live in this shard's
/// private [`VisitScratch`]es); the returned tally holds this shard's
/// private counters.
///
/// The scan is *blocked columnar*: all column slices are hoisted out of
/// the row loop (one `table.codes(..)` call per column per shard, not per
/// row), and rows are processed in [`CANCEL_CHECK_INTERVAL`]-sized blocks
/// with the cancellation checkpoint at each block boundary — relative to
/// the rows this shard has scanned, so a shard starting mid-interval
/// still checks after at most one block. Each block runs either the
/// row-wise walk (with or without the memo cache) or the bitmask kernel,
/// per `kernel`; under [`ScanKernel::Auto`] the shard starts memoized
/// and the trial fallback switches it to the bitmask kernel mid-scan.
#[allow(clippy::too_many_arguments)]
fn scan_shard(
    table: &EncodedTable,
    plans: &[SuperPlan],
    always: &[u32],
    trees: &BTreeMap<usize, HashTree<u32>>,
    rows: Range<usize>,
    cancel: Option<&CancelToken>,
    kernel: ScanKernel,
    memo_limit: usize,
) -> ShardTally {
    let started = Instant::now();
    let mut was_cancelled = false;
    // The bitmask kernel never touches rectangle counters — skipping
    // their construction is part of its win. `Auto` must build them: the
    // memoized prefix before a mid-scan switch counts into them.
    let mut counters: Vec<Option<RectCounter>> = if kernel == ScanKernel::Bitmask {
        plans.iter().map(|_| None).collect()
    } else {
        plans
            .iter()
            .map(|plan| {
                plan.kind.map(|kind| {
                    RectCounter::build_shared(kind, &plan.dims, Arc::clone(&plan.rects))
                })
            })
            .collect()
    };
    let mut direct = vec![0u64; plans.len()];
    let mut member_counts: Vec<Vec<u64>> = plans
        .iter()
        .map(|plan| vec![0u64; plan.members.len()])
        .collect();
    // Start on the bitmask kernel outright when asked to, or when `Auto`
    // has no memo cache to trial.
    let mut on_bitmask =
        kernel == ScanKernel::Bitmask || (kernel == ScanKernel::Auto && memo_limit == 0);
    let mut bitmask: Option<BitmaskScan<'_>> = None;

    // Hoisted column slices: categorical columns once for the tuple key,
    // and each plan's quantitative columns once for the point lookup.
    let cat_cols: Vec<(u32, &[u32])> = table
        .schema()
        .categorical_ids()
        .into_iter()
        .map(|id| (id.index() as u32, table.codes(id)))
        .collect();
    let plan_cols: Vec<Vec<&[u32]>> = plans
        .iter()
        .map(|plan| {
            plan.quant_attrs
                .iter()
                .map(|&a| table.codes(AttributeId(a as usize)))
                .collect()
        })
        .collect();
    let mut scratches: Vec<VisitScratch> = trees.values().map(|_| VisitScratch::new()).collect();

    // The cache can be dropped mid-scan by the distinct-tuple fallback, so
    // the admitted-tuple high-water mark is tracked outside the map.
    let mut memo: HashMap<Vec<u64>, Vec<u32>> = HashMap::new();
    let mut memo_on = matches!(kernel, ScanKernel::Memoized | ScanKernel::Auto) && memo_limit > 0;
    let mut distinct_high = 0usize;
    let mut memo_hits = 0u64;
    let mut scanned = 0usize;
    let mut cat_buf: Vec<u64> = Vec::with_capacity(cat_cols.len());
    let mut matched_buf: Vec<u32> = Vec::new();
    let mut point_buf: Vec<u32> = Vec::new();

    let mut block_start = rows.start;
    'scan: while block_start < rows.end {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            was_cancelled = true;
            break 'scan;
        }
        let block_end = rows.end.min(block_start + CANCEL_CHECK_INTERVAL);
        if on_bitmask {
            bitmask
                .get_or_insert_with(|| BitmaskScan::new(table, plans))
                .scan_block(
                    plans,
                    block_start..block_end,
                    &mut direct,
                    &mut member_counts,
                );
            block_start = block_end;
            continue;
        }
        for row in block_start..block_end {
            cat_buf.clear();
            for &(attr, col) in &cat_cols {
                cat_buf.push(cat_item_id(attr, col[row]));
            }
            // Resolve this row's matched plans: from the memo cache when
            // its tuple was seen before, otherwise via the subset walk
            // (cached for later rows while the cache has room).
            let mut count_matches = |matched: &[u32]| {
                for &pi in matched {
                    let pi = pi as usize;
                    match &mut counters[pi] {
                        Some(counter) => {
                            point_buf.clear();
                            for col in &plan_cols[pi] {
                                point_buf.push(col[row]);
                            }
                            counter.count_record(&point_buf);
                        }
                        None => direct[pi] += 1,
                    }
                }
            };
            if memo_on {
                if let Some(hit) = memo.get(&cat_buf) {
                    memo_hits += 1;
                    count_matches(hit);
                    continue;
                }
            }
            matched_buf.clear();
            matched_buf.extend_from_slice(always);
            for (tree, scratch) in trees.values().zip(&mut scratches) {
                tree.for_each_subset_of_shared(scratch, &cat_buf, |_, &id| matched_buf.push(id));
            }
            count_matches(&matched_buf);
            if memo_on && memo.len() < memo_limit {
                memo.insert(cat_buf.clone(), matched_buf.clone());
            }
        }
        scanned += block_end - block_start;
        block_start = block_end;
        // Distinct-tuple fallback (see module docs): give up on the cache
        // when the first full block shows near-zero tuple reuse, or when
        // the cache has filled without ever serving a hit. Dropping the
        // cache only skips future probes — counts are unaffected. Under
        // `Auto` the same signal switches the shard to the bitmask kernel
        // (the cache just proved the table near-distinct — exactly the
        // shape the bitmask kernel wins on); explicit `Memoized` keeps
        // the row-wise walk, cache off.
        if memo_on {
            distinct_high = distinct_high.max(memo.len());
            let trial_failed =
                scanned == CANCEL_CHECK_INTERVAL && memo.len() * MEMO_TRIAL_FACTOR >= scanned;
            let full_and_cold = memo.len() >= memo_limit && memo_hits == 0;
            if trial_failed || full_and_cold {
                memo_on = false;
                memo = HashMap::new();
                if kernel == ScanKernel::Auto {
                    on_bitmask = true;
                }
            }
        }
    }
    let resolved = match kernel {
        ScanKernel::Direct | ScanKernel::Memoized | ScanKernel::Bitmask => kernel,
        ScanKernel::Auto => {
            if on_bitmask {
                ScanKernel::Bitmask
            } else {
                ScanKernel::Memoized
            }
        }
    };
    ShardTally {
        counters,
        direct,
        member_counts,
        scan_time: started.elapsed(),
        cancelled: was_cancelled,
        distinct_tuples: distinct_high.max(memo.len()),
        memo_hits,
        kernel: resolved,
    }
}

/// Count the support of every candidate in one (serial) pass over `table`.
///
/// Equivalent to [`count_candidates_sharded`] with one thread; kept as the
/// reference entry point for tests and ablations.
pub fn count_candidates(
    table: &EncodedTable,
    candidates: &[Itemset],
    force_kind: Option<CounterKind>,
) -> (Vec<u64>, PassStats) {
    count_candidates_sharded(table, candidates, force_kind, 1)
}

/// Count the support of every candidate in one pass over `table`, scanning
/// up to `num_threads` contiguous row shards in parallel.
///
/// `force_kind` pins the quantitative counting backend (for the ablation
/// bench); `None` applies the paper's memory heuristic per super-candidate.
/// Output is bit-identical for every `num_threads` (see module docs);
/// `num_threads <= 1` runs the scan inline without spawning.
pub fn count_candidates_sharded(
    table: &EncodedTable,
    candidates: &[Itemset],
    force_kind: Option<CounterKind>,
    num_threads: usize,
) -> (Vec<u64>, PassStats) {
    match count_candidates_opts(table, candidates, force_kind, ScanOptions::new(num_threads)) {
        Ok(result) => result,
        Err(ScanCancelled) => unreachable!("no cancel token was supplied"),
    }
}

/// [`count_candidates_sharded`] with a cooperative [`CancelToken`]: every
/// shard checks the token every `CANCEL_CHECK_INTERVAL` of its own
/// records and at the scan start, so a fired token stops the pass within
/// roughly one check interval per shard. A cancelled pass returns
/// [`ScanCancelled`] — its partial tallies are discarded, never
/// observable.
pub fn count_candidates_cancellable(
    table: &EncodedTable,
    candidates: &[Itemset],
    force_kind: Option<CounterKind>,
    num_threads: usize,
    cancel: Option<&CancelToken>,
) -> Result<(Vec<u64>, PassStats), ScanCancelled> {
    count_candidates_opts(
        table,
        candidates,
        force_kind,
        ScanOptions {
            cancel,
            ..ScanOptions::new(num_threads)
        },
    )
}

/// The fully parameterized counting scan behind every `count_candidates*`
/// entry point; see [`ScanOptions`] for the knobs. Counts are
/// bit-identical across every option combination — threads, pool, and
/// memoization are performance choices, never semantics.
pub fn count_candidates_opts(
    table: &EncodedTable,
    candidates: &[Itemset],
    force_kind: Option<CounterKind>,
    opts: ScanOptions<'_>,
) -> Result<(Vec<u64>, PassStats), ScanCancelled> {
    let (plans, mut stats) = build_plans(table, candidates, force_kind);
    let (always, trees) = build_trees(&plans);
    stats.hash_tree_nodes = trees.values().map(HashTree::node_count).sum();
    stats.memoized = matches!(opts.kernel, ScanKernel::Memoized | ScanKernel::Auto);
    let num_rows = table.num_rows();
    let bounds = shard_bounds(num_rows, opts.num_threads);
    stats.counter_bytes = stats.counter_bytes.saturating_mul(bounds.len());
    stats.pooled = bounds.len() > 1;
    let cancel = opts.cancel;

    let scan_started = Instant::now();
    let mut tallies: Vec<ShardTally> = if bounds.len() <= 1 {
        let range = bounds.into_iter().next().unwrap_or(0..0);
        vec![scan_shard(
            table,
            &plans,
            &always,
            &trees,
            range,
            cancel,
            opts.kernel,
            opts.memo_limit,
        )]
    } else {
        let plans_ref = &plans;
        let always_ref = &always;
        let trees_ref = &trees;
        let tasks: Vec<_> = bounds
            .into_iter()
            .map(|range| {
                move || {
                    scan_shard(
                        table,
                        plans_ref,
                        always_ref,
                        trees_ref,
                        range,
                        cancel,
                        opts.kernel,
                        opts.memo_limit,
                    )
                }
            })
            .collect();
        run_sharded(opts.pool, tasks)
    };
    if tallies.iter().any(|t| t.cancelled) {
        return Err(ScanCancelled);
    }
    stats.scan_time = scan_started.elapsed();
    stats.shard_scan_times = tallies.iter().map(|t| t.scan_time).collect();
    stats.distinct_tuples = tallies.iter().map(|t| t.distinct_tuples).sum();
    stats.memo_hits = tallies.iter().map(|t| t.memo_hits).sum();
    // `Auto` resolves per shard; shards that disagree report "mixed".
    let first_kernel = tallies[0].kernel;
    stats.kernel = if tallies.iter().all(|t| t.kernel == first_kernel) {
        first_kernel.name().to_string()
    } else {
        "mixed".to_string()
    };

    // Merge per-shard tallies in shard order (u64 sums: order-independent,
    // fixed anyway for determinism of the timing bookkeeping). A shard may
    // carry a rectangle counter, bitmask member counts, or (after an
    // `Auto` mid-scan switch) both — one-sided counters are adopted.
    let merge_started = Instant::now();
    let mut merged = tallies.remove(0);
    for tally in tallies {
        for (into, from) in merged.counters.iter_mut().zip(tally.counters) {
            match (into.take(), from) {
                (Some(mut a), Some(b)) => {
                    a.merge_from(b);
                    *into = Some(a);
                }
                (Some(a), None) => *into = Some(a),
                (None, b) => *into = b,
            }
        }
        for (into, from) in merged.direct.iter_mut().zip(tally.direct) {
            *into += from;
        }
        for (into, from) in merged.member_counts.iter_mut().zip(tally.member_counts) {
            for (a, b) in into.iter_mut().zip(from) {
                *a += b;
            }
        }
    }
    if stats.shard_scan_times.len() > 1 {
        stats.merge_time = merge_started.elapsed();
    }

    // Scatter per-rectangle counts back to candidate order: the row-wise
    // counter's tally (when one ran) plus the bitmask member counts.
    let mut counts = vec![0u64; candidates.len()];
    let ShardTally {
        counters,
        direct,
        member_counts,
        ..
    } = merged;
    for (((plan, counter), direct), bm_counts) in
        plans.iter().zip(counters).zip(direct).zip(member_counts)
    {
        match counter {
            Some(counter) => {
                for ((member, count), bm) in
                    plan.members.iter().zip(counter.finish()).zip(bm_counts)
                {
                    counts[*member] = count + bm;
                }
            }
            None if plan.kind.is_some() => {
                // Every shard ran the bitmask kernel from row zero: no
                // rectangle counter was ever built.
                for (member, bm) in plan.members.iter().zip(bm_counts) {
                    counts[*member] = bm;
                }
            }
            None => {
                for &member in &plan.members {
                    counts[member] = direct;
                }
            }
        }
    }
    Ok((counts, stats))
}

/// Implicit second pass: `C_2` is the cross product of frequent items over
/// distinct attribute pairs, which can run into the millions at low
/// partial-completeness levels (the paper's "ExecTime" blow-up). Rather
/// than materializing every pair, each attribute pair gets one dense 2-D
/// count array (its super-candidate — all `C_2` members over an attribute
/// pair share it by definition); after one pass and prefix summation,
/// every item pair's support is a constant-time rectangle sum and only the
/// frequent pairs are materialized as itemsets.
///
/// Pairs whose full code domain exceeds `cell_budget` cells fall back to
/// explicit enumeration with the R*-tree backend.
///
/// Like [`count_candidates_sharded`], the record scans split into up to
/// `num_threads` contiguous row shards whose 2-D arrays are summed
/// cell-wise before the prefix-sum readout; output is independent of the
/// thread count.
pub fn count_pairs_implicit(
    table: &EncodedTable,
    items_by_attr: &BTreeMap<u32, Vec<(qar_itemset::Item, u64)>>,
    min_count: u64,
    cell_budget: usize,
    num_threads: usize,
) -> (Vec<(Itemset, u64)>, PassStats) {
    match count_pairs_opts(
        table,
        items_by_attr,
        min_count,
        cell_budget,
        ScanOptions::new(num_threads),
    ) {
        Ok(result) => result,
        Err(ScanCancelled) => unreachable!("no cancel token was supplied"),
    }
}

/// [`count_pairs_implicit`] with a cooperative [`CancelToken`], checked
/// every `CANCEL_CHECK_INTERVAL` records inside each shard's scan and
/// between chunks/fallback groups.
pub fn count_pairs_cancellable(
    table: &EncodedTable,
    items_by_attr: &BTreeMap<u32, Vec<(qar_itemset::Item, u64)>>,
    min_count: u64,
    cell_budget: usize,
    num_threads: usize,
    cancel: Option<&CancelToken>,
) -> Result<(Vec<(Itemset, u64)>, PassStats), ScanCancelled> {
    count_pairs_opts(
        table,
        items_by_attr,
        min_count,
        cell_budget,
        ScanOptions {
            cancel,
            ..ScanOptions::new(num_threads)
        },
    )
}

/// The fully parameterized implicit pair pass behind the `count_pairs*`
/// entry points. The dense 2-D array scan has no hash-tree walk, so
/// [`ScanOptions::kernel`] only reaches the explicit R*-tree fallback
/// groups (the array scan itself reports as the `"direct"` kernel);
/// shard tasks run on the pool like the generic scan.
pub fn count_pairs_opts(
    table: &EncodedTable,
    items_by_attr: &BTreeMap<u32, Vec<(qar_itemset::Item, u64)>>,
    min_count: u64,
    cell_budget: usize,
    opts: ScanOptions<'_>,
) -> Result<(Vec<(Itemset, u64)>, PassStats), ScanCancelled> {
    use qar_itemset::MultiDimCounter;
    let num_threads = opts.num_threads;
    let cancel = opts.cancel;

    let attrs: Vec<u32> = items_by_attr
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(&a, _)| a)
        .collect();
    let mut stats = PassStats::default();
    let mut frequent: Vec<(Itemset, u64)> = Vec::new();

    // Split attribute pairs into array-countable and fallback sets.
    let mut array_pairs: Vec<(u32, u32, usize)> = Vec::new();
    let mut fallback_pairs: Vec<(u32, u32)> = Vec::new();
    for i in 0..attrs.len() {
        for j in (i + 1)..attrs.len() {
            let (a, b) = (attrs[i], attrs[j]);
            let cells = table.cardinality(AttributeId(a as usize)) as usize
                * table.cardinality(AttributeId(b as usize)) as usize;
            if cells <= cell_budget {
                array_pairs.push((a, b, cells));
            } else {
                fallback_pairs.push((a, b));
            }
        }
    }
    stats.super_candidates = array_pairs.len() + fallback_pairs.len();
    stats.array_backed = array_pairs.len();
    stats.rtree_backed = fallback_pairs.len();
    if !array_pairs.is_empty() {
        // The dense 2-D scan is a plain per-row increment: no memo cache,
        // no bitmask — report it as the direct kernel (fallback groups
        // fold their own kernel in via `absorb_scan`).
        stats.kernel = ScanKernel::Direct.name().to_string();
    }

    // Process array pairs in chunks bounded by the cell budget, one table
    // pass per chunk.
    let num_rows = table.num_rows();
    let mut start = 0;
    while start < array_pairs.len() {
        let mut end = start;
        let mut cells = 0usize;
        while end < array_pairs.len() && (end == start || cells + array_pairs[end].2 <= cell_budget)
        {
            cells += array_pairs[end].2;
            end += 1;
        }
        let chunk = &array_pairs[start..end];
        let make_counters = || -> Vec<MultiDimCounter> {
            chunk
                .iter()
                .map(|&(a, b, _)| {
                    MultiDimCounter::new(
                        &[
                            table.cardinality(AttributeId(a as usize)),
                            table.cardinality(AttributeId(b as usize)),
                        ],
                        usize::MAX,
                    )
                })
                .collect()
        };
        // Returns true when the scan stopped early on a fired token. Like
        // `scan_shard`, column slices are hoisted and the token is checked
        // per block of rows *this shard* scanned.
        let scan_rows = |counters: &mut [MultiDimCounter], rows: Range<usize>| -> bool {
            let cols: Vec<(&[u32], &[u32])> = chunk
                .iter()
                .map(|&(a, b, _)| {
                    (
                        table.codes(AttributeId(a as usize)),
                        table.codes(AttributeId(b as usize)),
                    )
                })
                .collect();
            let mut block_start = rows.start;
            while block_start < rows.end {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return true;
                }
                let block_end = rows.end.min(block_start + CANCEL_CHECK_INTERVAL);
                for row in block_start..block_end {
                    for (ci, &(col_a, col_b)) in cols.iter().enumerate() {
                        counters[ci].increment(&[col_a[row], col_b[row]]);
                    }
                }
                block_start = block_end;
            }
            false
        };

        let bounds = shard_bounds(num_rows, num_threads);
        stats.counter_bytes = stats.counter_bytes.max(
            cells
                .saturating_mul(std::mem::size_of::<u64>())
                .saturating_mul(bounds.len()),
        );
        let scan_started = Instant::now();
        let (mut counters, shard_times) = if bounds.len() <= 1 {
            let range = bounds.into_iter().next().unwrap_or(0..0);
            let mut counters = make_counters();
            let t0 = Instant::now();
            if scan_rows(&mut counters, range) {
                return Err(ScanCancelled);
            }
            (counters, vec![t0.elapsed()])
        } else {
            stats.pooled = true;
            let tasks: Vec<_> = bounds
                .into_iter()
                .map(|range| {
                    let make_counters = &make_counters;
                    let scan_rows = &scan_rows;
                    move || {
                        let mut counters = make_counters();
                        let t0 = Instant::now();
                        let cancelled = scan_rows(&mut counters, range);
                        (counters, t0.elapsed(), cancelled)
                    }
                })
                .collect();
            let shards: Vec<(Vec<MultiDimCounter>, Duration, bool)> = run_sharded(opts.pool, tasks);
            if shards.iter().any(|(_, _, cancelled)| *cancelled) {
                return Err(ScanCancelled);
            }
            let mut shards = shards.into_iter();
            let (mut merged, t, _) = shards.next().expect("at least one shard");
            let mut times = vec![t];
            let merge_started = Instant::now();
            for (shard_counters, t, _) in shards {
                for (into, from) in merged.iter_mut().zip(&shard_counters) {
                    into.merge_from(from);
                }
                times.push(t);
            }
            stats.merge_time += merge_started.elapsed();
            (merged, times)
        };
        stats.scan_time += scan_started.elapsed();
        add_shard_times(&mut stats.shard_scan_times, &shard_times);

        for (ci, &(a, b, _)) in chunk.iter().enumerate() {
            counters[ci].build_prefix_sums();
            for &(ia, _) in &items_by_attr[&a] {
                for &(ib, _) in &items_by_attr[&b] {
                    let count = counters[ci].rect_sum(&[ia.lo, ib.lo], &[ia.hi, ib.hi]);
                    if count >= min_count {
                        frequent.push((Itemset::new(vec![ia, ib]), count));
                    }
                }
            }
        }
        start = end;
    }

    // Fallback pairs: explicit cross product through the generic counter
    // (its scan/merge times are folded into this pass's stats).
    for (a, b) in fallback_pairs {
        let candidates: Vec<Itemset> = items_by_attr[&a]
            .iter()
            .flat_map(|&(ia, _)| {
                items_by_attr[&b]
                    .iter()
                    .map(move |&(ib, _)| Itemset::new(vec![ia, ib]))
            })
            .collect();
        let (counts, sub) =
            count_candidates_opts(table, &candidates, Some(CounterKind::RTree), opts)?;
        stats.absorb_scan(&sub);
        frequent.extend(
            candidates
                .into_iter()
                .zip(counts)
                .filter(|(_, c)| *c >= min_count),
        );
    }
    Ok((frequent, stats))
}

/// Reference counter: test every candidate against every record directly.
/// Exponentially simpler than the super-candidate machinery and used to
/// validate it.
pub fn count_candidates_naive(table: &EncodedTable, candidates: &[Itemset]) -> Vec<u64> {
    let mut record: Vec<u32> = vec![0; table.schema().len()];
    let mut counts = vec![0u64; candidates.len()];
    for row in 0..table.num_rows() {
        for (a, slot) in record.iter_mut().enumerate() {
            *slot = table.codes(AttributeId(a))[row];
        }
        for (i, cand) in candidates.iter().enumerate() {
            if cand.supported_by(&record) {
                counts[i] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_itemset::Item;
    use qar_table::{Schema, Table, Value};

    fn people() -> EncodedTable {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        EncodedTable::encode_full_resolution(&t).unwrap()
    }

    fn candidates() -> Vec<Itemset> {
        vec![
            // ⟨Age: 30..39⟩ (codes 3..4) and ⟨Married: Yes⟩ (code 1)
            vec![Item::range(0, 3, 4), Item::value(1, 1)]
                .into_iter()
                .collect(),
            // ⟨Age: 30..39⟩ and ⟨NumCars: 2⟩
            vec![Item::range(0, 3, 4), Item::value(2, 2)]
                .into_iter()
                .collect(),
            // ⟨Married: Yes⟩ and ⟨NumCars: 2⟩ — purely categorical + quant
            vec![Item::value(1, 1), Item::value(2, 2)]
                .into_iter()
                .collect(),
            // ⟨Age: 20..29⟩ (codes 0..2) and ⟨NumCars: 0..1⟩
            vec![Item::range(0, 0, 2), Item::range(2, 0, 1)]
                .into_iter()
                .collect(),
            // Purely categorical singleton group: ⟨Married: No⟩ + ⟨Age: any⟩?
            // keep a 2-itemset with married only + age full range
            vec![Item::value(1, 0), Item::range(0, 0, 4)]
                .into_iter()
                .collect(),
        ]
    }

    #[test]
    fn counts_match_naive() {
        let enc = people();
        let cands = candidates();
        let naive = count_candidates_naive(&enc, &cands);
        for force in [None, Some(CounterKind::Array), Some(CounterKind::RTree)] {
            let (fast, stats) = count_candidates(&enc, &cands, force);
            assert_eq!(fast, naive, "force={force:?}");
            assert!(stats.super_candidates > 0);
        }
        assert_eq!(naive, vec![2, 2, 2, 3, 2]);
    }

    #[test]
    fn super_candidate_grouping_counts() {
        // Candidates 0 and... candidate 0 (married-Yes + age) and candidate 4
        // (married-No + age) have different categorical parts -> different
        // super-candidates. Candidates 1 & 3... candidate 1 has quant attrs
        // {age, cars}, candidate 3 also {age, cars} and no categorical part
        // -> same super-candidate.
        let enc = people();
        let cands = candidates();
        let (_, stats) = count_candidates(&enc, &cands, None);
        // Groups: {age,cars} (cands 1,3), {married=Yes}+{age} (cand 0),
        // {married=Yes}+{cars} (cand 2), {married=No}+{age} (cand 4).
        assert_eq!(stats.super_candidates, 4);
        assert_eq!(stats.array_backed + stats.rtree_backed, 4);
    }

    #[test]
    fn purely_categorical_candidates() {
        let schema = Schema::builder()
            .categorical("a")
            .categorical("b")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (a, b) in [("x", "u"), ("x", "v"), ("y", "u"), ("x", "u")] {
            t.push_row(&[Value::from(a), Value::from(b)]).unwrap();
        }
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let cands: Vec<Itemset> = vec![
            vec![Item::value(0, 0), Item::value(1, 0)]
                .into_iter()
                .collect(), // x,u
            vec![Item::value(0, 1), Item::value(1, 0)]
                .into_iter()
                .collect(), // y,u
        ];
        let (counts, stats) = count_candidates(&enc, &cands, None);
        assert_eq!(counts, vec![2, 1]);
        assert_eq!(stats.array_backed + stats.rtree_backed, 0);
    }

    #[test]
    fn purely_quantitative_candidates_always_match_group() {
        let schema = Schema::builder()
            .quantitative("x")
            .quantitative("y")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (x, y) in [(1, 1), (2, 2), (3, 3), (4, 4)] {
            t.push_row(&[Value::Int(x), Value::Int(y)]).unwrap();
        }
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let cands: Vec<Itemset> = vec![
            vec![Item::range(0, 0, 1), Item::range(1, 0, 1)]
                .into_iter()
                .collect(),
            vec![Item::range(0, 2, 3), Item::range(1, 2, 3)]
                .into_iter()
                .collect(),
            vec![Item::range(0, 0, 3), Item::range(1, 0, 0)]
                .into_iter()
                .collect(),
        ];
        let (counts, stats) = count_candidates(&enc, &cands, None);
        assert_eq!(counts, vec![2, 2, 1]);
        assert_eq!(stats.super_candidates, 1, "one quant attr set");
    }

    #[test]
    fn empty_candidate_list() {
        let enc = people();
        let (counts, stats) = count_candidates(&enc, &[], None);
        assert!(counts.is_empty());
        assert_eq!(stats.super_candidates, 0);
    }

    #[test]
    fn shard_bounds_cover_rows_contiguously() {
        for (rows, threads) in [
            (0usize, 1usize),
            (0, 4),
            (1, 4),
            (3, 4),
            (4, 4),
            (5, 4),
            (100, 7),
            (100, 1),
        ] {
            let bounds = shard_bounds(rows, threads);
            assert!(!bounds.is_empty(), "{rows} rows / {threads} threads");
            assert!(bounds.len() <= threads.max(1));
            assert_eq!(bounds.first().unwrap().start, 0);
            assert_eq!(bounds.last().unwrap().end, rows);
            for w in bounds.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(!w[0].is_empty(), "non-empty shards when rows > 0");
            }
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = bounds.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "sizes {sizes:?}");
        }
    }

    /// The heart of the tentpole guarantee: every thread count yields the
    /// serial counts exactly, across backends.
    #[test]
    fn sharded_counts_equal_serial_for_all_thread_counts() {
        let enc = people();
        let cands = candidates();
        for force in [None, Some(CounterKind::Array), Some(CounterKind::RTree)] {
            let (serial, _) = count_candidates_sharded(&enc, &cands, force, 1);
            for threads in [2, 3, 4, 5, 8, 64] {
                let (sharded, stats) = count_candidates_sharded(&enc, &cands, force, threads);
                assert_eq!(sharded, serial, "force={force:?} threads={threads}");
                // 5 rows: at most 5 shards regardless of the request.
                assert!(stats.num_shards() <= 5);
                assert_eq!(stats.shard_scan_times.len(), stats.num_shards());
            }
        }
    }

    #[test]
    fn one_row_shards() {
        // rows == threads: every shard scans exactly one row.
        let enc = people();
        let cands = candidates();
        let (serial, _) = count_candidates_sharded(&enc, &cands, None, 1);
        let (sharded, stats) = count_candidates_sharded(&enc, &cands, None, 5);
        assert_eq!(sharded, serial);
        assert_eq!(stats.num_shards(), 5);
    }

    #[test]
    fn more_threads_than_rows() {
        let schema = Schema::builder().quantitative("x").build().unwrap();
        let mut t = Table::new(schema);
        t.push_row(&[Value::Int(1)]).unwrap();
        t.push_row(&[Value::Int(2)]).unwrap();
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let cands: Vec<Itemset> = vec![vec![Item::range(0, 0, 1)].into_iter().collect()];
        let (counts, stats) = count_candidates_sharded(&enc, &cands, None, 16);
        assert_eq!(counts, vec![2]);
        assert_eq!(stats.num_shards(), 2, "clamped to one row per shard");
    }

    #[test]
    fn empty_table_zero_counts_any_threads() {
        // An empty table has zero-cardinality code domains, so no valid
        // quantitative rectangle exists; categorical candidates exercise
        // the zero-row scan path.
        let schema = Schema::builder()
            .quantitative("x")
            .categorical("c")
            .build()
            .unwrap();
        let t = Table::new(schema);
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let cands: Vec<Itemset> = vec![vec![Item::value(1, 0)].into_iter().collect()];
        for threads in [1, 4] {
            let (counts, stats) = count_candidates_sharded(&enc, &cands, None, threads);
            assert_eq!(counts, vec![0], "threads={threads}");
            assert_eq!(stats.num_shards(), 1, "empty table collapses to one shard");
        }
    }

    /// A duplicate-heavy categorical table: 2 categorical attributes with
    /// 2–3 labels over many rows, so a few distinct tuples cover all rows.
    fn duplicate_heavy() -> EncodedTable {
        let schema = Schema::builder()
            .categorical("c0")
            .categorical("c1")
            .quantitative("q")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..60i64 {
            let c0 = ["a", "b"][(i % 2) as usize];
            let c1 = ["u", "v", "w"][(i % 3) as usize];
            t.push_row(&[Value::from(c0), Value::from(c1), Value::Int(i % 5)])
                .unwrap();
        }
        EncodedTable::encode_full_resolution(&t).unwrap()
    }

    fn duplicate_heavy_candidates() -> Vec<Itemset> {
        let mut cands: Vec<Itemset> = Vec::new();
        for c0 in 0..2u32 {
            for c1 in 0..3u32 {
                cands.push(
                    vec![Item::value(0, c0), Item::value(1, c1)]
                        .into_iter()
                        .collect(),
                );
                cands.push(
                    vec![Item::value(0, c0), Item::value(1, c1), Item::range(2, 0, 2)]
                        .into_iter()
                        .collect(),
                );
            }
            cands.push(
                vec![Item::value(0, c0), Item::range(2, 1, 4)]
                    .into_iter()
                    .collect(),
            );
        }
        cands
    }

    /// Every kernel is bit-identical to the naive reference, for every
    /// thread count, and reports itself in [`PassStats::kernel`].
    #[test]
    fn every_kernel_equals_naive_for_all_thread_counts() {
        let enc = duplicate_heavy();
        let cands = duplicate_heavy_candidates();
        let naive = count_candidates_naive(&enc, &cands);
        for threads in [1, 2, 4, 7] {
            for kernel in [
                ScanKernel::Direct,
                ScanKernel::Memoized,
                ScanKernel::Bitmask,
                ScanKernel::Auto,
            ] {
                let opts = ScanOptions {
                    kernel,
                    ..ScanOptions::new(threads)
                };
                let (counts, stats) = count_candidates_opts(&enc, &cands, None, opts).unwrap();
                assert_eq!(counts, naive, "threads={threads} kernel={kernel}");
                let cache_on = matches!(kernel, ScanKernel::Memoized | ScanKernel::Auto);
                assert_eq!(stats.memoized, cache_on);
                if cache_on {
                    // 6 distinct (c0, c1) tuples; every shard sees at most 6,
                    // and on this tiny table the trial never fires — `Auto`
                    // stays memoized.
                    assert_eq!(stats.kernel, "memoized");
                    assert!(stats.distinct_tuples >= 6, "{}", stats.distinct_tuples);
                    assert!(stats.distinct_tuples <= 6 * stats.num_shards());
                    assert!(stats.memo_hits > 0, "60 rows over 6 tuples must hit");
                } else {
                    assert_eq!(stats.kernel, kernel.name());
                    assert_eq!(stats.distinct_tuples, 0);
                    assert_eq!(stats.memo_hits, 0);
                }
            }
        }
    }

    /// The cache stops admitting tuples at `memo_limit`, keeps serving the
    /// admitted ones, and counts stay exact through the fallback.
    #[test]
    fn memo_limit_caps_cache_and_preserves_counts() {
        let enc = duplicate_heavy();
        let cands = duplicate_heavy_candidates();
        let naive = count_candidates_naive(&enc, &cands);
        // 6 distinct tuples; a limit of 2 forces the direct walk for the
        // other 4 tuples' rows.
        let opts = ScanOptions {
            kernel: ScanKernel::Memoized,
            memo_limit: 2,
            ..ScanOptions::new(1)
        };
        let (counts, stats) = count_candidates_opts(&enc, &cands, None, opts).unwrap();
        assert_eq!(counts, naive);
        assert_eq!(stats.distinct_tuples, 2, "cache admits exactly the cap");
        // The two admitted tuples each cover 10 of 60 rows; all but their
        // first occurrences are hits.
        assert_eq!(stats.memo_hits, 18);
        // A zero limit disables caching entirely without changing counts;
        // explicit `Memoized` stays on the row-wise walk...
        let opts = ScanOptions {
            kernel: ScanKernel::Memoized,
            memo_limit: 0,
            ..ScanOptions::new(1)
        };
        let (counts, stats) = count_candidates_opts(&enc, &cands, None, opts).unwrap();
        assert_eq!(counts, naive);
        assert_eq!(stats.kernel, "memoized");
        assert_eq!(stats.distinct_tuples, 0);
        assert_eq!(stats.memo_hits, 0);
        // ...while `Auto` with nothing to trial goes straight to bitmask.
        let opts = ScanOptions {
            memo_limit: 0,
            ..ScanOptions::new(1)
        };
        let (counts, stats) = count_candidates_opts(&enc, &cands, None, opts).unwrap();
        assert_eq!(counts, naive);
        assert_eq!(stats.kernel, "bitmask");
        assert_eq!(stats.distinct_tuples, 0);
        assert_eq!(stats.memo_hits, 0);
    }

    /// The distinct-tuple fallback: on an all-distinct table the shard
    /// stops probing the cache at the first full-block boundary — hits
    /// stay at zero, the admitted high-water mark is exactly one block's
    /// worth of tuples, and counts are untouched.
    #[test]
    fn distinct_tuple_fallback_disables_cache() {
        let schema = Schema::builder()
            .categorical("c0")
            .categorical("c1")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        // 41 × 43 coprime cardinalities: every tuple distinct up to 1763.
        for i in 0..1600usize {
            t.push_row(&[
                Value::from(format!("v{}", i % 41)),
                Value::from(format!("v{}", (i / 41) % 43)),
            ])
            .unwrap();
        }
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let cands: Vec<Itemset> = (0..3u32)
            .map(|c| {
                vec![Item::value(0, c), Item::value(1, c)]
                    .into_iter()
                    .collect()
            })
            .collect();
        let naive = count_candidates_naive(&enc, &cands);
        let (counts, stats) =
            count_candidates_opts(&enc, &cands, None, ScanOptions::new(1)).unwrap();
        assert_eq!(counts, naive);
        assert!(stats.memoized);
        assert_eq!(stats.memo_hits, 0, "all-distinct tuples never hit");
        assert_eq!(
            stats.distinct_tuples, CANCEL_CHECK_INTERVAL,
            "cache dropped at the first block boundary"
        );
        // `Auto` turns the failed trial into a mid-scan kernel switch: the
        // remaining 576 rows run the bitmask kernel (and still count
        // identically — asserted against naive above).
        assert_eq!(stats.kernel, "bitmask");
        // Explicit `Memoized` keeps the row-wise walk after the same
        // fallback and reports itself unchanged.
        let opts = ScanOptions {
            kernel: ScanKernel::Memoized,
            ..ScanOptions::new(1)
        };
        let (counts, stats) = count_candidates_opts(&enc, &cands, None, opts).unwrap();
        assert_eq!(counts, naive);
        assert_eq!(stats.kernel, "memoized");
        assert_eq!(stats.distinct_tuples, CANCEL_CHECK_INTERVAL);
    }

    /// The trial keeps the cache for a long duplicate-heavy table: 6
    /// tuples over 1600 rows easily clear the reuse bar, so every row
    /// after the first occurrences is a hit.
    #[test]
    fn trial_keeps_cache_on_duplicate_heavy_tables() {
        let schema = Schema::builder()
            .categorical("c0")
            .categorical("c1")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..1600usize {
            t.push_row(&[
                Value::from(["a", "b"][i % 2]),
                Value::from(["u", "v", "w"][i % 3]),
            ])
            .unwrap();
        }
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let cands: Vec<Itemset> = vec![
            vec![Item::value(0, 0), Item::value(1, 0)]
                .into_iter()
                .collect(),
            vec![Item::value(0, 1), Item::value(1, 2)]
                .into_iter()
                .collect(),
        ];
        let naive = count_candidates_naive(&enc, &cands);
        let (counts, stats) =
            count_candidates_opts(&enc, &cands, None, ScanOptions::new(1)).unwrap();
        assert_eq!(counts, naive);
        assert_eq!(stats.kernel, "memoized", "trial keeps Auto on the cache");
        assert_eq!(stats.distinct_tuples, 6);
        assert_eq!(stats.memo_hits, 1600 - 6, "every repeat row hits");
    }

    /// A wide mixed table exercising the bitmask kernel's edge geometry:
    /// multiple blocks plus a partial tail block, degenerate `lo == hi`
    /// rectangles, boundary-hugging codes, purely categorical plans,
    /// purely quantitative plans, and a sorted column whose narrow
    /// per-block ranges make the pre-screen actually skip work.
    fn mixed_wide() -> (EncodedTable, Vec<Itemset>) {
        let schema = Schema::builder()
            .categorical("c0")
            .quantitative("q0")
            .quantitative("q1")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..2500i64 {
            // q0 is sorted (0..=96): later blocks sit in narrow value
            // ranges, so low rectangles pre-screen whole blocks away.
            t.push_row(&[
                Value::from(["a", "b", "c", "d", "e", "f", "g"][(i % 7) as usize]),
                Value::Int(i / 26),
                Value::Int((i * 31) % 53),
            ])
            .unwrap();
        }
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let mut cands: Vec<Itemset> = Vec::new();
        for c in 0..7u32 {
            // Categorical + degenerate one-code rectangle (lo == hi).
            cands.push(
                vec![Item::value(0, c), Item::range(1, 0, 0)]
                    .into_iter()
                    .collect(),
            );
            // Categorical + low range that later (sorted) blocks miss.
            cands.push(
                vec![Item::value(0, c), Item::range(1, 0, 3)]
                    .into_iter()
                    .collect(),
            );
            // Categorical + full-range + second dimension.
            cands.push(
                vec![
                    Item::value(0, c),
                    Item::range(1, 0, 96),
                    Item::range(2, 10, 40),
                ]
                .into_iter()
                .collect(),
            );
        }
        // Purely quantitative plans, including both domain boundaries.
        cands.push(vec![Item::range(1, 96, 96)].into_iter().collect());
        cands.push(
            vec![Item::range(1, 90, 96), Item::range(2, 0, 52)]
                .into_iter()
                .collect(),
        );
        cands.push(
            vec![Item::range(1, 0, 96), Item::range(2, 52, 52)]
                .into_iter()
                .collect(),
        );
        // Purely categorical plan.
        cands.push(vec![Item::value(0, 6)].into_iter().collect());
        (enc, cands)
    }

    /// The bitmask kernel matches the direct kernel and the naive
    /// reference bit-for-bit across thread counts on a table whose blocks
    /// hit the tail, pre-screen, and degenerate-rectangle paths.
    #[test]
    fn bitmask_matches_direct_on_mixed_wide_table() {
        let (enc, cands) = mixed_wide();
        let naive = count_candidates_naive(&enc, &cands);
        let direct_opts = ScanOptions {
            kernel: ScanKernel::Direct,
            ..ScanOptions::new(1)
        };
        let (direct, _) = count_candidates_opts(&enc, &cands, None, direct_opts).unwrap();
        assert_eq!(direct, naive);
        for threads in [1, 2, 3, 8] {
            let opts = ScanOptions {
                kernel: ScanKernel::Bitmask,
                ..ScanOptions::new(threads)
            };
            let (counts, stats) = count_candidates_opts(&enc, &cands, None, opts).unwrap();
            assert_eq!(counts, naive, "threads={threads}");
            assert_eq!(stats.kernel, "bitmask");
            assert!(!stats.memoized);
        }
    }

    /// An explicit per-`Miner` pool and the implicit global pool produce
    /// identical counts.
    #[test]
    fn explicit_pool_matches_global_pool() {
        let enc = duplicate_heavy();
        let cands = duplicate_heavy_candidates();
        let pool = crate::pool::WorkerPool::new(3);
        let opts_own = ScanOptions {
            pool: Some(&pool),
            ..ScanOptions::new(4)
        };
        let (with_own, stats) = count_candidates_opts(&enc, &cands, None, opts_own).unwrap();
        assert!(stats.pooled);
        let (with_global, _) =
            count_candidates_opts(&enc, &cands, None, ScanOptions::new(4)).unwrap();
        assert_eq!(with_own, with_global);
        // The pool survives for another scan (persistent across passes).
        let (again, _) = count_candidates_opts(&enc, &cands, None, opts_own).unwrap();
        assert_eq!(again, with_own);
    }

    #[test]
    fn implicit_pairs_equal_serial_for_all_thread_counts() {
        let enc = people();
        // Frequent items per attribute, as `mine_encoded` would pass them.
        let mut items: BTreeMap<u32, Vec<(Item, u64)>> = BTreeMap::new();
        items.insert(
            0,
            vec![(Item::range(0, 0, 2), 3), (Item::range(0, 3, 4), 2)],
        );
        items.insert(1, vec![(Item::value(1, 0), 2), (Item::value(1, 1), 3)]);
        items.insert(2, vec![(Item::range(2, 0, 1), 3), (Item::value(2, 2), 2)]);
        for budget in [usize::MAX, 1] {
            // budget 1 forces the R*-tree fallback for every pair.
            let (serial, _) = count_pairs_implicit(&enc, &items, 2, budget, 1);
            for threads in [2, 4, 9] {
                let (sharded, _) = count_pairs_implicit(&enc, &items, 2, budget, threads);
                assert_eq!(sharded, serial, "budget={budget} threads={threads}");
            }
        }
    }
}
