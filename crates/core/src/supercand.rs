//! Super-candidate support counting (Section 5.2).
//!
//! Candidates sharing (a) identical categorical items and (b) the same set
//! of quantitative attributes are fused into one *super-candidate*. A hash
//! tree over the categorical parts finds which super-candidates a record's
//! categorical values support; the quantitative values then form a point
//! that is counted against the super-candidate's rectangles — in a dense
//! n-dimensional array or an R*-tree, whichever the memory heuristic
//! prefers.

use qar_itemset::{CounterKind, HashTree, Itemset, RectCounter};
use qar_table::{AttributeId, AttributeKind, EncodedTable};
use std::collections::BTreeMap;

/// Statistics of one counting pass, reported in [`crate::MiningStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Number of super-candidates formed.
    pub super_candidates: usize,
    /// How many chose the n-dimensional array backend.
    pub array_backed: usize,
    /// How many chose the R*-tree backend.
    pub rtree_backed: usize,
    /// Time spent scanning records (the component the paper's cost model
    /// calls "counting support", proportional to the table size; the rest
    /// of a pass — candidate generation and summation — is
    /// record-independent).
    pub scan_time: std::time::Duration,
}

/// Encode a categorical item as a hash-tree key element: attribute-major so
/// keys sorted by attribute are sorted numerically.
fn cat_item_id(attr: u32, code: u32) -> u64 {
    ((attr as u64) << 32) | code as u64
}

struct SuperCandidate {
    /// Sorted hash-tree key of the shared categorical items.
    cat_key: Vec<u64>,
    /// Sorted quantitative attribute ids shared by all members.
    quant_attrs: Vec<u32>,
    /// Indices into the candidate list, aligned with `counter` rectangles.
    members: Vec<usize>,
    /// Range counter over the quantitative parts (`None` when the
    /// super-candidate is purely categorical).
    counter: Option<RectCounter>,
    /// Match count for purely categorical super-candidates.
    direct_count: u64,
}

/// Count the support of every candidate in one pass over `table`.
///
/// `force_kind` pins the quantitative counting backend (for the ablation
/// bench); `None` applies the paper's memory heuristic per super-candidate.
pub fn count_candidates(
    table: &EncodedTable,
    candidates: &[Itemset],
    force_kind: Option<CounterKind>,
) -> (Vec<u64>, PassStats) {
    let schema = table.schema();
    let is_quant: Vec<bool> = schema
        .attributes()
        .iter()
        .map(|a| a.kind() == AttributeKind::Quantitative)
        .collect();

    // Group candidates into super-candidates. BTreeMap for determinism.
    let mut groups: BTreeMap<(Vec<u64>, Vec<u32>), Vec<usize>> = BTreeMap::new();
    for (idx, cand) in candidates.iter().enumerate() {
        let mut cat_key = Vec::new();
        let mut quant_attrs = Vec::new();
        for item in cand.items() {
            // Range items — quantitative attributes AND taxonomy-
            // generalized categorical items — are counted as rectangle
            // dimensions; single categorical values go through the hash
            // tree. A point item on a quantitative attribute still counts
            // as a (width-1) rectangle so candidates over the same
            // attribute set share one super-candidate.
            if is_quant[item.attr as usize] || item.lo < item.hi {
                quant_attrs.push(item.attr);
            } else {
                cat_key.push(cat_item_id(item.attr, item.lo));
            }
        }
        groups.entry((cat_key, quant_attrs)).or_default().push(idx);
    }

    let mut stats = PassStats::default();
    let mut supers: Vec<SuperCandidate> = Vec::with_capacity(groups.len());
    for ((cat_key, quant_attrs), members) in groups {
        let counter = if quant_attrs.is_empty() {
            None
        } else {
            let dims: Vec<u32> = quant_attrs
                .iter()
                .map(|&a| table.cardinality(AttributeId(a as usize)))
                .collect();
            let rects: Vec<(Vec<u32>, Vec<u32>)> = members
                .iter()
                .map(|&idx| {
                    let cand = &candidates[idx];
                    let mut lo = Vec::with_capacity(quant_attrs.len());
                    let mut hi = Vec::with_capacity(quant_attrs.len());
                    for &a in &quant_attrs {
                        let item = cand.item_for(a).expect("grouped by attribute set");
                        lo.push(item.lo);
                        hi.push(item.hi);
                    }
                    (lo, hi)
                })
                .collect();
            let counter = match force_kind {
                Some(kind) => RectCounter::build_with(kind, &dims, rects),
                None => RectCounter::build(&dims, rects),
            };
            match counter.kind() {
                CounterKind::Array => stats.array_backed += 1,
                CounterKind::RTree => stats.rtree_backed += 1,
            }
            Some(counter)
        };
        supers.push(SuperCandidate {
            cat_key,
            quant_attrs,
            members,
            counter,
            direct_count: 0,
        });
    }
    stats.super_candidates = supers.len();

    // Index super-candidates: those with empty categorical parts match
    // every record; the rest go into one hash tree per key length.
    let mut always: Vec<usize> = Vec::new();
    let mut trees: BTreeMap<usize, HashTree<u32>> = BTreeMap::new();
    for (i, sc) in supers.iter().enumerate() {
        if sc.cat_key.is_empty() {
            always.push(i);
        } else {
            // One key may belong to several super-candidates (different
            // quantitative attribute sets); duplicate keys are fine — the
            // subset walk visits each stored entry.
            let tree = trees.entry(sc.cat_key.len()).or_default();
            tree.insert(sc.cat_key.clone(), i as u32);
        }
    }

    // The counting pass.
    let cat_ids: Vec<AttributeId> = schema.categorical_ids();
    let num_rows = table.num_rows();
    let mut cat_buf: Vec<u64> = Vec::with_capacity(cat_ids.len());
    let mut matched: Vec<u32> = Vec::new();
    let mut point_buf: Vec<u32> = Vec::new();
    let scan_started = std::time::Instant::now();
    for row in 0..num_rows {
        cat_buf.clear();
        for &id in &cat_ids {
            cat_buf.push(cat_item_id(id.index() as u32, table.codes(id)[row]));
        }
        matched.clear();
        matched.extend(always.iter().map(|&i| i as u32));
        for tree in trees.values_mut() {
            tree.for_each_subset_of(&cat_buf, |_, &mut id| matched.push(id));
        }
        for &sci in &matched {
            let sc = &mut supers[sci as usize];
            match &mut sc.counter {
                Some(counter) => {
                    point_buf.clear();
                    for &a in &sc.quant_attrs {
                        point_buf.push(table.codes(AttributeId(a as usize))[row]);
                    }
                    counter.count_record(&point_buf);
                }
                None => sc.direct_count += 1,
            }
        }
    }

    stats.scan_time = scan_started.elapsed();

    // Scatter per-rectangle counts back to candidate order.
    let mut counts = vec![0u64; candidates.len()];
    for sc in supers {
        match sc.counter {
            Some(counter) => {
                for (member, count) in sc.members.iter().zip(counter.finish()) {
                    counts[*member] = count;
                }
            }
            None => {
                for member in sc.members {
                    counts[member] = sc.direct_count;
                }
            }
        }
    }
    (counts, stats)
}

/// Implicit second pass: `C_2` is the cross product of frequent items over
/// distinct attribute pairs, which can run into the millions at low
/// partial-completeness levels (the paper's "ExecTime" blow-up). Rather
/// than materializing every pair, each attribute pair gets one dense 2-D
/// count array (its super-candidate — all `C_2` members over an attribute
/// pair share it by definition); after one pass and prefix summation,
/// every item pair's support is a constant-time rectangle sum and only the
/// frequent pairs are materialized as itemsets.
///
/// Pairs whose full code domain exceeds `cell_budget` cells fall back to
/// explicit enumeration with the R*-tree backend.
pub fn count_pairs_implicit(
    table: &EncodedTable,
    items_by_attr: &BTreeMap<u32, Vec<(qar_itemset::Item, u64)>>,
    min_count: u64,
    cell_budget: usize,
) -> (Vec<(Itemset, u64)>, PassStats) {
    use qar_itemset::MultiDimCounter;

    let attrs: Vec<u32> = items_by_attr
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(&a, _)| a)
        .collect();
    let mut stats = PassStats::default();
    let mut frequent: Vec<(Itemset, u64)> = Vec::new();

    // Split attribute pairs into array-countable and fallback sets.
    let mut array_pairs: Vec<(u32, u32, usize)> = Vec::new();
    let mut fallback_pairs: Vec<(u32, u32)> = Vec::new();
    for i in 0..attrs.len() {
        for j in (i + 1)..attrs.len() {
            let (a, b) = (attrs[i], attrs[j]);
            let cells = table.cardinality(AttributeId(a as usize)) as usize
                * table.cardinality(AttributeId(b as usize)) as usize;
            if cells <= cell_budget {
                array_pairs.push((a, b, cells));
            } else {
                fallback_pairs.push((a, b));
            }
        }
    }
    stats.super_candidates = array_pairs.len() + fallback_pairs.len();
    stats.array_backed = array_pairs.len();
    stats.rtree_backed = fallback_pairs.len();

    // Process array pairs in chunks bounded by the cell budget, one table
    // pass per chunk.
    let num_rows = table.num_rows();
    let mut start = 0;
    while start < array_pairs.len() {
        let mut end = start;
        let mut cells = 0usize;
        while end < array_pairs.len() && (end == start || cells + array_pairs[end].2 <= cell_budget)
        {
            cells += array_pairs[end].2;
            end += 1;
        }
        let chunk = &array_pairs[start..end];
        let mut counters: Vec<MultiDimCounter> = chunk
            .iter()
            .map(|&(a, b, _)| {
                MultiDimCounter::new(
                    &[
                        table.cardinality(AttributeId(a as usize)),
                        table.cardinality(AttributeId(b as usize)),
                    ],
                    usize::MAX,
                )
            })
            .collect();
        let scan_started = std::time::Instant::now();
        for row in 0..num_rows {
            for (ci, &(a, b, _)) in chunk.iter().enumerate() {
                let pa = table.codes(AttributeId(a as usize))[row];
                let pb = table.codes(AttributeId(b as usize))[row];
                counters[ci].increment(&[pa, pb]);
            }
        }
        stats.scan_time += scan_started.elapsed();
        for (ci, &(a, b, _)) in chunk.iter().enumerate() {
            counters[ci].build_prefix_sums();
            for &(ia, _) in &items_by_attr[&a] {
                for &(ib, _) in &items_by_attr[&b] {
                    let count = counters[ci].rect_sum(&[ia.lo, ib.lo], &[ia.hi, ib.hi]);
                    if count >= min_count {
                        frequent.push((Itemset::new(vec![ia, ib]), count));
                    }
                }
            }
        }
        start = end;
    }

    // Fallback pairs: explicit cross product through the generic counter.
    for (a, b) in fallback_pairs {
        // (their scan time is folded into the recursive call's stats and
        // re-accumulated below)
        let candidates: Vec<Itemset> = items_by_attr[&a]
            .iter()
            .flat_map(|&(ia, _)| {
                items_by_attr[&b]
                    .iter()
                    .map(move |&(ib, _)| Itemset::new(vec![ia, ib]))
            })
            .collect();
        let (counts, sub) = count_candidates(table, &candidates, Some(CounterKind::RTree));
        stats.scan_time += sub.scan_time;
        frequent.extend(
            candidates
                .into_iter()
                .zip(counts)
                .filter(|(_, c)| *c >= min_count),
        );
    }
    (frequent, stats)
}

/// Reference counter: test every candidate against every record directly.
/// Exponentially simpler than the super-candidate machinery and used to
/// validate it.
pub fn count_candidates_naive(table: &EncodedTable, candidates: &[Itemset]) -> Vec<u64> {
    let mut record: Vec<u32> = vec![0; table.schema().len()];
    let mut counts = vec![0u64; candidates.len()];
    for row in 0..table.num_rows() {
        for (a, slot) in record.iter_mut().enumerate() {
            *slot = table.codes(AttributeId(a))[row];
        }
        for (i, cand) in candidates.iter().enumerate() {
            if cand.supported_by(&record) {
                counts[i] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_itemset::Item;
    use qar_table::{Schema, Table, Value};

    fn people() -> EncodedTable {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        EncodedTable::encode_full_resolution(&t).unwrap()
    }

    fn candidates() -> Vec<Itemset> {
        vec![
            // ⟨Age: 30..39⟩ (codes 3..4) and ⟨Married: Yes⟩ (code 1)
            vec![Item::range(0, 3, 4), Item::value(1, 1)].into_iter().collect(),
            // ⟨Age: 30..39⟩ and ⟨NumCars: 2⟩
            vec![Item::range(0, 3, 4), Item::value(2, 2)].into_iter().collect(),
            // ⟨Married: Yes⟩ and ⟨NumCars: 2⟩ — purely categorical + quant
            vec![Item::value(1, 1), Item::value(2, 2)].into_iter().collect(),
            // ⟨Age: 20..29⟩ (codes 0..2) and ⟨NumCars: 0..1⟩
            vec![Item::range(0, 0, 2), Item::range(2, 0, 1)].into_iter().collect(),
            // Purely categorical singleton group: ⟨Married: No⟩ + ⟨Age: any⟩?
            // keep a 2-itemset with married only + age full range
            vec![Item::value(1, 0), Item::range(0, 0, 4)].into_iter().collect(),
        ]
    }

    #[test]
    fn counts_match_naive() {
        let enc = people();
        let cands = candidates();
        let naive = count_candidates_naive(&enc, &cands);
        for force in [None, Some(CounterKind::Array), Some(CounterKind::RTree)] {
            let (fast, stats) = count_candidates(&enc, &cands, force);
            assert_eq!(fast, naive, "force={force:?}");
            assert!(stats.super_candidates > 0);
        }
        assert_eq!(naive, vec![2, 2, 2, 3, 2]);
    }

    #[test]
    fn super_candidate_grouping_counts() {
        // Candidates 0 and... candidate 0 (married-Yes + age) and candidate 4
        // (married-No + age) have different categorical parts -> different
        // super-candidates. Candidates 1 & 3... candidate 1 has quant attrs
        // {age, cars}, candidate 3 also {age, cars} and no categorical part
        // -> same super-candidate.
        let enc = people();
        let cands = candidates();
        let (_, stats) = count_candidates(&enc, &cands, None);
        // Groups: {age,cars} (cands 1,3), {married=Yes}+{age} (cand 0),
        // {married=Yes}+{cars} (cand 2), {married=No}+{age} (cand 4).
        assert_eq!(stats.super_candidates, 4);
        assert_eq!(stats.array_backed + stats.rtree_backed, 4);
    }

    #[test]
    fn purely_categorical_candidates() {
        let schema = Schema::builder()
            .categorical("a")
            .categorical("b")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (a, b) in [("x", "u"), ("x", "v"), ("y", "u"), ("x", "u")] {
            t.push_row(&[Value::from(a), Value::from(b)]).unwrap();
        }
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let cands: Vec<Itemset> = vec![
            vec![Item::value(0, 0), Item::value(1, 0)].into_iter().collect(), // x,u
            vec![Item::value(0, 1), Item::value(1, 0)].into_iter().collect(), // y,u
        ];
        let (counts, stats) = count_candidates(&enc, &cands, None);
        assert_eq!(counts, vec![2, 1]);
        assert_eq!(stats.array_backed + stats.rtree_backed, 0);
    }

    #[test]
    fn purely_quantitative_candidates_always_match_group() {
        let schema = Schema::builder()
            .quantitative("x")
            .quantitative("y")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (x, y) in [(1, 1), (2, 2), (3, 3), (4, 4)] {
            t.push_row(&[Value::Int(x), Value::Int(y)]).unwrap();
        }
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let cands: Vec<Itemset> = vec![
            vec![Item::range(0, 0, 1), Item::range(1, 0, 1)].into_iter().collect(),
            vec![Item::range(0, 2, 3), Item::range(1, 2, 3)].into_iter().collect(),
            vec![Item::range(0, 0, 3), Item::range(1, 0, 0)].into_iter().collect(),
        ];
        let (counts, stats) = count_candidates(&enc, &cands, None);
        assert_eq!(counts, vec![2, 2, 1]);
        assert_eq!(stats.super_candidates, 1, "one quant attr set");
    }

    #[test]
    fn empty_candidate_list() {
        let enc = people();
        let (counts, stats) = count_candidates(&enc, &[], None);
        assert!(counts.is_empty());
        assert_eq!(stats.super_candidates, 0);
    }
}
