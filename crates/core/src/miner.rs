//! The [`Miner`] facade: one configured entry point for the whole
//! pipeline, with progress events, cooperative cancellation, and
//! encoding reuse across repeated runs.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::config::{MinerConfig, MinerError, ScanKernel};
use crate::interest::annotate_interest;
use crate::mine::{mine_encoded_ctx, MineStats, RunCtx};
use crate::pipeline::{build_encoders, item_supports_of, MiningOutput, MiningStats};
use crate::pool::WorkerPool;
use crate::rules::generate_rules;
use qar_itemset::CounterKind;
use qar_table::{Column, EncodedTable, Table};
use qar_trace::{CancelToken, ProgressSink};

/// A configured miner: the builder-style entry point for the pipeline.
///
/// Compared with the deprecated free functions (`mine_table`,
/// `mine_encoded`), a `Miner`:
///
/// - emits one structured [`qar_trace::TraceEvent`] per pipeline
///   milestone into an attached [`ProgressSink`],
/// - honors a [`CancelToken`] cooperatively (pass boundaries plus
///   periodic checks inside every shard scan), returning partial
///   statistics via [`MinerError::Cancelled`],
/// - caches the partitioned/encoded form of the last table it mined, so
///   re-mining the same table (e.g. with different support thresholds)
///   skips Steps 1–2 entirely.
///
/// ```
/// use qar_core::{Miner, MinerConfig};
/// use qar_table::{Schema, Table, Value};
///
/// let schema = Schema::builder().quantitative("x").build().unwrap();
/// let mut table = Table::new(schema);
/// for v in [1, 1, 2] {
///     table.push_row(&[Value::Int(v)]).unwrap();
/// }
/// let output = Miner::new(MinerConfig {
///     min_support: 0.5,
///     max_support: 1.0,
///     interest: None,
///     ..MinerConfig::default()
/// })
/// .mine(&table)
/// .unwrap();
/// assert!(output.frequent.total() > 0);
/// ```
pub struct Miner {
    config: MinerConfig,
    sink: Option<Arc<dyn ProgressSink>>,
    cancel: Option<CancelToken>,
    force_counter: Option<CounterKind>,
    cache: Option<EncodingCache>,
    /// The persistent scan pool, created lazily on the first parallel
    /// counting pass and reused by every later run of this miner (the
    /// workers park between scans). Serial configurations never spawn it.
    pool: OnceLock<WorkerPool>,
}

/// The memoized Steps 1–2 of the previous [`Miner::mine`] call.
struct EncodingCache {
    fingerprint: (u64, u64),
    encoded: EncodedTable,
    intervals: Vec<Option<usize>>,
}

impl std::fmt::Debug for Miner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Miner")
            .field("config", &self.config)
            .field("sink", &self.sink.as_ref().map(|_| "dyn ProgressSink"))
            .field("cancel", &self.cancel)
            .field("force_counter", &self.force_counter)
            .field("cached_encoding", &self.cache.is_some())
            .field("pool", &self.pool.get())
            .finish()
    }
}

impl Miner {
    /// A miner with the given configuration and no observers.
    pub fn new(config: MinerConfig) -> Self {
        Miner {
            config,
            sink: None,
            cancel: None,
            force_counter: None,
            cache: None,
            pool: OnceLock::new(),
        }
    }

    /// Attach a progress sink; every subsequent run reports its trace
    /// events there.
    pub fn with_progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a cancellation token; runs abort cooperatively once it
    /// trips (explicitly or by deadline), returning
    /// [`MinerError::Cancelled`] with the completed passes' statistics.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Pin the quantitative counting backend (for ablations; the default
    /// picks per super-candidate by the memory heuristic).
    pub fn with_counter(mut self, kind: CounterKind) -> Self {
        self.force_counter = Some(kind);
        self
    }

    /// Pin the support-counting scan kernel (the default, [`ScanKernel::Auto`],
    /// picks memoized vs bitmask per shard from the first-block duplicate
    /// trial).
    pub fn with_kernel(mut self, kernel: ScanKernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// The configuration this miner runs with.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Replace the configuration. The encoding cache survives only if
    /// the partitioning policy is unchanged (Steps 1–2 depend on it).
    pub fn set_config(&mut self, config: MinerConfig) {
        if config.partitioning != self.config.partitioning
            || config.partition_strategy != self.config.partition_strategy
            || config.taxonomies != self.config.taxonomies
            || config.min_support != self.config.min_support
        {
            self.cache = None;
        }
        // Re-size the scan pool if the thread budget changed (a fresh
        // OnceLock drops the old pool, joining its workers).
        if config.effective_parallelism() != self.config.effective_parallelism() {
            self.pool = OnceLock::new();
        }
        self.config = config;
    }

    /// Drop the cached encoding (e.g. to release memory between runs).
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }

    fn ctx(&self) -> RunCtx<'_> {
        // Multi-threaded configurations get this miner's own pool so
        // repeated runs reuse one set of workers; a serial run needs no
        // pool at all (and must not spawn the global one as a side
        // effect).
        let threads = self.config.effective_parallelism();
        let pool = (threads > 1).then(|| self.pool.get_or_init(|| WorkerPool::new(threads)));
        RunCtx {
            sink: self.sink.as_deref(),
            cancel: self.cancel.as_ref(),
            pool,
        }
    }

    /// Run the full five-step pipeline over a raw [`Table`].
    ///
    /// Repeated calls on a table with identical contents reuse the
    /// partitioned encoding from the previous call
    /// ([`MiningStats::encoding_reused`] reports which path ran).
    pub fn mine(&mut self, table: &Table) -> Result<MiningOutput, MinerError> {
        self.config.validate()?;
        if table.is_empty() {
            return Err(MinerError::Schema(qar_table::TableError::EmptyTable));
        }
        let started = Instant::now();

        // Steps 1 + 2: partition and encode — or reuse the cached
        // encoding when the table is bit-identical to the previous run's.
        let fingerprint = table_fingerprint(table);
        let reused = match &self.cache {
            Some(cache) if cache.fingerprint == fingerprint => true,
            _ => {
                let (encoders, intervals) = build_encoders(table, &self.config)?;
                let encoded = EncodedTable::encode(table, encoders)?;
                self.cache = Some(EncodingCache {
                    fingerprint,
                    encoded,
                    intervals,
                });
                false
            }
        };
        let cache = self.cache.as_ref().expect("cache populated above");

        // Steps 3–5 over the encoded table.
        let mut output = self.finish_pipeline(&cache.encoded, started)?;
        output.stats.intervals_per_attribute = cache.intervals.clone();
        output.stats.encoding_reused = reused;
        Ok(output)
    }

    /// Run Steps 3–5 over an already-encoded table (partitioning was
    /// done by the caller, so [`MiningStats::intervals_per_attribute`]
    /// is empty and nothing is cached).
    pub fn mine_encoded(&self, table: &EncodedTable) -> Result<MiningOutput, MinerError> {
        self.config.validate()?;
        self.finish_pipeline(table, Instant::now())
    }

    /// Frequent itemsets only (Step 3) over an already-encoded table —
    /// the trace/cancel-aware replacement for the deprecated
    /// `mine_encoded` free function.
    pub fn frequent_itemsets(
        &self,
        table: &EncodedTable,
    ) -> Result<(crate::frequent::QuantFrequentItemsets, MineStats), MinerError> {
        self.config.validate()?;
        mine_encoded_ctx(table, &self.config, self.force_counter, self.ctx())
    }

    /// Steps 3–5: frequent itemsets, rules, interest, stats assembly.
    fn finish_pipeline(
        &self,
        encoded: &EncodedTable,
        started: Instant,
    ) -> Result<MiningOutput, MinerError> {
        let mining_started = Instant::now();
        let (frequent, mine_stats) =
            mine_encoded_ctx(encoded, &self.config, self.force_counter, self.ctx())?;
        let elapsed_mining = mining_started.elapsed();

        // Step 4: rules.
        let rules = generate_rules(&frequent, self.config.min_confidence);

        // Step 5: interest.
        let item_supports = item_supports_of(encoded);
        let interest = self
            .config
            .interest
            .as_ref()
            .map(|ic| annotate_interest(&rules, &frequent, &item_supports, ic));

        let rules_total = rules.len();
        let rules_interesting = match &interest {
            Some(v) => v.iter().filter(|x| x.interesting).count(),
            None => rules_total,
        };
        Ok(MiningOutput {
            frequent,
            rules,
            interest,
            item_supports,
            stats: MiningStats {
                intervals_per_attribute: Vec::new(),
                mine: mine_stats,
                rules_total,
                rules_interesting,
                elapsed: started.elapsed(),
                elapsed_mining,
                encoding_reused: false,
            },
            encoded: encoded.clone(),
        })
    }
}

/// A 128-bit content fingerprint of a table: schema (names and kinds),
/// row count, and every cell, mixed through two independently-seeded
/// SplitMix64 lanes. Collisions would silently reuse a stale encoding,
/// so two lanes keep the probability negligible for same-process reuse.
fn table_fingerprint(table: &Table) -> (u64, u64) {
    let mut lanes = [
        Lane::new(0x9e37_79b9_7f4a_7c15),
        Lane::new(0x1234_5678_9abc_def0),
    ];
    let mut absorb = |word: u64| {
        for lane in &mut lanes {
            lane.absorb(word);
        }
    };
    absorb(table.num_rows() as u64);
    for (id, def) in table.schema().iter() {
        absorb(def.name().len() as u64);
        for chunk in def.name().as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            absorb(u64::from_le_bytes(word));
        }
        match table.column(id) {
            Column::Quantitative { data, integral } => {
                absorb(1 + u64::from(*integral));
                for v in data {
                    absorb(v.to_bits());
                }
            }
            Column::Categorical { data } => {
                absorb(3);
                for label in data {
                    absorb(label.len() as u64);
                    for chunk in label.as_bytes().chunks(8) {
                        let mut word = [0u8; 8];
                        word[..chunk.len()].copy_from_slice(chunk);
                        absorb(u64::from_le_bytes(word));
                    }
                }
            }
        }
    }
    (lanes[0].finish(), lanes[1].finish())
}

/// One SplitMix64-style absorbing lane.
struct Lane(u64);

impl Lane {
    fn new(seed: u64) -> Self {
        Lane(seed)
    }

    fn absorb(&mut self, word: u64) {
        let mut z = self.0 ^ word.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionSpec;
    use qar_table::{Schema, Value};

    fn people_table() -> Table {
        let schema = Schema::builder()
            .quantitative("Age")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        t
    }

    fn config() -> MinerConfig {
        MinerConfig {
            min_support: 0.4,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: PartitionSpec::None,
            interest: None,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn facade_matches_deprecated_free_function() {
        #[allow(deprecated)]
        let via_free = crate::pipeline::mine_table(&people_table(), &config()).unwrap();
        let via_miner = Miner::new(config()).mine(&people_table()).unwrap();
        assert_eq!(via_free.frequent.levels, via_miner.frequent.levels);
        assert_eq!(via_free.rules.len(), via_miner.rules.len());
        assert_eq!(via_free.stats.rules_total, via_miner.stats.rules_total);
    }

    #[test]
    fn second_run_reuses_encoding_and_matches() {
        let table = people_table();
        let mut miner = Miner::new(config());
        let first = miner.mine(&table).unwrap();
        assert!(!first.stats.encoding_reused);
        let second = miner.mine(&table).unwrap();
        assert!(second.stats.encoding_reused);
        assert_eq!(first.frequent.levels, second.frequent.levels);
        assert_eq!(
            first.stats.intervals_per_attribute,
            second.stats.intervals_per_attribute
        );
    }

    #[test]
    fn changed_cell_invalidates_the_cache() {
        let mut miner = Miner::new(config());
        miner.mine(&people_table()).unwrap();
        let mut other = people_table();
        other
            .push_row(&[Value::Int(60), Value::from("Yes"), Value::Int(3)])
            .unwrap();
        let out = miner.mine(&other).unwrap();
        assert!(!out.stats.encoding_reused);
        assert_eq!(out.frequent.num_rows, 6);
    }

    #[test]
    fn set_config_keeps_cache_only_when_encoding_unaffected() {
        let table = people_table();
        let mut miner = Miner::new(config());
        miner.mine(&table).unwrap();

        // Confidence does not affect Steps 1-2: cache survives.
        let mut same_encoding = config();
        same_encoding.min_confidence = 0.9;
        miner.set_config(same_encoding);
        assert!(miner.mine(&table).unwrap().stats.encoding_reused);

        // Partitioning does: cache dropped.
        let mut repartitioned = config();
        repartitioned.partitioning = PartitionSpec::FixedIntervals(2);
        miner.set_config(repartitioned);
        assert!(!miner.mine(&table).unwrap().stats.encoding_reused);
    }

    #[test]
    fn fingerprint_sensitive_to_content_and_schema() {
        let base = table_fingerprint(&people_table());
        assert_eq!(base, table_fingerprint(&people_table()));

        let mut more_rows = people_table();
        more_rows
            .push_row(&[Value::Int(23), Value::from("No"), Value::Int(1)])
            .unwrap();
        assert_ne!(base, table_fingerprint(&more_rows));

        let renamed = Schema::builder()
            .quantitative("Age2")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(renamed);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        assert_ne!(base, table_fingerprint(&t));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut bad = config();
        bad.min_support = 0.0;
        assert!(matches!(
            Miner::new(bad).mine(&people_table()),
            Err(MinerError::Config(_))
        ));
    }

    #[test]
    fn empty_table_rejected() {
        let schema = Schema::builder().quantitative("x").build().unwrap();
        assert!(matches!(
            Miner::new(config()).mine(&Table::new(schema)),
            Err(MinerError::Schema(_))
        ));
    }
}
