//! The [`Miner`] facade: one configured entry point for the whole
//! pipeline, with progress events, cooperative cancellation, and
//! encoding reuse across repeated runs.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::config::{MinerConfig, MinerError, ScanKernel};
use crate::counts::{encoding_fingerprint, update_precheck, SupportCounts};
use crate::interest::annotate_interest;
use crate::mine::{mine_encoded_ctx, MineStats, RunCtx};
use crate::pipeline::{build_encoders, item_supports_of, MiningOutput, MiningStats};
use crate::pool::WorkerPool;
use crate::rules::generate_rules;
use crate::source::{mine_source_captured, InMemorySource, MergeSource};
use qar_itemset::CounterKind;
use qar_table::{AttributeEncoder, Column, EncodedTable, Schema, Table, TableError};
use qar_trace::{event::micros, CancelToken, ProgressSink, TraceEvent};

/// A configured miner: the builder-style entry point for the pipeline.
///
/// Compared with the deprecated free functions (`mine_table`,
/// `mine_encoded`), a `Miner`:
///
/// - emits one structured [`qar_trace::TraceEvent`] per pipeline
///   milestone into an attached [`ProgressSink`],
/// - honors a [`CancelToken`] cooperatively (pass boundaries plus
///   periodic checks inside every shard scan), returning partial
///   statistics via [`MinerError::Cancelled`],
/// - caches the partitioned/encoded form of the last table it mined, so
///   re-mining the same table (e.g. with different support thresholds)
///   skips Steps 1–2 entirely.
///
/// ```
/// use qar_core::{Miner, MinerConfig};
/// use qar_table::{Schema, Table, Value};
///
/// let schema = Schema::builder().quantitative("x").build().unwrap();
/// let mut table = Table::new(schema);
/// for v in [1, 1, 2] {
///     table.push_row(&[Value::Int(v)]).unwrap();
/// }
/// let output = Miner::new(MinerConfig {
///     min_support: 0.5,
///     max_support: 1.0,
///     interest: None,
///     ..MinerConfig::default()
/// })
/// .mine(&table)
/// .unwrap();
/// assert!(output.frequent.total() > 0);
/// ```
pub struct Miner {
    config: MinerConfig,
    sink: Option<Arc<dyn ProgressSink>>,
    cancel: Option<CancelToken>,
    force_counter: Option<CounterKind>,
    cache: Option<EncodingCache>,
    /// The persistent scan pool, created lazily on the first parallel
    /// counting pass and reused by every later run of this miner (the
    /// workers park between scans). Serial configurations never spawn it.
    pool: OnceLock<WorkerPool>,
}

/// The memoized Steps 1–2 of the previous [`Miner::mine`] call.
struct EncodingCache {
    fingerprint: (u64, u64),
    encoded: EncodedTable,
    intervals: Vec<Option<usize>>,
}

impl std::fmt::Debug for Miner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Miner")
            .field("config", &self.config)
            .field("sink", &self.sink.as_ref().map(|_| "dyn ProgressSink"))
            .field("cancel", &self.cancel)
            .field("force_counter", &self.force_counter)
            .field("cached_encoding", &self.cache.is_some())
            .field("pool", &self.pool.get())
            .finish()
    }
}

impl Miner {
    /// A miner with the given configuration and no observers.
    pub fn new(config: MinerConfig) -> Self {
        Miner {
            config,
            sink: None,
            cancel: None,
            force_counter: None,
            cache: None,
            pool: OnceLock::new(),
        }
    }

    /// Attach a progress sink; every subsequent run reports its trace
    /// events there.
    pub fn with_progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a cancellation token; runs abort cooperatively once it
    /// trips (explicitly or by deadline), returning
    /// [`MinerError::Cancelled`] with the completed passes' statistics.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Pin the quantitative counting backend (for ablations; the default
    /// picks per super-candidate by the memory heuristic).
    pub fn with_counter(mut self, kind: CounterKind) -> Self {
        self.force_counter = Some(kind);
        self
    }

    /// Pin the support-counting scan kernel (the default, [`ScanKernel::Auto`],
    /// picks memoized vs bitmask per shard from the first-block duplicate
    /// trial).
    pub fn with_kernel(mut self, kernel: ScanKernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// The configuration this miner runs with.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Replace the configuration. The encoding cache survives only if
    /// the partitioning policy is unchanged (Steps 1–2 depend on it).
    pub fn set_config(&mut self, config: MinerConfig) {
        if config.partitioning != self.config.partitioning
            || config.partition_strategy != self.config.partition_strategy
            || config.taxonomies != self.config.taxonomies
            || config.min_support != self.config.min_support
        {
            self.cache = None;
        }
        // Re-size the scan pool if the thread budget changed (a fresh
        // OnceLock drops the old pool, joining its workers).
        if config.effective_parallelism() != self.config.effective_parallelism() {
            self.pool = OnceLock::new();
        }
        self.config = config;
    }

    /// Drop the cached encoding (e.g. to release memory between runs).
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }

    fn ctx(&self) -> RunCtx<'_> {
        // Multi-threaded configurations get this miner's own pool so
        // repeated runs reuse one set of workers; a serial run needs no
        // pool at all (and must not spawn the global one as a side
        // effect).
        let threads = self.config.effective_parallelism();
        let pool = (threads > 1).then(|| self.pool.get_or_init(|| WorkerPool::new(threads)));
        RunCtx {
            sink: self.sink.as_deref(),
            cancel: self.cancel.as_ref(),
            pool,
        }
    }

    /// Run the full five-step pipeline over a raw [`Table`].
    ///
    /// Repeated calls on a table with identical contents reuse the
    /// partitioned encoding from the previous call
    /// ([`MiningStats::encoding_reused`] reports which path ran).
    pub fn mine(&mut self, table: &Table) -> Result<MiningOutput, MinerError> {
        self.config.validate()?;
        crate::pipeline::validate_partitioning(table.schema(), &self.config)?;
        if table.is_empty() {
            return Err(MinerError::Schema(qar_table::TableError::EmptyTable));
        }
        let started = Instant::now();

        // Steps 1 + 2: partition and encode — or reuse the cached
        // encoding when the table is bit-identical to the previous run's.
        let fingerprint = table_fingerprint(table);
        let reused = match &self.cache {
            Some(cache) if cache.fingerprint == fingerprint => true,
            _ => {
                let (encoders, intervals) = build_encoders(table, &self.config)?;
                let encoded = EncodedTable::encode(table, encoders)?;
                self.cache = Some(EncodingCache {
                    fingerprint,
                    encoded,
                    intervals,
                });
                false
            }
        };
        let cache = self.cache.as_ref().expect("cache populated above");

        // Steps 3–5 over the encoded table.
        let mut output = self.finish_pipeline(&cache.encoded, started)?;
        output.stats.intervals_per_attribute = cache.intervals.clone();
        output.stats.encoding_reused = reused;
        Ok(output)
    }

    /// [`Miner::mine`] with count capture: additionally returns the raw
    /// support tallies of every counting pass as a [`SupportCounts`],
    /// ready to persist in a catalog `COUNTS` section so later runs can
    /// update incrementally via [`Miner::update`].
    ///
    /// Steps 3–5 run through the count-distribution driver
    /// ([`crate::source::mine_source`]); results are identical to
    /// [`Miner::mine`] (same itemsets, supports, rules, interest —
    /// statistics agree under [`MiningStats::normalized`]).
    pub fn mine_with_counts(
        &mut self,
        table: &Table,
    ) -> Result<(MiningOutput, SupportCounts), MinerError> {
        self.config.validate()?;
        crate::pipeline::validate_partitioning(table.schema(), &self.config)?;
        if table.is_empty() {
            return Err(MinerError::Schema(TableError::EmptyTable));
        }
        let started = Instant::now();
        let fingerprint = table_fingerprint(table);
        let reused = match &self.cache {
            Some(cache) if cache.fingerprint == fingerprint => true,
            _ => {
                let (encoders, intervals) = build_encoders(table, &self.config)?;
                let encoded = EncodedTable::encode(table, encoders)?;
                self.cache = Some(EncodingCache {
                    fingerprint,
                    encoded,
                    intervals,
                });
                false
            }
        };
        let cache = self.cache.as_ref().expect("cache populated above");

        let mut source = InMemorySource::new(&cache.encoded, &self.config);
        if let Some(cancel) = self.cancel.as_ref() {
            source = source.with_cancel(cancel);
        }
        let (mut output, captured) = mine_source_captured(
            &mut source,
            &self.config,
            self.sink.as_deref(),
            self.cancel.as_ref(),
        )?;
        output.stats.intervals_per_attribute = cache.intervals.clone();
        output.stats.encoding_reused = reused;
        output.stats.elapsed = started.elapsed();
        let counts = SupportCounts::assemble(
            cache.encoded.schema(),
            cache.encoded.encoders(),
            table.num_rows() as u64,
            &self.config,
            cache.intervals.clone(),
            captured,
        );
        Ok((output, counts))
    }

    /// Incrementally refresh a catalog's mining results after `delta`
    /// rows were appended to its table, scanning **only** the delta.
    ///
    /// `schema`/`encoders`/`counts` come from the existing catalog. The
    /// miner's configuration must semantically match the one the counts
    /// were taken under ([`crate::counts::CountsConfig::check_matches`]);
    /// performance knobs (parallelism, kernel) may differ freely.
    ///
    /// The merged counts are exact, so the result — including the new
    /// [`SupportCounts`] — is identical to mining base+delta from
    /// scratch. When the delta would change the encoding (interval
    /// repartitioning, an unseen value) or a support crossing a
    /// threshold changes a candidate set, the update falls back to a
    /// full re-mine of `base_rows` + `delta` (emitting a pinned
    /// `incremental_fallback` trace event with the reason); without
    /// `base_rows` the fallback is unavailable and [`MinerError::Update`]
    /// is returned instead.
    pub fn update(&mut self, input: UpdateInput<'_>) -> Result<UpdateOutput, MinerError> {
        self.config.validate()?;
        let UpdateInput {
            schema,
            encoders,
            counts,
            delta,
            base_rows,
        } = input;
        counts
            .config
            .check_matches(&self.config)
            .map_err(MinerError::Update)?;
        if delta.schema() != schema {
            return Err(MinerError::Update(
                "delta schema differs from the catalog schema".to_string(),
            ));
        }
        if counts.fingerprint != encoding_fingerprint(schema, encoders) {
            return self.update_fallback(
                "persisted counts were taken under a different encoding fingerprint".to_string(),
                delta,
                base_rows,
            );
        }
        if let Err(reason) = update_precheck(schema, encoders, delta.num_rows() as u64) {
            return self.update_fallback(reason, delta, base_rows);
        }

        // Encode the delta with the catalog's encoders. An unseen value
        // means the combined table would be encoded differently — the
        // persisted counts are invalid for it, so re-mine.
        let delta_encoded = if delta.num_rows() == 0 {
            None
        } else {
            match EncodedTable::encode(delta, encoders.to_vec()) {
                Ok(enc) => Some(enc),
                Err(e @ TableError::UnencodableValue { .. }) => {
                    return self.update_fallback(
                        format!("delta is not encodable under the catalog's encoders ({e})"),
                        delta,
                        base_rows,
                    );
                }
                Err(e) => return Err(MinerError::Schema(e)),
            }
        };

        let update_started = Instant::now();
        let total_rows = counts.num_rows + delta.num_rows() as u64;
        let meta =
            EncodedTable::header_only(schema.clone(), encoders.to_vec(), total_rows as usize);
        let delta_source = delta_encoded.as_ref().map(|enc| {
            let mut src = InMemorySource::new(enc, &self.config);
            if let Some(cancel) = self.cancel.as_ref() {
                src = src.with_cancel(cancel);
            }
            src
        });
        let mut merge = MergeSource::new(counts, delta_source, meta);
        match mine_source_captured(
            &mut merge,
            &self.config,
            self.sink.as_deref(),
            self.cancel.as_ref(),
        ) {
            Ok((mut output, captured)) => {
                output.stats.intervals_per_attribute = counts.intervals_per_attribute.clone();
                let new_counts = SupportCounts {
                    num_rows: total_rows,
                    fingerprint: counts.fingerprint,
                    config: counts.config.clone(),
                    intervals_per_attribute: counts.intervals_per_attribute.clone(),
                    captured,
                };
                self.emit(TraceEvent::IncrementalUpdate {
                    base_rows: counts.num_rows,
                    delta_rows: delta.num_rows() as u64,
                    total_rows,
                    passes: new_counts.captured.passes.len() + 1,
                    elapsed_us: micros(update_started.elapsed()),
                });
                Ok(UpdateOutput {
                    output,
                    counts: new_counts,
                    incremental: true,
                    fallback: None,
                })
            }
            Err(MinerError::Update(reason)) => self.update_fallback(reason, delta, base_rows),
            Err(other) => Err(other),
        }
    }

    /// The full re-mine escape hatch of [`Miner::update`].
    fn update_fallback(
        &mut self,
        reason: String,
        delta: &Table,
        base_rows: Option<&Table>,
    ) -> Result<UpdateOutput, MinerError> {
        self.emit(TraceEvent::IncrementalFallback {
            reason: reason.clone(),
        });
        let Some(base) = base_rows else {
            return Err(MinerError::Update(format!(
                "{reason}; base rows unavailable for a full re-mine"
            )));
        };
        let mut combined = Table::new(base.schema().clone());
        for r in 0..base.num_rows() {
            combined.push_row(&base.row(r).to_values())?;
        }
        for r in 0..delta.num_rows() {
            combined.push_row(&delta.row(r).to_values())?;
        }
        let (output, counts) = self.mine_with_counts(&combined)?;
        Ok(UpdateOutput {
            output,
            counts,
            incremental: false,
            fallback: Some(reason),
        })
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.on_event(&event);
        }
    }

    /// Run Steps 3–5 over an already-encoded table (partitioning was
    /// done by the caller, so [`MiningStats::intervals_per_attribute`]
    /// is empty and nothing is cached).
    pub fn mine_encoded(&self, table: &EncodedTable) -> Result<MiningOutput, MinerError> {
        self.config.validate()?;
        self.finish_pipeline(table, Instant::now())
    }

    /// Frequent itemsets only (Step 3) over an already-encoded table —
    /// the trace/cancel-aware replacement for the deprecated
    /// `mine_encoded` free function.
    pub fn frequent_itemsets(
        &self,
        table: &EncodedTable,
    ) -> Result<(crate::frequent::QuantFrequentItemsets, MineStats), MinerError> {
        self.config.validate()?;
        mine_encoded_ctx(table, &self.config, self.force_counter, self.ctx())
    }

    /// Steps 3–5: frequent itemsets, rules, interest, stats assembly.
    fn finish_pipeline(
        &self,
        encoded: &EncodedTable,
        started: Instant,
    ) -> Result<MiningOutput, MinerError> {
        let mining_started = Instant::now();
        let (frequent, mine_stats) =
            mine_encoded_ctx(encoded, &self.config, self.force_counter, self.ctx())?;
        let elapsed_mining = mining_started.elapsed();

        // Step 4: rules.
        let rules = generate_rules(&frequent, self.config.min_confidence);

        // Step 5: interest.
        let item_supports = item_supports_of(encoded);
        let interest = self
            .config
            .interest
            .as_ref()
            .map(|ic| annotate_interest(&rules, &frequent, &item_supports, ic));

        let rules_total = rules.len();
        let rules_interesting = match &interest {
            Some(v) => v.iter().filter(|x| x.interesting).count(),
            None => rules_total,
        };
        Ok(MiningOutput {
            frequent,
            rules,
            interest,
            item_supports,
            stats: MiningStats {
                intervals_per_attribute: Vec::new(),
                mine: mine_stats,
                rules_total,
                rules_interesting,
                elapsed: started.elapsed(),
                elapsed_mining,
                encoding_reused: false,
            },
            encoded: encoded.clone(),
        })
    }
}

/// Everything [`Miner::update`] needs from the existing catalog plus the
/// newly appended rows.
pub struct UpdateInput<'a> {
    /// The catalog's schema.
    pub schema: &'a Schema,
    /// The catalog's per-attribute encoders (what the persisted counts
    /// were encoded under).
    pub encoders: &'a [AttributeEncoder],
    /// The catalog's persisted support counts.
    pub counts: &'a SupportCounts,
    /// The appended rows (may be empty).
    pub delta: &'a Table,
    /// The base table's rows, if still available — enables the full
    /// re-mine fallback when the delta invalidates the counts.
    pub base_rows: Option<&'a Table>,
}

/// What [`Miner::update`] produced.
pub struct UpdateOutput {
    /// The refreshed mining results over base+delta. On the incremental
    /// path `output.encoded` is a decode-only header (rules render, but
    /// there are no code columns to re-scan).
    pub output: MiningOutput,
    /// Refreshed support counts, ready to persist (identical to what a
    /// from-scratch capture mine of base+delta would produce).
    pub counts: SupportCounts,
    /// True when only the delta was scanned.
    pub incremental: bool,
    /// The fallback reason, when a full re-mine was required.
    pub fallback: Option<String>,
}

impl std::fmt::Debug for UpdateOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateOutput")
            .field("rules", &self.output.rules.len())
            .field("num_rows", &self.counts.num_rows)
            .field("incremental", &self.incremental)
            .field("fallback", &self.fallback)
            .finish()
    }
}

/// A 128-bit content fingerprint of a table: schema (names and kinds),
/// row count, and every cell, mixed through two independently-seeded
/// SplitMix64 lanes. Collisions would silently reuse a stale encoding,
/// so two lanes keep the probability negligible for same-process reuse.
fn table_fingerprint(table: &Table) -> (u64, u64) {
    let mut lanes = [
        Lane::new(0x9e37_79b9_7f4a_7c15),
        Lane::new(0x1234_5678_9abc_def0),
    ];
    let mut absorb = |word: u64| {
        for lane in &mut lanes {
            lane.absorb(word);
        }
    };
    absorb(table.num_rows() as u64);
    for (id, def) in table.schema().iter() {
        absorb(def.name().len() as u64);
        for chunk in def.name().as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            absorb(u64::from_le_bytes(word));
        }
        match table.column(id) {
            Column::Quantitative { data, integral } => {
                absorb(1 + u64::from(*integral));
                for v in data {
                    absorb(v.to_bits());
                }
            }
            Column::Categorical { data } => {
                absorb(3);
                for label in data {
                    absorb(label.len() as u64);
                    for chunk in label.as_bytes().chunks(8) {
                        let mut word = [0u8; 8];
                        word[..chunk.len()].copy_from_slice(chunk);
                        absorb(u64::from_le_bytes(word));
                    }
                }
            }
        }
    }
    (lanes[0].finish(), lanes[1].finish())
}

/// One SplitMix64-style absorbing lane.
struct Lane(u64);

impl Lane {
    fn new(seed: u64) -> Self {
        Lane(seed)
    }

    fn absorb(&mut self, word: u64) {
        let mut z = self.0 ^ word.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionSpec;
    use qar_table::{Schema, Value};

    fn people_table() -> Table {
        let schema = Schema::builder()
            .quantitative("Age")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        t
    }

    fn config() -> MinerConfig {
        MinerConfig {
            min_support: 0.4,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: PartitionSpec::None,
            interest: None,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn facade_matches_deprecated_free_function() {
        #[allow(deprecated)]
        let via_free = crate::pipeline::mine_table(&people_table(), &config()).unwrap();
        let via_miner = Miner::new(config()).mine(&people_table()).unwrap();
        assert_eq!(via_free.frequent.levels, via_miner.frequent.levels);
        assert_eq!(via_free.rules.len(), via_miner.rules.len());
        assert_eq!(via_free.stats.rules_total, via_miner.stats.rules_total);
    }

    #[test]
    fn second_run_reuses_encoding_and_matches() {
        let table = people_table();
        let mut miner = Miner::new(config());
        let first = miner.mine(&table).unwrap();
        assert!(!first.stats.encoding_reused);
        let second = miner.mine(&table).unwrap();
        assert!(second.stats.encoding_reused);
        assert_eq!(first.frequent.levels, second.frequent.levels);
        assert_eq!(
            first.stats.intervals_per_attribute,
            second.stats.intervals_per_attribute
        );
    }

    #[test]
    fn changed_cell_invalidates_the_cache() {
        let mut miner = Miner::new(config());
        miner.mine(&people_table()).unwrap();
        let mut other = people_table();
        other
            .push_row(&[Value::Int(60), Value::from("Yes"), Value::Int(3)])
            .unwrap();
        let out = miner.mine(&other).unwrap();
        assert!(!out.stats.encoding_reused);
        assert_eq!(out.frequent.num_rows, 6);
    }

    #[test]
    fn set_config_keeps_cache_only_when_encoding_unaffected() {
        let table = people_table();
        let mut miner = Miner::new(config());
        miner.mine(&table).unwrap();

        // Confidence does not affect Steps 1-2: cache survives.
        let mut same_encoding = config();
        same_encoding.min_confidence = 0.9;
        miner.set_config(same_encoding);
        assert!(miner.mine(&table).unwrap().stats.encoding_reused);

        // Partitioning does: cache dropped.
        let mut repartitioned = config();
        repartitioned.partitioning = PartitionSpec::FixedIntervals(2);
        miner.set_config(repartitioned);
        assert!(!miner.mine(&table).unwrap().stats.encoding_reused);
    }

    #[test]
    fn fingerprint_sensitive_to_content_and_schema() {
        let base = table_fingerprint(&people_table());
        assert_eq!(base, table_fingerprint(&people_table()));

        let mut more_rows = people_table();
        more_rows
            .push_row(&[Value::Int(23), Value::from("No"), Value::Int(1)])
            .unwrap();
        assert_ne!(base, table_fingerprint(&more_rows));

        let renamed = Schema::builder()
            .quantitative("Age2")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(renamed);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        assert_ne!(base, table_fingerprint(&t));
    }

    fn bigger_table(rows: std::ops::Range<usize>) -> Table {
        // Small integer domains so full-resolution encoders are
        // append-stable (every delta value already occurs in the base).
        let schema = Schema::builder()
            .quantitative("x")
            .quantitative("y")
            .categorical("c")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for r in rows {
            t.push_row(&[
                Value::Int((r % 5) as i64),
                Value::Int(((r * 7) % 4) as i64),
                Value::from(if r % 3 == 0 { "a" } else { "b" }),
            ])
            .unwrap();
        }
        t
    }

    fn update_config() -> MinerConfig {
        MinerConfig {
            min_support: 0.2,
            min_confidence: 0.4,
            max_support: 0.9,
            partitioning: PartitionSpec::None,
            interest: None,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn incremental_update_matches_scratch_mine() {
        let base = bigger_table(0..40);
        let delta = bigger_table(40..50);
        let full = bigger_table(0..50);

        let mut miner = Miner::new(update_config());
        let (_, base_counts) = miner.mine_with_counts(&base).unwrap();
        let (full_out, full_counts) = Miner::new(update_config()).mine_with_counts(&full).unwrap();

        let schema = base.schema().clone();
        let (encoders, _) = crate::pipeline::build_encoders(&base, &update_config()).unwrap();
        let updated = miner
            .update(UpdateInput {
                schema: &schema,
                encoders: &encoders,
                counts: &base_counts,
                delta: &delta,
                base_rows: Some(&base),
            })
            .unwrap();

        assert_eq!(updated.output.frequent.levels, full_out.frequent.levels);
        assert_eq!(updated.output.rules, full_out.rules);
        assert_eq!(updated.counts, full_counts);
        if updated.incremental {
            assert!(updated.fallback.is_none());
        } else {
            assert!(updated.fallback.is_some());
        }
    }

    #[test]
    fn empty_delta_update_is_a_pure_replay() {
        let base = bigger_table(0..40);
        let mut miner = Miner::new(update_config());
        let (base_out, base_counts) = miner.mine_with_counts(&base).unwrap();
        let schema = base.schema().clone();
        let (encoders, _) = crate::pipeline::build_encoders(&base, &update_config()).unwrap();
        let empty_delta = Table::new(schema.clone());
        let updated = miner
            .update(UpdateInput {
                schema: &schema,
                encoders: &encoders,
                counts: &base_counts,
                delta: &empty_delta,
                base_rows: None,
            })
            .unwrap();
        assert!(updated.incremental);
        assert_eq!(updated.output.frequent.levels, base_out.frequent.levels);
        assert_eq!(updated.output.rules, base_out.rules);
        assert_eq!(updated.counts, base_counts);
    }

    #[test]
    fn interval_encoders_force_fallback() {
        let base = people_table();
        let mut cfg = update_config();
        cfg.partitioning = PartitionSpec::FixedIntervals(2);
        let mut miner = Miner::new(cfg.clone());
        let (_, counts) = miner.mine_with_counts(&base).unwrap();
        let schema = base.schema().clone();
        let (encoders, _) = crate::pipeline::build_encoders(&base, &cfg).unwrap();

        let mut delta = Table::new(schema.clone());
        delta
            .push_row(&[Value::Int(99), Value::from("Yes"), Value::Int(1)])
            .unwrap();

        // Without base rows the fallback is unavailable.
        let sink = Arc::new(qar_trace::CollectingSink::new());
        let mut observed = Miner::new(cfg.clone()).with_progress(sink.clone());
        let (_, counts2) = observed.mine_with_counts(&base).unwrap();
        assert_eq!(counts, counts2);
        let err = observed
            .update(UpdateInput {
                schema: &schema,
                encoders: &encoders,
                counts: &counts,
                delta: &delta,
                base_rows: None,
            })
            .unwrap_err();
        assert!(matches!(err, MinerError::Update(_)), "{err:?}");
        assert!(
            sink.events()
                .iter()
                .any(|e| e.name() == "incremental_fallback"),
            "fallback event must be pinned"
        );

        // With base rows the fallback re-mines and matches scratch.
        let updated = miner
            .update(UpdateInput {
                schema: &schema,
                encoders: &encoders,
                counts: &counts,
                delta: &delta,
                base_rows: Some(&base),
            })
            .unwrap();
        assert!(!updated.incremental);
        assert!(updated.fallback.is_some());
        let mut full = people_table();
        full.push_row(&[Value::Int(99), Value::from("Yes"), Value::Int(1)])
            .unwrap();
        let (full_out, full_counts) = Miner::new(cfg).mine_with_counts(&full).unwrap();
        assert_eq!(updated.output.frequent.levels, full_out.frequent.levels);
        assert_eq!(updated.counts, full_counts);
    }

    #[test]
    fn config_drift_is_an_update_error() {
        let base = bigger_table(0..40);
        let mut miner = Miner::new(update_config());
        let (_, counts) = miner.mine_with_counts(&base).unwrap();
        let schema = base.schema().clone();
        let (encoders, _) = crate::pipeline::build_encoders(&base, &update_config()).unwrap();
        let mut drifted_cfg = update_config();
        drifted_cfg.min_support = 0.3;
        let mut drifted = Miner::new(drifted_cfg);
        let err = drifted
            .update(UpdateInput {
                schema: &schema,
                encoders: &encoders,
                counts: &counts,
                delta: &bigger_table(40..45),
                base_rows: Some(&base),
            })
            .unwrap_err();
        assert!(matches!(err, MinerError::Update(_)), "{err:?}");
    }

    #[test]
    fn mine_with_counts_matches_plain_mine() {
        let table = people_table();
        let plain = Miner::new(config()).mine(&table).unwrap();
        let (captured, counts) = Miner::new(config()).mine_with_counts(&table).unwrap();
        assert_eq!(plain.frequent.levels, captured.frequent.levels);
        assert_eq!(plain.rules, captured.rules);
        let a = plain.stats.normalized();
        let b = captured.stats.normalized();
        assert_eq!(a.mine, b.mine);
        assert_eq!(a.intervals_per_attribute, b.intervals_per_attribute);
        assert_eq!(counts.num_rows, table.num_rows() as u64);
        assert_eq!(
            counts.fingerprint,
            encoding_fingerprint(captured.encoded.schema(), captured.encoded.encoders())
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let mut bad = config();
        bad.min_support = 0.0;
        assert!(matches!(
            Miner::new(bad).mine(&people_table()),
            Err(MinerError::Config(_))
        ));
    }

    #[test]
    fn empty_table_rejected() {
        let schema = Schema::builder().quantitative("x").build().unwrap();
        assert!(matches!(
            Miner::new(config()).mine(&Table::new(schema)),
            Err(MinerError::Schema(_))
        ));
    }
}
