//! The five-step pipeline (Section 2.1), end to end.

use std::time::Duration;

use crate::config::{MinerConfig, MinerError, PartitionSpec, PartitionStrategy};
use crate::frequent::QuantFrequentItemsets;
use crate::interest::{ItemSupports, RuleInterest};
use crate::mine::MineStats;
use crate::output;
use crate::rules::QuantRule;
use qar_partition::{num_intervals, EquiDepth, EquiWidth, KMeans1D, Partitioner};
use qar_table::{AttributeEncoder, AttributeKind, Column, EncodedTable, Table};

/// Run-wide statistics and provenance.
#[derive(Debug, Clone)]
pub struct MiningStats {
    /// Intervals chosen per attribute (schema order); `None` for
    /// categorical or unpartitioned attributes.
    pub intervals_per_attribute: Vec<Option<usize>>,
    /// Level-wise pass statistics.
    pub mine: MineStats,
    /// Total number of rules before the interest filter.
    pub rules_total: usize,
    /// Rules surviving the interest filter (equal to `rules_total` when no
    /// interest measure was configured).
    pub rules_interesting: usize,
    /// Wall-clock time of the whole pipeline.
    pub elapsed: Duration,
    /// Wall-clock time of the frequent-itemset passes alone (the part the
    /// paper's scale-up experiment measures).
    pub elapsed_mining: Duration,
    /// True when this run reused the [`crate::Miner`]'s cached encoding
    /// instead of re-partitioning and re-encoding the table (always false
    /// for the first run on a table and for the deprecated free-function
    /// entry points).
    pub encoding_reused: bool,
}

impl MiningStats {
    /// A copy with every volatile field zeroed: wall-clock durations,
    /// machine parallelism, and the per-pass kernel/shard/cache numbers
    /// (each [`crate::supercand::PassStats`] is replaced by its default,
    /// preserving only the entry count). What survives is exactly the
    /// algorithmic trace — intervals per attribute, candidate counts per
    /// pass, pruned items, rule totals — so two catalogs written with
    /// normalized stats are byte-identical iff the *mining results*
    /// agree, regardless of which machine, thread count, kernel, or
    /// execution strategy (serial, distributed, out-of-core) produced
    /// them. `encoding_reused` is pinned to `false` for the same reason.
    pub fn normalized(&self) -> MiningStats {
        MiningStats {
            intervals_per_attribute: self.intervals_per_attribute.clone(),
            mine: crate::mine::MineStats {
                candidates_per_pass: self.mine.candidates_per_pass.clone(),
                pass_stats: self
                    .mine
                    .pass_stats
                    .iter()
                    .map(|_| Default::default())
                    .collect(),
                interest_pruned_items: self.mine.interest_pruned_items,
                pass1_scan_time: Duration::ZERO,
                parallelism: 0,
            },
            rules_total: self.rules_total,
            rules_interesting: self.rules_interesting,
            elapsed: Duration::ZERO,
            elapsed_mining: Duration::ZERO,
            encoding_reused: false,
        }
    }
}

/// Everything a mining run produces.
pub struct MiningOutput {
    /// The encoded table (kept so rules can be rendered and recounted).
    pub encoded: EncodedTable,
    /// All frequent itemsets with exact supports.
    pub frequent: QuantFrequentItemsets,
    /// All rules meeting `min_confidence`.
    pub rules: Vec<QuantRule>,
    /// Interest verdicts aligned with `rules` (`None` when the config had
    /// no interest measure).
    pub interest: Option<Vec<RuleInterest>>,
    /// Exact item supports (for downstream interest computations).
    pub item_supports: ItemSupports,
    /// Statistics.
    pub stats: MiningStats,
}

impl MiningOutput {
    /// The rules the interest filter kept (all rules when disabled).
    pub fn interesting_rules(&self) -> Vec<&QuantRule> {
        match &self.interest {
            Some(verdicts) => self
                .rules
                .iter()
                .zip(verdicts)
                .filter(|(_, v)| v.interesting)
                .map(|(r, _)| r)
                .collect(),
            None => self.rules.iter().collect(),
        }
    }

    /// Render rule `index` in the paper's style.
    pub fn format_rule(&self, index: usize) -> String {
        output::format_rule(&self.rules[index], self.frequent.num_rows, &self.encoded)
    }
}

/// Validate the data-independent half of the partitioning policy for
/// `schema`: the [`num_intervals`] computation a
/// [`PartitionSpec::CompletenessLevel`] demands, which depends only on
/// the schema's quantitative-attribute count and the configured minimum
/// support. [`build_encoders`] performs the same check; running it up
/// front keeps rejection row-count-independent, so an empty table with
/// impossible partitioning parameters reports the partitioning error on
/// every path instead of whichever of the two errors that path reaches
/// first.
pub fn validate_partitioning(
    schema: &qar_table::Schema,
    config: &MinerConfig,
) -> Result<(), MinerError> {
    if let PartitionSpec::CompletenessLevel(k) = &config.partitioning {
        let n_quant = schema.quantitative_ids().len();
        num_intervals(n_quant.max(1), config.min_support, *k)
            .map_err(|e| MinerError::Partition(e.to_string()))?;
    }
    Ok(())
}

/// Build per-attribute encoders according to the partitioning policy
/// (Steps 1 and 2).
pub fn build_encoders(
    table: &Table,
    config: &MinerConfig,
) -> Result<(Vec<AttributeEncoder>, Vec<Option<usize>>), MinerError> {
    let schema = table.schema();
    let n_quant = schema.quantitative_ids().len();
    let default_intervals: Option<usize> = match &config.partitioning {
        PartitionSpec::None => None,
        PartitionSpec::FixedIntervals(m) => Some(*m),
        PartitionSpec::CompletenessLevel(k) => Some(
            num_intervals(n_quant.max(1), config.min_support, *k)
                .map_err(|e| MinerError::Partition(e.to_string()))?,
        ),
        PartitionSpec::PerAttribute(_) => None,
    };

    let mut encoders = Vec::with_capacity(schema.len());
    let mut intervals = Vec::with_capacity(schema.len());
    for (id, def) in schema.iter() {
        match (def.kind(), table.column(id)) {
            (AttributeKind::Categorical, Column::Categorical { data }) => {
                match config.taxonomies.get(def.name()) {
                    Some(taxonomy) => {
                        encoders.push(AttributeEncoder::categorical_with_taxonomy(data, taxonomy)?);
                    }
                    None => encoders.push(AttributeEncoder::categorical_from(data)),
                }
                intervals.push(None);
            }
            (AttributeKind::Quantitative, Column::Quantitative { data, integral }) => {
                let wanted = match &config.partitioning {
                    PartitionSpec::PerAttribute(map) => map.get(def.name()).copied(),
                    _ => default_intervals,
                };
                let (encoder, achieved) =
                    quant_encoder_from(data, *integral, wanted, config.partition_strategy);
                encoders.push(encoder);
                intervals.push(achieved);
            }
            _ => unreachable!("columns always match their schema kind"),
        }
    }
    Ok((encoders, intervals))
}

/// The quantitative half of Step 1/2 for one attribute: partition (or
/// not) and build the encoder. Order-independent in `data` — the
/// partitioners sort internally and the display bounds are per-interval
/// min/max — so the streaming path may pass a sorted reconstruction.
fn quant_encoder_from(
    data: &[f64],
    integral: bool,
    wanted: Option<usize>,
    strategy: PartitionStrategy,
) -> (AttributeEncoder, Option<usize>) {
    let mut distinct = data.to_vec();
    distinct.sort_by(f64::total_cmp);
    distinct.dedup();
    match wanted {
        // "If the number of values is small, we do not partition": fewer
        // distinct values than intervals means full resolution already
        // satisfies the completeness target.
        Some(k) if distinct.len() > k && k >= 1 => {
            let kmeans = KMeans1D::default();
            let partitioner: &dyn Partitioner = match strategy {
                PartitionStrategy::EquiDepth => &EquiDepth,
                PartitionStrategy::EquiWidth => &EquiWidth,
                PartitionStrategy::KMeans => &kmeans,
            };
            let cuts = partitioner.cut_points(data, k);
            let achieved = cuts.len() + 1;
            (
                AttributeEncoder::quant_intervals_from(data, cuts, integral),
                Some(achieved),
            )
        }
        _ => (AttributeEncoder::quant_values_from(data, integral), None),
    }
}

/// [`build_encoders`] from a streaming [`qar_table::TableSummary`] instead
/// of an in-memory table — the out-of-core ingest path. Produces encoders
/// identical to what `build_encoders` would build on the full table,
/// because every constructor involved is order-independent and the
/// summary reconstructs each column with exact multiplicities (one
/// attribute at a time, so peak memory is a single column).
pub fn build_encoders_from_summary(
    summary: &qar_table::TableSummary,
    config: &MinerConfig,
) -> Result<(Vec<AttributeEncoder>, Vec<Option<usize>>), MinerError> {
    let schema = summary.schema();
    let n_quant = schema.quantitative_ids().len();
    let default_intervals: Option<usize> = match &config.partitioning {
        PartitionSpec::None => None,
        PartitionSpec::FixedIntervals(m) => Some(*m),
        PartitionSpec::CompletenessLevel(k) => Some(
            num_intervals(n_quant.max(1), config.min_support, *k)
                .map_err(|e| MinerError::Partition(e.to_string()))?,
        ),
        PartitionSpec::PerAttribute(_) => None,
    };

    let mut encoders = Vec::with_capacity(schema.len());
    let mut intervals = Vec::with_capacity(schema.len());
    for (id, def) in schema.iter() {
        match def.kind() {
            AttributeKind::Categorical => {
                let labels = summary.labels(id);
                match config.taxonomies.get(def.name()) {
                    Some(taxonomy) => {
                        encoders.push(AttributeEncoder::categorical_with_taxonomy(
                            &labels, taxonomy,
                        )?);
                    }
                    None => encoders.push(AttributeEncoder::categorical_from(&labels)),
                }
                intervals.push(None);
            }
            AttributeKind::Quantitative => {
                let wanted = match &config.partitioning {
                    PartitionSpec::PerAttribute(map) => map.get(def.name()).copied(),
                    _ => default_intervals,
                };
                let data = summary.expand_quant(id);
                let (encoder, achieved) = quant_encoder_from(
                    &data,
                    summary.integral(id),
                    wanted,
                    config.partition_strategy,
                );
                encoders.push(encoder);
                intervals.push(achieved);
            }
        }
    }
    Ok((encoders, intervals))
}

/// Run the full pipeline over a raw [`Table`].
#[deprecated(
    since = "0.1.0",
    note = "use the `Miner` facade: `Miner::new(config.clone()).mine(&table)` \
            (it adds progress events, cancellation, and encoding reuse)"
)]
pub fn mine_table(table: &Table, config: &MinerConfig) -> Result<MiningOutput, MinerError> {
    crate::miner::Miner::new(config.clone()).mine(table)
}

/// Exact per-item supports of an encoded table.
pub fn item_supports_of(table: &EncodedTable) -> ItemSupports {
    let schema = table.schema();
    let value_counts: Vec<Vec<u64>> = schema
        .iter()
        .map(|(id, _)| {
            let mut counts = vec![0u64; table.cardinality(id) as usize];
            for &code in table.codes(id) {
                counts[code as usize] += 1;
            }
            counts
        })
        .collect();
    ItemSupports::from_value_counts(&value_counts, table.num_rows() as u64)
}

#[cfg(test)]
// The tests exercise the deprecated `mine_table` wrapper on purpose: it must
// keep behaving exactly like the `Miner` facade it delegates to.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::config::{InterestConfig, InterestMode};
    use qar_table::{Schema, Value};

    fn people_table() -> Table {
        let schema = Schema::builder()
            .quantitative("Age")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        t
    }

    fn fig1_config() -> MinerConfig {
        MinerConfig {
            min_support: 0.4,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: PartitionSpec::None,
            partition_strategy: Default::default(),
            taxonomies: Default::default(),
            interest: None,
            max_itemset_size: 0,
            parallelism: None,
            kernel: Default::default(),
        }
    }

    #[test]
    fn figure_1_rules_found_end_to_end() {
        let out = mine_table(&people_table(), &fig1_config()).unwrap();
        let rendered: Vec<String> = (0..out.rules.len()).map(|i| out.format_rule(i)).collect();
        // Figure 1's two sample rules (full resolution: 30..39 appears as
        // the observed 34..38).
        assert!(
            rendered.iter().any(
                |r| r.contains("⟨Age: 34..38⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩")
                    && r.contains("40.0% sup, 100.0% conf")
            ),
            "headline rule missing from {rendered:#?}"
        );
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("⟨NumCars: 0..1⟩ ⇒ ⟨Married: No⟩")
                    && r.contains("40.0% sup, 66.7% conf")),
            "second Figure 1 rule missing from {rendered:#?}"
        );
    }

    #[test]
    fn partitioning_reduces_cardinality() {
        let mut config = fig1_config();
        config.partitioning = PartitionSpec::FixedIntervals(2);
        let out = mine_table(&people_table(), &config).unwrap();
        // Age (5 distinct) partitioned to 2; NumCars (3 distinct) also > 2.
        assert_eq!(out.stats.intervals_per_attribute[0], Some(2));
        assert_eq!(out.stats.intervals_per_attribute[1], None); // categorical
        assert_eq!(out.stats.intervals_per_attribute[2], Some(2));
    }

    #[test]
    fn completeness_level_drives_interval_count() {
        let mut config = fig1_config();
        // K=3, minsup 0.4, n=2 quantitative: 2·2/(0.4·2) = 5 intervals;
        // Age has exactly 5 distinct values -> NOT partitioned (5 <= 5).
        config.partitioning = PartitionSpec::CompletenessLevel(3.0);
        let out = mine_table(&people_table(), &config).unwrap();
        assert_eq!(out.stats.intervals_per_attribute[0], None);
    }

    #[test]
    fn interest_annotations_present_when_configured() {
        let mut config = fig1_config();
        config.interest = Some(InterestConfig {
            level: 1.1,
            mode: InterestMode::SupportOrConfidence,
            prune_candidates: false,
        });
        let out = mine_table(&people_table(), &config).unwrap();
        let verdicts = out.interest.as_ref().expect("interest configured");
        assert_eq!(verdicts.len(), out.rules.len());
        assert_eq!(out.stats.rules_interesting, out.interesting_rules().len());
        assert!(out.stats.rules_interesting <= out.stats.rules_total);
    }

    #[test]
    fn empty_table_rejected() {
        let schema = Schema::builder().quantitative("x").build().unwrap();
        let t = Table::new(schema);
        assert!(matches!(
            mine_table(&t, &fig1_config()),
            Err(MinerError::Schema(_))
        ));
    }

    #[test]
    fn invalid_config_rejected_before_work() {
        let mut config = fig1_config();
        config.min_support = 0.0;
        assert!(matches!(
            mine_table(&people_table(), &config),
            Err(MinerError::Config(_))
        ));
    }

    #[test]
    fn per_attribute_partitioning() {
        let mut config = fig1_config();
        let mut map = std::collections::BTreeMap::new();
        map.insert("Age".to_string(), 2usize);
        config.partitioning = PartitionSpec::PerAttribute(map);
        let out = mine_table(&people_table(), &config).unwrap();
        assert_eq!(out.stats.intervals_per_attribute[0], Some(2));
        assert_eq!(out.stats.intervals_per_attribute[2], None); // unlisted
    }
}
