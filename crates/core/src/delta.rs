//! Structured diffs between mining outputs.
//!
//! Every equivalence claim in this codebase — serial vs. parallel
//! counting, the real pipeline vs. the naive reference, a catalog
//! round-trip vs. the rules it stored — bottoms out in "these two rule
//! sets are the same". [`RuleSetDelta`] and [`ItemsetSetDelta`] make that
//! comparison a first-class value: key-based (so neither side's ordering
//! matters), deterministic in its report ordering (so a failing diff
//! renders identically run to run), and tolerant of a configurable number
//! of ulps on confidence (the one field two correct paths may compute
//! through differently-associated floating-point arithmetic).

use crate::frequent::QuantFrequentItemsets;
use crate::rules::QuantRule;
use qar_itemset::Itemset;
use std::collections::BTreeMap;
use std::fmt;

/// True when `a` and `b` are within `ulps` representable floats of each
/// other (bit-distance on the IEEE-754 number line). `0` demands bit
/// equality; NaNs are never close to anything.
pub fn f64_close_ulps(a: f64, b: f64, ulps: u64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() || b.is_nan() || a.is_sign_positive() != b.is_sign_positive() {
        return false;
    }
    a.to_bits().abs_diff(b.to_bits()) <= ulps
}

/// A support or confidence disagreement on a rule both sides produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleMismatch {
    /// The rule as the left side produced it.
    pub left: QuantRule,
    /// The rule as the right side produced it.
    pub right: QuantRule,
}

/// The difference between two rule sets, keyed by (antecedent,
/// consequent). Empty iff the sets agree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSetDelta {
    /// Rules only the left side produced, in key order.
    pub missing_right: Vec<QuantRule>,
    /// Rules only the right side produced, in key order.
    pub missing_left: Vec<QuantRule>,
    /// Rules both produced with different support or confidence, in key
    /// order.
    pub mismatched: Vec<RuleMismatch>,
}

impl RuleSetDelta {
    /// Diff `left` against `right`. Supports must match exactly;
    /// confidences within `confidence_ulps` ulps.
    pub fn between(left: &[QuantRule], right: &[QuantRule], confidence_ulps: u64) -> Self {
        let key = |r: &QuantRule| (r.antecedent.clone(), r.consequent.clone());
        let left_map: BTreeMap<_, &QuantRule> = left.iter().map(|r| (key(r), r)).collect();
        let right_map: BTreeMap<_, &QuantRule> = right.iter().map(|r| (key(r), r)).collect();
        let mut delta = RuleSetDelta::default();
        for (k, l) in &left_map {
            match right_map.get(k) {
                None => delta.missing_right.push((*l).clone()),
                Some(r) => {
                    let same = l.support == r.support
                        && f64_close_ulps(l.confidence, r.confidence, confidence_ulps);
                    if !same {
                        delta.mismatched.push(RuleMismatch {
                            left: (*l).clone(),
                            right: (*r).clone(),
                        });
                    }
                }
            }
        }
        for (k, r) in &right_map {
            if !left_map.contains_key(k) {
                delta.missing_left.push((*r).clone());
            }
        }
        delta
    }

    /// No differences.
    pub fn is_empty(&self) -> bool {
        self.missing_right.is_empty() && self.missing_left.is_empty() && self.mismatched.is_empty()
    }
}

impl fmt::Display for RuleSetDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "rule sets agree");
        }
        writeln!(
            f,
            "rule sets differ: {} only-left, {} only-right, {} mismatches",
            self.missing_right.len(),
            self.missing_left.len(),
            self.mismatched.len()
        )?;
        let show = |f: &mut fmt::Formatter<'_>, tag: &str, r: &QuantRule| {
            writeln!(
                f,
                "  {tag} {:?} => {:?} (support {}, confidence {})",
                r.antecedent, r.consequent, r.support, r.confidence
            )
        };
        for r in self.missing_right.iter().take(MAX_SHOWN) {
            show(f, "only left: ", r)?;
        }
        for r in self.missing_left.iter().take(MAX_SHOWN) {
            show(f, "only right:", r)?;
        }
        for m in self.mismatched.iter().take(MAX_SHOWN) {
            writeln!(
                f,
                "  mismatch:   {:?} => {:?}: support {} vs {}, confidence {} vs {}",
                m.left.antecedent,
                m.left.consequent,
                m.left.support,
                m.right.support,
                m.left.confidence,
                m.right.confidence
            )?;
        }
        Ok(())
    }
}

/// The difference between two frequent-itemset collections, keyed by
/// itemset. Empty iff the collections agree (same itemsets, same exact
/// supports).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ItemsetSetDelta {
    /// Itemsets only the left side found, with their supports.
    pub missing_right: Vec<(Itemset, u64)>,
    /// Itemsets only the right side found, with their supports.
    pub missing_left: Vec<(Itemset, u64)>,
    /// Itemsets both found with different supports: (itemset, left
    /// support, right support).
    pub mismatched: Vec<(Itemset, u64, u64)>,
}

impl ItemsetSetDelta {
    /// Diff two frequent-itemset collections (exact support equality).
    pub fn between(left: &QuantFrequentItemsets, right: &QuantFrequentItemsets) -> Self {
        let collect = |f: &QuantFrequentItemsets| -> BTreeMap<Itemset, u64> {
            f.iter().map(|(s, c)| (s.clone(), *c)).collect()
        };
        let left_map = collect(left);
        let right_map = collect(right);
        let mut delta = ItemsetSetDelta::default();
        for (s, &lc) in &left_map {
            match right_map.get(s) {
                None => delta.missing_right.push((s.clone(), lc)),
                Some(&rc) if rc != lc => delta.mismatched.push((s.clone(), lc, rc)),
                Some(_) => {}
            }
        }
        for (s, &rc) in &right_map {
            if !left_map.contains_key(s) {
                delta.missing_left.push((s.clone(), rc));
            }
        }
        delta
    }

    /// No differences.
    pub fn is_empty(&self) -> bool {
        self.missing_right.is_empty() && self.missing_left.is_empty() && self.mismatched.is_empty()
    }
}

impl fmt::Display for ItemsetSetDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "itemset sets agree");
        }
        writeln!(
            f,
            "itemset sets differ: {} only-left, {} only-right, {} support mismatches",
            self.missing_right.len(),
            self.missing_left.len(),
            self.mismatched.len()
        )?;
        for (s, c) in self.missing_right.iter().take(MAX_SHOWN) {
            writeln!(f, "  only left:  {s:?} (support {c})")?;
        }
        for (s, c) in self.missing_left.iter().take(MAX_SHOWN) {
            writeln!(f, "  only right: {s:?} (support {c})")?;
        }
        for (s, l, r) in self.mismatched.iter().take(MAX_SHOWN) {
            writeln!(f, "  support:    {s:?} left {l} vs right {r}")?;
        }
        Ok(())
    }
}

/// How many entries of each category a rendered delta shows.
const MAX_SHOWN: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use qar_itemset::Item;

    fn rule(attr: u32, code: u32, support: u64, confidence: f64) -> QuantRule {
        QuantRule {
            antecedent: Itemset::singleton(Item::value(attr, code)),
            consequent: Itemset::singleton(Item::value(attr + 1, 0)),
            support,
            confidence,
        }
    }

    #[test]
    fn equal_sets_have_empty_delta_regardless_of_order() {
        let a = vec![rule(0, 0, 5, 0.5), rule(1, 1, 3, 0.25)];
        let b = vec![a[1].clone(), a[0].clone()];
        let d = RuleSetDelta::between(&a, &b, 0);
        assert!(d.is_empty(), "{d}");
        assert_eq!(d.to_string(), "rule sets agree");
    }

    #[test]
    fn missing_and_extra_and_mismatch_reported_deterministically() {
        let left = vec![rule(0, 0, 5, 0.5), rule(1, 1, 3, 0.25)];
        let right = vec![rule(1, 1, 4, 0.25), rule(2, 2, 9, 0.75)];
        let d = RuleSetDelta::between(&left, &right, 0);
        assert_eq!(d.missing_right.len(), 1);
        assert_eq!(d.missing_left.len(), 1);
        assert_eq!(d.mismatched.len(), 1);
        assert_eq!(d.mismatched[0].left.support, 3);
        assert_eq!(d.mismatched[0].right.support, 4);
        // Deterministic render.
        assert_eq!(
            d.to_string(),
            RuleSetDelta::between(&left, &right, 0).to_string()
        );
    }

    #[test]
    fn confidence_ulp_tolerance() {
        let l = vec![rule(0, 0, 5, 0.1 + 0.2)];
        let r = vec![rule(0, 0, 5, 0.3)];
        assert!(
            !RuleSetDelta::between(&l, &r, 0).is_empty(),
            "bit-exact must fail"
        );
        assert!(
            RuleSetDelta::between(&l, &r, 4).is_empty(),
            "4 ulps must pass"
        );
    }

    #[test]
    fn ulp_closeness_edge_cases() {
        assert!(f64_close_ulps(1.0, 1.0, 0));
        assert!(f64_close_ulps(0.0, -0.0, 0), "signed zeros are equal");
        assert!(!f64_close_ulps(f64::NAN, f64::NAN, u64::MAX));
        assert!(!f64_close_ulps(-1e-300, 1e-300, 1000), "sign straddle");
        let next = f64::from_bits(1.0f64.to_bits() + 1);
        assert!(f64_close_ulps(1.0, next, 1));
        assert!(!f64_close_ulps(1.0, next, 0));
    }

    #[test]
    fn itemset_delta() {
        let mut l = QuantFrequentItemsets::new(10);
        l.push_level(vec![
            (Itemset::singleton(Item::value(0, 0)), 4),
            (Itemset::singleton(Item::value(0, 1)), 6),
        ]);
        let mut r = QuantFrequentItemsets::new(10);
        r.push_level(vec![(Itemset::singleton(Item::value(0, 0)), 5)]);
        let d = ItemsetSetDelta::between(&l, &r);
        assert_eq!(d.missing_right.len(), 1);
        assert!(d.missing_left.is_empty());
        assert_eq!(
            d.mismatched,
            vec![(Itemset::singleton(Item::value(0, 0)), 4, 5)]
        );
        assert!(ItemsetSetDelta::between(&l, &l).is_empty());
    }
}
