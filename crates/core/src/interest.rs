//! The greater-than-expected-value interest measure (Section 4, "Final
//! Interest Measure").
//!
//! * The *expected* support of an itemset `Z` based on a generalization
//!   `Ẑ` is `Π_i (Pr(z_i)/Pr(ẑ_i)) · Pr(Ẑ)`; expected confidence is
//!   analogous over the consequent items.
//! * An itemset `X` is R-interesting w.r.t. `X̂` if its support is at
//!   least `R ×` expected **and** for every frequent specialization `X′`
//!   with `X − X′ ∈ I_R` (one attribute's range shrunk, sharing an
//!   endpoint — the only case where the difference is itself an itemset),
//!   the difference `X − X′` also beats `R ×` its expectation based on
//!   `X̂`. This is what kills the "Decoy" interval of Figure 6.
//! * A rule is R-interesting w.r.t. an ancestor rule if its support
//!   and/or confidence (per [`InterestMode`]) beat `R ×` expectation *and*
//!   its itemset is R-interesting w.r.t. the ancestor's itemset.
//! * A rule is *interesting* in the output if it has no interesting
//!   ancestors, or it is R-interesting w.r.t. every *close* interesting
//!   ancestor (no interesting rule strictly between them).

use crate::config::{InterestConfig, InterestMode};
use crate::frequent::QuantFrequentItemsets;
use crate::rules::QuantRule;
use qar_itemset::{Item, Itemset};
use std::collections::HashMap;

/// Exact fractional support of *any* single item, computed from the
/// per-attribute value counts of pass 1 (prefix sums).
#[derive(Debug, Clone)]
pub struct ItemSupports {
    prefix: Vec<Vec<u64>>,
    num_rows: u64,
}

impl ItemSupports {
    /// Build from per-attribute value counts (`value_counts[attr][code]`).
    pub fn from_value_counts(value_counts: &[Vec<u64>], num_rows: u64) -> Self {
        let prefix = value_counts
            .iter()
            .map(|counts| {
                let mut p = Vec::with_capacity(counts.len() + 1);
                p.push(0);
                for &c in counts {
                    p.push(p.last().unwrap() + c);
                }
                p
            })
            .collect();
        ItemSupports { prefix, num_rows }
    }

    /// Fractional support of `item`.
    pub fn fraction(&self, item: Item) -> f64 {
        let p = &self.prefix[item.attr as usize];
        let count = p[item.hi as usize + 1] - p[item.lo as usize];
        count as f64 / self.num_rows as f64
    }
}

/// `E_{Pr(Ẑ)}[Pr(Z)]`: expected fractional support of `Z` based on its
/// generalization `Ẑ` with fractional support `z_hat_frac`.
pub fn expected_fraction(
    z: &Itemset,
    z_hat: &Itemset,
    z_hat_frac: f64,
    items: &ItemSupports,
) -> f64 {
    debug_assert!(z_hat.generalizes(z));
    let mut e = z_hat_frac;
    for (zi, zhi) in z.items().iter().zip(z_hat.items()) {
        e *= items.fraction(*zi) / items.fraction(*zhi);
    }
    e
}

/// The contiguous difference `X − X′`, when it is an itemset: `X′` must
/// specialize exactly one attribute's range and share an endpoint with it.
pub fn contiguous_difference(x: &Itemset, x_spec: &Itemset) -> Option<Itemset> {
    debug_assert!(x.strictly_generalizes(x_spec));
    let mut replaced: Option<Item> = None;
    for (a, b) in x.items().iter().zip(x_spec.items()) {
        if a == b {
            continue;
        }
        if replaced.is_some() {
            return None; // two attributes differ: L-shaped difference
        }
        let diff = if a.lo == b.lo && b.hi < a.hi {
            Item::range(a.attr, b.hi + 1, a.hi)
        } else if a.hi == b.hi && b.lo > a.lo {
            Item::range(a.attr, a.lo, b.lo - 1)
        } else {
            return None; // interior specialization: two disjoint strips
        };
        replaced = Some(diff);
    }
    let diff_item = replaced?;
    let items: Vec<Item> = x
        .items()
        .iter()
        .map(|&i| {
            if i.attr == diff_item.attr {
                diff_item
            } else {
                i
            }
        })
        .collect();
    Some(Itemset::new(items))
}

/// Is itemset `x` (fractional support `x_frac`) R-interesting w.r.t.
/// `x_hat` (fractional support `x_hat_frac`)? `specializations` are the
/// frequent itemsets over the same attributes that `x` strictly
/// generalizes, with their fractional supports.
#[allow(clippy::too_many_arguments)]
pub fn itemset_r_interesting(
    x: &Itemset,
    x_frac: f64,
    x_hat: &Itemset,
    x_hat_frac: f64,
    specializations: &[(&Itemset, f64)],
    items: &ItemSupports,
    level: f64,
) -> bool {
    if x_frac < level * expected_fraction(x, x_hat, x_hat_frac, items) {
        return false;
    }
    for (spec, spec_frac) in specializations {
        if let Some(diff) = contiguous_difference(x, spec) {
            // sup(X − X′) = sup(X) − sup(X′): the difference rectangle is
            // exactly the records in X but not X′.
            let diff_frac = x_frac - spec_frac;
            if diff_frac < level * expected_fraction(&diff, x_hat, x_hat_frac, items) {
                return false;
            }
        }
    }
    true
}

/// Interest verdict for one rule, aligned with the input rule order.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleInterest {
    /// Survives the interest filter.
    pub interesting: bool,
    /// Whether the rule had any generalizations among the mined rules at
    /// all (rules without ancestors are interesting by definition).
    pub has_ancestors: bool,
}

/// Annotate every rule with its interest verdict.
pub fn annotate_interest(
    rules: &[QuantRule],
    frequent: &QuantFrequentItemsets,
    items: &ItemSupports,
    config: &InterestConfig,
) -> Vec<RuleInterest> {
    let num_rows = frequent.num_rows as f64;

    // Frequent itemsets grouped by attribute set, for specialization
    // lookups.
    let mut itemset_groups: HashMap<Vec<u32>, Vec<(&Itemset, f64)>> = HashMap::new();
    for (itemset, count) in frequent.iter() {
        itemset_groups
            .entry(itemset.attributes())
            .or_default()
            .push((itemset, *count as f64 / num_rows));
    }

    // Rules grouped by (antecedent attrs, consequent attrs).
    let mut rule_groups: HashMap<(Vec<u32>, Vec<u32>), Vec<usize>> = HashMap::new();
    for (i, rule) in rules.iter().enumerate() {
        rule_groups
            .entry((rule.antecedent.attributes(), rule.consequent.attributes()))
            .or_default()
            .push(i);
    }

    let mut verdicts = vec![
        RuleInterest {
            interesting: true,
            has_ancestors: false,
        };
        rules.len()
    ];

    for indices in rule_groups.values() {
        // Most general first: strict generalization implies strictly larger
        // total width, so width-descending is a topological order.
        let mut order: Vec<usize> = indices.clone();
        let width = |i: usize| -> u64 {
            let r = &rules[i];
            r.antecedent
                .items()
                .iter()
                .chain(r.consequent.items())
                .map(|it| it.width() as u64)
                .sum()
        };
        order.sort_by_key(|&i| std::cmp::Reverse(width(i)));

        for (pos, &ri) in order.iter().enumerate() {
            let rule = &rules[ri];
            // Ancestors can only appear earlier in the order.
            let mut interesting_ancestors: Vec<usize> = Vec::new();
            let mut has_any = false;
            for &aj in &order[..pos] {
                if rules[aj].is_generalization_of(rule) {
                    has_any = true;
                    if verdicts[aj].interesting {
                        interesting_ancestors.push(aj);
                    }
                }
            }
            verdicts[ri].has_ancestors = has_any;
            // Close = minimal under generalization among the interesting
            // ancestors.
            let close: Vec<usize> = interesting_ancestors
                .iter()
                .copied()
                .filter(|&a| {
                    !interesting_ancestors
                        .iter()
                        .any(|&b| b != a && rules[a].is_generalization_of(&rules[b]))
                })
                .collect();
            let interesting = close.iter().all(|&a| {
                rule_r_interesting(rule, &rules[a], frequent, items, &itemset_groups, config)
            });
            verdicts[ri].interesting = interesting;
        }
    }
    verdicts
}

fn rule_r_interesting(
    rule: &QuantRule,
    ancestor: &QuantRule,
    frequent: &QuantFrequentItemsets,
    items: &ItemSupports,
    itemset_groups: &HashMap<Vec<u32>, Vec<(&Itemset, f64)>>,
    config: &InterestConfig,
) -> bool {
    let n = frequent.num_rows as f64;
    let rule_itemset = rule.itemset();
    let anc_itemset = ancestor.itemset();
    let rule_frac = rule.support as f64 / n;
    let anc_frac = ancestor.support as f64 / n;

    let expected_sup = expected_fraction(&rule_itemset, &anc_itemset, anc_frac, items);
    let sup_ok = rule_frac >= config.level * expected_sup;

    let mut expected_conf = ancestor.confidence;
    for (y, y_hat) in rule
        .consequent
        .items()
        .iter()
        .zip(ancestor.consequent.items())
    {
        expected_conf *= items.fraction(*y) / items.fraction(*y_hat);
    }
    let conf_ok = rule.confidence >= config.level * expected_conf;

    let deviation_ok = match config.mode {
        InterestMode::SupportAndConfidence => sup_ok && conf_ok,
        InterestMode::SupportOrConfidence => sup_ok || conf_ok,
    };
    if !deviation_ok {
        return false;
    }

    // Final measure: the combined itemset must be R-interesting too.
    let empty = Vec::new();
    let group = itemset_groups
        .get(&rule_itemset.attributes())
        .unwrap_or(&empty);
    let specializations: Vec<(&Itemset, f64)> = group
        .iter()
        .filter(|(s, _)| rule_itemset.strictly_generalizes(s))
        .map(|&(s, f)| (s, f))
        .collect();
    itemset_r_interesting(
        &rule_itemset,
        rule_frac,
        &anc_itemset,
        anc_frac,
        &specializations,
        items,
        config.level,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lemma 5 is worded with a strict inequality — "if the support of
    /// `x` is greater than `1/R`, the itemset cannot be R-interesting" —
    /// so an item whose support is *exactly* `1/R` must survive the
    /// prune, including when neither `1/R` nor `count/rows` is exactly
    /// representable (count·R == rows in the reals).
    #[test]
    fn lemma5_prune_keeps_support_exactly_one_over_r() {
        use crate::candidate::interest_prune_level1;

        // rows = 3·count with R = 3: count/rows = 1/3 exactly equals 1/R
        // in the reals, but both sides round in f64. Scan a spread of
        // magnitudes including counts where `count/rows` rounds *above*
        // `1/3` (the two-division form misclassifies some of these).
        for count in [1u64, 2, 7, 49_999_999, 3_002_399_751_580_330] {
            let rows = 3 * count;
            let exact = Itemset::singleton(Item::value(0, 0));
            let above = Itemset::singleton(Item::value(0, 1));
            let store = QuantFrequentItemsets::new(rows);
            let level1 = vec![(exact.clone(), count), (above.clone(), count + 1)];
            let kept = interest_prune_level1(level1, &store, 3.0, &|_| true);
            let kept: Vec<&Itemset> = kept.iter().map(|(s, _)| s).collect();
            assert!(
                kept.contains(&&exact),
                "support exactly 1/R must be kept (count {count})"
            );
            assert!(
                !kept.contains(&&above),
                "support just above 1/R must be pruned (count {count})"
            );
        }

        // Non-integer R at the boundary: R = 2.5, count·R == rows exactly.
        let store = QuantFrequentItemsets::new(5);
        let exact = Itemset::singleton(Item::value(0, 0));
        let kept = interest_prune_level1(vec![(exact.clone(), 2)], &store, 2.5, &|_| true);
        assert_eq!(kept.len(), 1, "2/5 == 1/2.5 must be kept");

        // Categorical items are exempt regardless of support.
        let store = QuantFrequentItemsets::new(4);
        let cat = Itemset::singleton(Item::value(1, 0));
        let kept = interest_prune_level1(vec![(cat.clone(), 4)], &store, 2.0, &|a| a != 1);
        assert_eq!(kept.len(), 1, "categorical item must be exempt");
    }

    fn items_xy() -> ItemSupports {
        // Attribute 0 ("x"): ten values, 1900 records each (N = 19000).
        // Attribute 1 ("y"): code 1 = "y" with 2100 records.
        ItemSupports::from_value_counts(&[vec![1900; 10], vec![16900, 2100]], 19000)
    }

    /// The Figure 6 world: joint counts of (x = v ∧ y) are
    /// [100,100,100,200,1100,100,100,100,100,100] for v = 1..10
    /// (codes 0..9) — "Interesting" is x=5 (code 4), "Decoy" is x∈[3..5]
    /// (codes 2..4), "Boring" is x∈[3..4] (codes 2..3).
    fn fig6_frequent() -> QuantFrequentItemsets {
        let mut f = QuantFrequentItemsets::new(19000);
        let y = Item::value(1, 1);
        let x_all = Item::range(0, 0, 9);
        let x_decoy = Item::range(0, 2, 4);
        let x_int = Item::value(0, 4);
        let x_boring = Item::range(0, 2, 3);
        f.push_level(vec![
            (Itemset::singleton(x_all), 19000),
            (Itemset::singleton(x_decoy), 5700),
            (Itemset::singleton(x_int), 1900),
            (Itemset::singleton(x_boring), 3800),
            (Itemset::singleton(y), 2100),
        ]);
        f.push_level(vec![
            (Itemset::new(vec![x_all, y]), 2100),
            (Itemset::new(vec![x_decoy, y]), 1400),
            (Itemset::new(vec![x_int, y]), 1100),
            (Itemset::new(vec![x_boring, y]), 300),
        ]);
        f
    }

    fn fig6_rules(f: &QuantFrequentItemsets) -> Vec<QuantRule> {
        let y = Itemset::singleton(Item::value(1, 1));
        [(0u32, 9u32), (2, 4), (4, 4), (2, 3)]
            .iter()
            .map(|&(lo, hi)| {
                let ant = Itemset::singleton(Item::range(0, lo, hi));
                let sup = f.support_of(&ant.union_disjoint(&y)).expect("frequent");
                let ant_sup = f.support_of(&ant).unwrap();
                QuantRule {
                    antecedent: ant,
                    consequent: y.clone(),
                    support: sup,
                    confidence: sup as f64 / ant_sup as f64,
                }
            })
            .collect()
    }

    #[test]
    fn expected_fraction_formula() {
        let items = items_xy();
        let y = Item::value(1, 1);
        let z = Itemset::new(vec![Item::range(0, 2, 4), y]);
        let z_hat = Itemset::new(vec![Item::range(0, 0, 9), y]);
        // E = (0.3 / 1.0) * (Pr(y)/Pr(y)) * Pr(Ẑ) with Pr(Ẑ) = 2100/19000.
        let e = expected_fraction(&z, &z_hat, 2100.0 / 19000.0, &items);
        assert!((e - 0.3 * 2100.0 / 19000.0).abs() < 1e-12);
    }

    #[test]
    fn contiguous_difference_cases() {
        let y = Item::value(1, 1);
        let x = Itemset::new(vec![Item::range(0, 2, 4), y]);
        // Shares the upper endpoint: difference is the lower strip.
        let upper = Itemset::new(vec![Item::value(0, 4), y]);
        assert_eq!(
            contiguous_difference(&x, &upper),
            Some(Itemset::new(vec![Item::range(0, 2, 3), y]))
        );
        // Shares the lower endpoint.
        let lower = Itemset::new(vec![Item::range(0, 2, 3), y]);
        assert_eq!(
            contiguous_difference(&x, &lower),
            Some(Itemset::new(vec![Item::value(0, 4), y]))
        );
        // Interior: no contiguous difference.
        let interior = Itemset::new(vec![Item::value(0, 3), y]);
        assert_eq!(contiguous_difference(&x, &interior), None);
        // Two attributes shrunk: no contiguous difference.
        let wide = Itemset::new(vec![Item::range(0, 2, 4), Item::range(2, 0, 5)]);
        let both = Itemset::new(vec![Item::range(0, 2, 3), Item::range(2, 0, 4)]);
        assert_eq!(contiguous_difference(&wide, &both), None);
    }

    #[test]
    fn figure_6_decoy_killed_by_specialization() {
        // Plain support condition at R = 2: Decoy passes
        // (0.0737 >= 2 × 0.0332), but the specialization ⟨x:5⟩ leaves the
        // difference ⟨x:3..4⟩ with support 300/19000 = 0.0158 against an
        // expectation of 0.0221 → R-interesting fails.
        let f = fig6_frequent();
        let items = items_xy();
        let y = Item::value(1, 1);
        let decoy = Itemset::new(vec![Item::range(0, 2, 4), y]);
        let x_hat = Itemset::new(vec![Item::range(0, 0, 9), y]);
        let spec = Itemset::new(vec![Item::value(0, 4), y]);
        let spec_frac = f.fraction_of(&spec).unwrap();
        let decoy_frac = f.fraction_of(&decoy).unwrap();
        let hat_frac = f.fraction_of(&x_hat).unwrap();

        // Without the specialization check it would pass:
        assert!(decoy_frac >= 2.0 * expected_fraction(&decoy, &x_hat, hat_frac, &items));
        // With it, it fails:
        assert!(!itemset_r_interesting(
            &decoy,
            decoy_frac,
            &x_hat,
            hat_frac,
            &[(&spec, spec_frac)],
            &items,
            2.0,
        ));
    }

    #[test]
    fn figure_6_interesting_interval_survives() {
        let f = fig6_frequent();
        let items = items_xy();
        let y = Item::value(1, 1);
        let int = Itemset::new(vec![Item::value(0, 4), y]);
        let x_hat = Itemset::new(vec![Item::range(0, 0, 9), y]);
        assert!(itemset_r_interesting(
            &int,
            f.fraction_of(&int).unwrap(),
            &x_hat,
            f.fraction_of(&x_hat).unwrap(),
            &[],
            &items,
            2.0,
        ));
    }

    #[test]
    fn figure_6_boring_fails_plain_condition() {
        let f = fig6_frequent();
        let items = items_xy();
        let y = Item::value(1, 1);
        let boring = Itemset::new(vec![Item::range(0, 2, 3), y]);
        let x_hat = Itemset::new(vec![Item::range(0, 0, 9), y]);
        assert!(!itemset_r_interesting(
            &boring,
            f.fraction_of(&boring).unwrap(),
            &x_hat,
            f.fraction_of(&x_hat).unwrap(),
            &[],
            &items,
            2.0,
        ));
    }

    #[test]
    fn end_to_end_rule_annotation_matches_figure_6() {
        let f = fig6_frequent();
        let items = items_xy();
        let rules = fig6_rules(&f);
        let verdicts = annotate_interest(
            &rules,
            &f,
            &items,
            &InterestConfig {
                level: 2.0,
                mode: InterestMode::SupportOrConfidence,
                prune_candidates: false,
            },
        );
        // rules[0] = whole (no ancestors -> interesting),
        // rules[1] = decoy (killed by specialization),
        // rules[2] = interesting x=5,
        // rules[3] = boring.
        assert!(verdicts[0].interesting && !verdicts[0].has_ancestors);
        assert!(!verdicts[1].interesting && verdicts[1].has_ancestors);
        assert!(verdicts[2].interesting && verdicts[2].has_ancestors);
        assert!(!verdicts[3].interesting);
    }

    #[test]
    fn interest_level_monotone() {
        // Raising R can only shrink the interesting set.
        let f = fig6_frequent();
        let items = items_xy();
        let rules = fig6_rules(&f);
        let mut last = usize::MAX;
        for level in [1.1, 1.5, 2.0, 3.0] {
            let verdicts = annotate_interest(
                &rules,
                &f,
                &items,
                &InterestConfig {
                    level,
                    mode: InterestMode::SupportOrConfidence,
                    prune_candidates: false,
                },
            );
            let count = verdicts.iter().filter(|v| v.interesting).count();
            assert!(count <= last, "interest level {level}: {count} > {last}");
            last = count;
        }
    }

    #[test]
    fn and_mode_is_stricter_than_or_mode() {
        let f = fig6_frequent();
        let items = items_xy();
        let rules = fig6_rules(&f);
        let or_count = annotate_interest(
            &rules,
            &f,
            &items,
            &InterestConfig {
                level: 1.5,
                mode: InterestMode::SupportOrConfidence,
                prune_candidates: false,
            },
        )
        .iter()
        .filter(|v| v.interesting)
        .count();
        let and_count = annotate_interest(
            &rules,
            &f,
            &items,
            &InterestConfig {
                level: 1.5,
                mode: InterestMode::SupportAndConfidence,
                prune_candidates: false,
            },
        )
        .iter()
        .filter(|v| v.interesting)
        .count();
        assert!(and_count <= or_count);
    }

    #[test]
    fn item_supports_fractions() {
        let items = items_xy();
        assert!((items.fraction(Item::range(0, 0, 9)) - 1.0).abs() < 1e-12);
        assert!((items.fraction(Item::value(0, 4)) - 0.1).abs() < 1e-12);
        assert!((items.fraction(Item::range(0, 2, 4)) - 0.3).abs() < 1e-12);
        assert!((items.fraction(Item::value(1, 1)) - 2100.0 / 19000.0).abs() < 1e-12);
    }
}
