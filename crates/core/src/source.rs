//! Count-distribution mining over an abstract counting backend.
//!
//! The level-wise loop of [`crate::mine`] needs only two things from the
//! data: the pass-1 per-attribute value histograms and, for every later
//! pass, the raw support count of each candidate itemset. Both are sums
//! over rows, so counts taken over *disjoint row partitions* merge by
//! element-wise `u64` addition into exactly the whole-table counts.
//!
//! [`CountSource`] abstracts that contract. [`mine_source`] then runs the
//! complete Steps 3–5 pipeline — candidate generation, rule generation and
//! the interest measure all happen on the caller's side, only counting is
//! delegated — which is precisely the *count distribution* scheme for
//! distributed Apriori: every participant counts its partition, the
//! coordinator merges and decides. Because candidate generation is global
//! and counts are exact integers, the result is bit-identical to the
//! serial miner, whatever the partitioning.
//!
//! Two local sources live here:
//!
//! * [`InMemorySource`] — counts an [`EncodedTable`] directly (the
//!   reference implementation the others are tested against),
//! * [`ChunkedSource`] — counts a [`qar_table::ChunkStore`] one spilled
//!   chunk at a time, so tables larger than memory mine out-of-core.
//!
//! The TCP-backed source of the `qar-dist` crate implements the same
//! trait over a pool of worker processes.

use std::collections::HashMap;
use std::time::Instant;

use crate::candidate::{generate_candidates, interest_prune_level1};
use crate::config::{InterestMode, MinerConfig, MinerError};
use crate::counts::{CapturedCounts, SupportCounts};
use crate::frequent::{attribute_value_counts, frequent_items_from_counts, QuantFrequentItemsets};
use crate::interest::{annotate_interest, ItemSupports};
use crate::mine::{pass_finished_event, MineStats, RunCtx};
use crate::pipeline::{MiningOutput, MiningStats};
use crate::rules::generate_rules;
use crate::supercand::{count_candidates_opts, PassStats, ScanOptions};
use qar_itemset::Itemset;
use qar_table::{AttributeKind, ChunkStore, EncodedTable};
use qar_trace::{event::micros, CancelToken, ProgressSink, TraceEvent};

/// Why a [`CountSource`] call did not produce counts.
#[derive(Debug)]
pub enum CountError {
    /// The run's cancellation token tripped mid-count; the driver turns
    /// this into [`MinerError::Cancelled`] with the completed passes'
    /// statistics.
    Cancelled,
    /// The source failed for real (I/O, a lost worker, a corrupt chunk).
    Failed(MinerError),
}

impl From<MinerError> for CountError {
    fn from(e: MinerError) -> Self {
        CountError::Failed(e)
    }
}

impl From<qar_table::TableError> for CountError {
    fn from(e: qar_table::TableError) -> Self {
        CountError::Failed(MinerError::from(e))
    }
}

impl From<crate::supercand::ScanCancelled> for CountError {
    fn from(_: crate::supercand::ScanCancelled) -> Self {
        CountError::Cancelled
    }
}

/// A counting backend for the level-wise search.
///
/// Implementations must satisfy the count-distribution contract: the
/// returned vectors are the *exact whole-table* tallies (raw, unfiltered
/// by support thresholds), as if computed by a single serial scan. Any
/// partitioning — across chunks, processes, or machines — must be over
/// disjoint row subsets whose per-partition counts are merged by `u64`
/// addition.
pub trait CountSource {
    /// The schema and encoders of the table being mined. A decode-only
    /// header table ([`EncodedTable::header_only`]) is sufficient — the
    /// driver never scans it.
    fn meta(&self) -> &EncodedTable;

    /// Total number of rows across all partitions.
    fn num_rows(&self) -> u64;

    /// Pass 1: the per-attribute value histograms (`counts[attr][code]`),
    /// merged across partitions.
    fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError>;

    /// Pass `k ≥ 2`: the raw support count of each candidate, aligned
    /// with `candidates`, merged across partitions.
    fn count(&mut self, pass: usize, candidates: &[Itemset]) -> Result<Vec<u64>, CountError>;
}

/// Mine all frequent itemsets using `source` for every counting scan.
///
/// Mirrors [`crate::mine::mine_encoded_ctx`] event-for-event and
/// stat-for-stat, with one structural difference: pass 2 counts an
/// explicit candidate list (the cross product of frequent items over
/// distinct attribute pairs — the same set the serial implicit pair pass
/// counts, so `candidates_per_pass` agrees) because implicit pair
/// counting cannot be delegated through the count-vector interface.
///
/// Also returns the merged pass-1 value counts (the driver reuses them
/// for [`ItemSupports`] instead of re-scanning).
pub(crate) fn mine_with_source_ctx(
    source: &mut dyn CountSource,
    config: &MinerConfig,
    ctx: RunCtx<'_>,
) -> Result<(QuantFrequentItemsets, MineStats, Vec<Vec<u64>>), MinerError> {
    config.validate()?;
    let num_rows = source.num_rows();
    if num_rows == 0 {
        return Err(MinerError::Schema(qar_table::TableError::EmptyTable));
    }
    let min_count = ((config.min_support * num_rows as f64).ceil() as u64).max(1);
    let max_count = (config.max_support * num_rows as f64).floor() as u64;

    let mut frequent = QuantFrequentItemsets::new(num_rows);
    let mut stats = MineStats {
        parallelism: config.effective_parallelism(),
        ..MineStats::default()
    };

    let run_started = Instant::now();
    ctx.emit(|| TraceEvent::RunStarted {
        rows: num_rows,
        attributes: source.meta().schema().len(),
        min_count,
        max_count,
        parallelism: stats.parallelism,
    });
    if ctx.is_cancelled() {
        return Err(ctx.cancelled(1, stats));
    }

    // Pass 1: frequent items from the merged histograms.
    ctx.emit(|| TraceEvent::PassStarted {
        pass: 1,
        candidates: 0,
    });
    let pass1_started = Instant::now();
    let value_counts = match source.value_counts() {
        Ok(v) => v,
        Err(CountError::Cancelled) => return Err(ctx.cancelled(1, stats)),
        Err(CountError::Failed(e)) => return Err(e),
    };
    let items = frequent_items_from_counts(source.meta(), value_counts, min_count, max_count);
    stats.pass1_scan_time = pass1_started.elapsed();
    let mut level1: Vec<(Itemset, u64)> = items
        .items
        .iter()
        .map(|&(item, count)| (Itemset::singleton(item), count))
        .collect();
    let value_counts = items.value_counts;

    // Lemma 5 interest prune — identical to the serial path (it depends
    // only on level-1 fractions and the schema, both already global).
    if let Some(interest) = &config.interest {
        if interest.prune_candidates && interest.mode == InterestMode::SupportAndConfidence {
            let before = level1.len();
            let mut probe = QuantFrequentItemsets::new(num_rows);
            probe.push_level(level1.clone());
            let schema = source.meta().schema();
            let is_quant = |attr: u32| {
                schema.attributes()[attr as usize].kind() == AttributeKind::Quantitative
            };
            level1 = interest_prune_level1(level1, &probe, interest.level, &is_quant);
            stats.interest_pruned_items = before - level1.len();
        }
    }
    ctx.emit(|| TraceEvent::PassFinished {
        pass: 1,
        candidates: 0,
        frequent: level1.len(),
        pruned: stats.interest_pruned_items,
        super_candidates: 0,
        array_backed: 0,
        rtree_backed: 0,
        hash_tree_nodes: 0,
        counter_bytes: 0,
        scan_us: micros(stats.pass1_scan_time),
        merge_us: 0,
        shard_scan_us: Vec::new(),
        pooled: false,
        memoized: false,
        kernel: "direct".to_string(),
        distinct_tuples: 0,
        memo_hits: 0,
    });
    if level1.is_empty() {
        ctx.emit(|| TraceEvent::RunFinished {
            passes: 1,
            frequent_total: 0,
            elapsed_us: micros(run_started.elapsed()),
        });
        return Ok((frequent, stats, value_counts));
    }
    frequent.push_level(level1);

    // Passes k >= 2: global candidate generation, delegated counting.
    loop {
        let k = frequent.levels.len() + 1;
        if config.max_itemset_size != 0 && k > config.max_itemset_size {
            break;
        }
        if ctx.is_cancelled() {
            return Err(ctx.cancelled(k, stats));
        }
        let prev = frequent.levels.last().expect("level 1 pushed");
        let candidates = generate_candidates(prev);
        if candidates.is_empty() {
            if k == 2 {
                // The serial implicit pair pass records pass 2 (with zero
                // candidates) even when no attribute pair exists; mirror
                // that so stats and traces stay aligned.
                stats.candidates_per_pass.push(0);
                ctx.emit(|| TraceEvent::PassStarted {
                    pass: k,
                    candidates: 0,
                });
                let pass = PassStats::default();
                ctx.emit(|| pass_finished_event(k, 0, 0, &pass));
                stats.pass_stats.push(pass);
            }
            break;
        }
        stats.candidates_per_pass.push(candidates.len());
        ctx.emit(|| TraceEvent::PassStarted {
            pass: k,
            candidates: candidates.len(),
        });
        let counts = match source.count(k, &candidates) {
            Ok(c) => c,
            Err(CountError::Cancelled) => return Err(ctx.cancelled(k, stats)),
            Err(CountError::Failed(e)) => return Err(e),
        };
        if counts.len() != candidates.len() {
            return Err(MinerError::Distributed(format!(
                "pass {k}: source returned {} counts for {} candidates",
                counts.len(),
                candidates.len()
            )));
        }
        let level: Vec<(Itemset, u64)> = candidates
            .into_iter()
            .zip(counts)
            .filter(|(_, c)| *c >= min_count)
            .collect();
        let pass = PassStats::default();
        ctx.emit(|| pass_finished_event(k, stats.candidates_per_pass[k - 2], level.len(), &pass));
        stats.pass_stats.push(pass);
        if level.is_empty() {
            break;
        }
        frequent.push_level(level);
    }
    ctx.emit(|| TraceEvent::RunFinished {
        passes: 1 + stats.pass_stats.len(),
        frequent_total: frequent.total(),
        elapsed_us: micros(run_started.elapsed()),
    });
    Ok((frequent, stats, value_counts))
}

/// Run the complete Steps 3–5 pipeline (frequent itemsets, rules,
/// interest) over an abstract counting backend.
///
/// The result is bit-identical to [`crate::Miner::mine_encoded`] on the
/// corresponding in-memory table: same frequent itemsets and supports,
/// same rules, same interest verdicts. Statistics differ only in their
/// volatile fields (timings, kernels) — [`MiningStats::normalized`]
/// projections agree exactly.
pub fn mine_source(
    source: &mut dyn CountSource,
    config: &MinerConfig,
    sink: Option<&dyn ProgressSink>,
    cancel: Option<&CancelToken>,
) -> Result<MiningOutput, MinerError> {
    config.validate()?;
    let started = Instant::now();
    let ctx = RunCtx {
        sink,
        cancel,
        pool: None,
    };

    let mining_started = Instant::now();
    let (frequent, mine_stats, value_counts) = mine_with_source_ctx(source, config, ctx)?;
    let elapsed_mining = mining_started.elapsed();

    // Step 4: rules.
    let rules = generate_rules(&frequent, config.min_confidence);

    // Step 5: interest — from the merged pass-1 histograms, which equal
    // the serial path's whole-table scan.
    let item_supports = ItemSupports::from_value_counts(&value_counts, frequent.num_rows);
    let interest = config
        .interest
        .as_ref()
        .map(|ic| annotate_interest(&rules, &frequent, &item_supports, ic));

    let rules_total = rules.len();
    let rules_interesting = match &interest {
        Some(v) => v.iter().filter(|x| x.interesting).count(),
        None => rules_total,
    };
    Ok(MiningOutput {
        encoded: source.meta().clone(),
        frequent,
        rules,
        interest,
        item_supports,
        stats: MiningStats {
            intervals_per_attribute: Vec::new(),
            mine: mine_stats,
            rules_total,
            rules_interesting,
            elapsed: started.elapsed(),
            elapsed_mining,
            encoding_reused: false,
        },
    })
}

/// A pass-through [`CountSource`] that records everything the driver
/// asked of the inner source: the pass-1 histograms and every
/// `(pass, candidate, raw count)` triple. The recording is exactly the
/// [`CapturedCounts`] a catalog persists for later incremental updates.
pub struct CaptureSource<'s> {
    inner: &'s mut dyn CountSource,
    value_counts: Option<Vec<Vec<u64>>>,
    passes: Vec<(u32, Vec<(Itemset, u64)>)>,
}

impl<'s> CaptureSource<'s> {
    /// Wrap `inner`, recording every count it serves.
    pub fn new(inner: &'s mut dyn CountSource) -> Self {
        CaptureSource {
            inner,
            value_counts: None,
            passes: Vec::new(),
        }
    }

    /// The recording (valid once a mine over this source has finished).
    pub fn into_captured(self) -> CapturedCounts {
        CapturedCounts {
            value_counts: self.value_counts.unwrap_or_default(),
            passes: self.passes,
        }
    }
}

impl CountSource for CaptureSource<'_> {
    fn meta(&self) -> &EncodedTable {
        self.inner.meta()
    }

    fn num_rows(&self) -> u64 {
        self.inner.num_rows()
    }

    fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError> {
        let counts = self.inner.value_counts()?;
        self.value_counts = Some(counts.clone());
        Ok(counts)
    }

    fn count(&mut self, pass: usize, candidates: &[Itemset]) -> Result<Vec<u64>, CountError> {
        let counts = self.inner.count(pass, candidates)?;
        if counts.len() == candidates.len() {
            self.passes.push((
                pass as u32,
                candidates
                    .iter()
                    .cloned()
                    .zip(counts.iter().copied())
                    .collect(),
            ));
        }
        Ok(counts)
    }
}

/// [`mine_source`] with count capture: returns the finished output
/// together with the raw tallies the run accumulated, ready to persist
/// as a catalog `COUNTS` section.
pub fn mine_source_captured(
    source: &mut dyn CountSource,
    config: &MinerConfig,
    sink: Option<&dyn ProgressSink>,
    cancel: Option<&CancelToken>,
) -> Result<(MiningOutput, CapturedCounts), MinerError> {
    let mut capture = CaptureSource::new(source);
    let output = mine_source(&mut capture, config, sink, cancel)?;
    Ok((output, capture.into_captured()))
}

/// The incremental-update [`CountSource`]: persisted base counts plus a
/// delta-only source, merged element-wise.
///
/// `value_counts` is base histograms + delta histograms. `count` serves
/// each candidate as its base tally (looked up in the persisted pass
/// records) plus the delta source's tally — so the only rows ever
/// scanned are the delta's. By the count-distribution invariant the sums
/// equal a full base+delta scan exactly.
///
/// A candidate the base run never counted (a support crossed a threshold
/// as rows arrived, changing a frequent level and hence the candidate
/// sets derived from it) cannot be served incrementally; the lookup
/// fails with [`MinerError::Update`] and the caller falls back to a full
/// re-mine.
pub struct MergeSource<'a, S: CountSource> {
    base: &'a SupportCounts,
    delta: Option<S>,
    meta: EncodedTable,
    pass_maps: HashMap<u32, HashMap<Itemset, u64>>,
}

impl<'a, S: CountSource> MergeSource<'a, S> {
    /// A source over `base` counts plus `delta` (pass `None` for an
    /// empty delta — no scan at all then). `meta` must be a decode-only
    /// header whose `num_rows` is the combined base+delta total and whose
    /// schema/encoders are the ones `base.fingerprint` pins.
    pub fn new(base: &'a SupportCounts, delta: Option<S>, meta: EncodedTable) -> Self {
        MergeSource {
            base,
            delta,
            meta,
            pass_maps: HashMap::new(),
        }
    }

    /// Hand back the delta source (e.g. so a distributed cluster behind
    /// it can be shut down).
    pub fn into_delta(self) -> Option<S> {
        self.delta
    }

    fn base_counts(&mut self, pass: usize, candidates: &[Itemset]) -> Result<Vec<u64>, CountError> {
        let diverged = || {
            CountError::Failed(MinerError::Update(format!(
                "pass {pass}: candidate set diverged from the base run \
                 (a support crossed a threshold); full re-mine required"
            )))
        };
        let map = match self.pass_maps.entry(pass as u32) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let recorded = self
                    .base
                    .captured
                    .passes
                    .iter()
                    .find(|(p, _)| *p == pass as u32)
                    .ok_or_else(diverged)?;
                e.insert(recorded.1.iter().cloned().collect())
            }
        };
        candidates
            .iter()
            .map(|c| map.get(c).copied().ok_or_else(diverged))
            .collect()
    }
}

impl<S: CountSource> CountSource for MergeSource<'_, S> {
    fn meta(&self) -> &EncodedTable {
        &self.meta
    }

    fn num_rows(&self) -> u64 {
        self.base.num_rows + self.delta.as_ref().map_or(0, |d| d.num_rows())
    }

    fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError> {
        let mut merged = self.base.captured.value_counts.clone();
        if let Some(delta) = &mut self.delta {
            let add = delta.value_counts()?;
            if add.len() != merged.len() || add.iter().zip(&merged).any(|(a, m)| a.len() != m.len())
            {
                return Err(CountError::Failed(MinerError::Update(
                    "delta histograms do not align with the persisted base counts".to_string(),
                )));
            }
            for (acc, a) in merged.iter_mut().zip(add) {
                for (x, y) in acc.iter_mut().zip(a) {
                    *x += y;
                }
            }
        }
        Ok(merged)
    }

    fn count(&mut self, pass: usize, candidates: &[Itemset]) -> Result<Vec<u64>, CountError> {
        let mut counts = self.base_counts(pass, candidates)?;
        if let Some(delta) = &mut self.delta {
            let add = delta.count(pass, candidates)?;
            if add.len() != counts.len() {
                return Err(CountError::Failed(MinerError::Distributed(format!(
                    "pass {pass}: delta source returned {} counts for {} candidates",
                    add.len(),
                    candidates.len()
                ))));
            }
            for (x, y) in counts.iter_mut().zip(add) {
                *x += y;
            }
        }
        Ok(counts)
    }
}

/// The reference [`CountSource`]: counts an in-memory [`EncodedTable`]
/// with the same scan kernels the serial miner uses.
pub struct InMemorySource<'a> {
    table: &'a EncodedTable,
    num_threads: usize,
    kernel: crate::config::ScanKernel,
    cancel: Option<&'a CancelToken>,
}

impl<'a> InMemorySource<'a> {
    /// A source over `table`, with parallelism and kernel from `config`.
    pub fn new(table: &'a EncodedTable, config: &MinerConfig) -> Self {
        InMemorySource {
            table,
            num_threads: config.effective_parallelism(),
            kernel: config.kernel,
            cancel: None,
        }
    }

    /// Attach a cancellation token checked inside every counting scan.
    pub fn with_cancel(mut self, cancel: &'a CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    fn opts(&self) -> ScanOptions<'a> {
        ScanOptions {
            cancel: self.cancel,
            kernel: self.kernel,
            ..ScanOptions::new(self.num_threads)
        }
    }
}

impl CountSource for InMemorySource<'_> {
    fn meta(&self) -> &EncodedTable {
        self.table
    }

    fn num_rows(&self) -> u64 {
        self.table.num_rows() as u64
    }

    fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError> {
        Ok(attribute_value_counts(self.table))
    }

    fn count(&mut self, _pass: usize, candidates: &[Itemset]) -> Result<Vec<u64>, CountError> {
        let (counts, _) = count_candidates_opts(self.table, candidates, None, self.opts())?;
        Ok(counts)
    }
}

/// A [`CountSource`] over a spilled [`ChunkStore`]: every counting pass
/// streams the chunks from disk one at a time and merges their counts by
/// addition, so peak memory is one chunk regardless of table size.
pub struct ChunkedSource<'a> {
    store: &'a ChunkStore,
    meta: EncodedTable,
    num_threads: usize,
    kernel: crate::config::ScanKernel,
    cancel: Option<&'a CancelToken>,
}

impl<'a> ChunkedSource<'a> {
    /// A source over `store`, with parallelism and kernel from `config`.
    pub fn new(store: &'a ChunkStore, config: &MinerConfig) -> Self {
        ChunkedSource {
            store,
            meta: store.header(),
            num_threads: config.effective_parallelism(),
            kernel: config.kernel,
            cancel: None,
        }
    }

    /// Attach a cancellation token checked inside every counting scan.
    pub fn with_cancel(mut self, cancel: &'a CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    fn opts(&self) -> ScanOptions<'a> {
        ScanOptions {
            cancel: self.cancel,
            kernel: self.kernel,
            ..ScanOptions::new(self.num_threads)
        }
    }
}

impl CountSource for ChunkedSource<'_> {
    fn meta(&self) -> &EncodedTable {
        &self.meta
    }

    fn num_rows(&self) -> u64 {
        self.store.num_rows() as u64
    }

    fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError> {
        let mut merged: Option<Vec<Vec<u64>>> = None;
        for i in 0..self.store.num_chunks() {
            if self.cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(CountError::Cancelled);
            }
            let chunk = self.store.chunk(i)?;
            let counts = attribute_value_counts(&chunk);
            match &mut merged {
                None => merged = Some(counts),
                Some(m) => {
                    for (acc, add) in m.iter_mut().zip(&counts) {
                        for (a, b) in acc.iter_mut().zip(add) {
                            *a += b;
                        }
                    }
                }
            }
        }
        Ok(merged.unwrap_or_else(|| {
            self.meta
                .schema()
                .iter()
                .map(|(id, _)| vec![0u64; self.meta.cardinality(id) as usize])
                .collect()
        }))
    }

    fn count(&mut self, _pass: usize, candidates: &[Itemset]) -> Result<Vec<u64>, CountError> {
        let mut merged = vec![0u64; candidates.len()];
        for i in 0..self.store.num_chunks() {
            let chunk = self.store.chunk(i)?;
            let (counts, _) = count_candidates_opts(&chunk, candidates, None, self.opts())?;
            for (a, b) in merged.iter_mut().zip(counts) {
                *a += b;
            }
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionSpec;
    use crate::miner::Miner;
    use qar_table::{Schema, Table, Value};

    fn people_table() -> Table {
        let schema = Schema::builder()
            .quantitative("Age")
            .categorical("Married")
            .quantitative("NumCars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
            (41, "No", 1),
            (45, "Yes", 3),
            (52, "Yes", 2),
            (58, "No", 0),
            (63, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        t
    }

    fn config() -> MinerConfig {
        MinerConfig {
            min_support: 0.2,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: PartitionSpec::FixedIntervals(3),
            interest: None,
            ..MinerConfig::default()
        }
    }

    fn encoded() -> EncodedTable {
        let table = people_table();
        let (encoders, _) = crate::pipeline::build_encoders(&table, &config()).unwrap();
        EncodedTable::encode(&table, encoders).unwrap()
    }

    fn assert_outputs_identical(a: &MiningOutput, b: &MiningOutput) {
        assert_eq!(a.frequent.levels, b.frequent.levels);
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.stats.rules_total, b.stats.rules_total);
        assert_eq!(a.stats.rules_interesting, b.stats.rules_interesting);
        assert_eq!(
            a.stats.mine.candidates_per_pass,
            b.stats.mine.candidates_per_pass
        );
        assert_eq!(a.stats.mine.pass_stats.len(), b.stats.mine.pass_stats.len());
        assert_eq!(
            a.stats.mine.interest_pruned_items,
            b.stats.mine.interest_pruned_items
        );
    }

    #[test]
    fn in_memory_source_matches_serial_miner() {
        let enc = encoded();
        let serial = Miner::new(config()).mine_encoded(&enc).unwrap();
        let mut source = InMemorySource::new(&enc, &config());
        let sourced = mine_source(&mut source, &config(), None, None).unwrap();
        assert_outputs_identical(&serial, &sourced);
    }

    #[test]
    fn in_memory_source_matches_with_interest() {
        let mut cfg = config();
        cfg.interest = Some(crate::config::InterestConfig {
            level: 1.1,
            mode: InterestMode::SupportAndConfidence,
            prune_candidates: true,
        });
        let enc = encoded();
        let serial = Miner::new(cfg.clone()).mine_encoded(&enc).unwrap();
        let mut source = InMemorySource::new(&enc, &cfg);
        let sourced = mine_source(&mut source, &cfg, None, None).unwrap();
        assert_outputs_identical(&serial, &sourced);
        let sv: Vec<bool> = serial
            .interest
            .as_ref()
            .unwrap()
            .iter()
            .map(|v| v.interesting)
            .collect();
        let dv: Vec<bool> = sourced
            .interest
            .as_ref()
            .unwrap()
            .iter()
            .map(|v| v.interesting)
            .collect();
        assert_eq!(sv, dv);
    }

    #[test]
    fn chunked_source_matches_serial_for_every_chunk_size() {
        let enc = encoded();
        let serial = Miner::new(config()).mine_encoded(&enc).unwrap();
        for chunk_rows in [1usize, 3, 4, 10, 100] {
            let dir = qar_table::chunk::default_spill_dir(&format!("src_test_{chunk_rows}"));
            let mut store =
                ChunkStore::create(&dir, enc.schema().clone(), enc.encoders().to_vec()).unwrap();
            let table = people_table();
            let mut i = 0;
            while i < table.num_rows() {
                let end = (i + chunk_rows).min(table.num_rows());
                let mut part = Table::new(table.schema().clone());
                for r in i..end {
                    part.push_row(&table.row(r).to_values()).unwrap();
                }
                store.append_chunk(&part).unwrap();
                i = end;
            }
            let mut source = ChunkedSource::new(&store, &config());
            let sourced = mine_source(&mut source, &config(), None, None).unwrap();
            assert_outputs_identical(&serial, &sourced);
        }
    }

    #[test]
    fn normalized_stats_agree_between_serial_and_source() {
        let enc = encoded();
        let serial = Miner::new(config()).mine_encoded(&enc).unwrap();
        let mut source = InMemorySource::new(&enc, &config());
        let sourced = mine_source(&mut source, &config(), None, None).unwrap();
        let a = serial.stats.normalized();
        let b = sourced.stats.normalized();
        assert_eq!(a.mine, b.mine);
        assert_eq!(a.rules_total, b.rules_total);
        assert_eq!(a.rules_interesting, b.rules_interesting);
    }

    #[test]
    fn source_traces_mirror_serial_traces() {
        let enc = encoded();
        let serial_sink = std::sync::Arc::new(qar_trace::CollectingSink::new());
        Miner::new(config())
            .with_progress(serial_sink.clone())
            .mine_encoded(&enc)
            .unwrap();
        let source_sink = qar_trace::CollectingSink::new();
        let mut source = InMemorySource::new(&enc, &config());
        mine_source(&mut source, &config(), Some(&source_sink), None).unwrap();
        let names = |sink: &qar_trace::CollectingSink| -> Vec<String> {
            sink.events().iter().map(|e| e.name().to_string()).collect()
        };
        assert_eq!(names(&serial_sink), names(&source_sink));
    }

    #[test]
    fn empty_source_rejected() {
        let schema = Schema::builder().quantitative("x").build().unwrap();
        let t = Table::new(schema);
        let enc = EncodedTable::encode_full_resolution(&t).unwrap();
        let mut source = InMemorySource::new(&enc, &config());
        assert!(matches!(
            mine_source(&mut source, &config(), None, None),
            Err(MinerError::Schema(_))
        ));
    }

    #[test]
    fn mismatched_count_length_is_a_distributed_error() {
        struct Broken<'a>(InMemorySource<'a>);
        impl CountSource for Broken<'_> {
            fn meta(&self) -> &EncodedTable {
                self.0.meta()
            }
            fn num_rows(&self) -> u64 {
                self.0.num_rows()
            }
            fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError> {
                self.0.value_counts()
            }
            fn count(
                &mut self,
                _pass: usize,
                _candidates: &[Itemset],
            ) -> Result<Vec<u64>, CountError> {
                Ok(vec![0]) // wrong length
            }
        }
        let enc = encoded();
        let mut broken = Broken(InMemorySource::new(&enc, &config()));
        assert!(matches!(
            mine_source(&mut broken, &config(), None, None),
            Err(MinerError::Distributed(_))
        ));
    }

    fn sub_table(rows: std::ops::Range<usize>) -> Table {
        let table = people_table();
        let mut part = Table::new(table.schema().clone());
        for r in rows {
            part.push_row(&table.row(r).to_values()).unwrap();
        }
        part
    }

    #[test]
    fn capture_records_histograms_and_every_counting_pass() {
        let enc = encoded();
        let mut source = InMemorySource::new(&enc, &config());
        let (out, captured) = mine_source_captured(&mut source, &config(), None, None).unwrap();
        assert_eq!(captured.value_counts, attribute_value_counts(&enc));
        // One pass record per non-empty candidate set, raw counts kept for
        // infrequent candidates too.
        let counting_passes = out
            .stats
            .mine
            .candidates_per_pass
            .iter()
            .filter(|&&c| c > 0)
            .count();
        assert_eq!(captured.passes.len(), counting_passes);
        for ((pass, entries), (k, &cands)) in captured
            .passes
            .iter()
            .zip(out.stats.mine.candidates_per_pass.iter().enumerate())
        {
            assert_eq!(*pass as usize, k + 2);
            assert_eq!(entries.len(), cands);
        }
    }

    #[test]
    fn merge_of_split_counts_equals_full_mine() {
        let full_table = people_table();
        let (encoders, _) = crate::pipeline::build_encoders(&full_table, &config()).unwrap();
        let full_enc = EncodedTable::encode(&full_table, encoders.clone()).unwrap();
        let mut full_src = InMemorySource::new(&full_enc, &config());
        let (full_out, full_cap) =
            mine_source_captured(&mut full_src, &config(), None, None).unwrap();

        for cut in [0usize, 4, 7, 10] {
            let base_enc = EncodedTable::encode(&sub_table(0..cut), encoders.clone()).unwrap();
            let delta_enc = EncodedTable::encode(&sub_table(cut..10), encoders.clone()).unwrap();

            // Base counts: captured from a real mine when the base is
            // non-empty, synthesized otherwise (a zero-row base mines
            // nothing, so the empty-base case starts from zero tallies).
            let base_counts = if cut > 0 {
                let mut base_src = InMemorySource::new(&base_enc, &config());
                let (_, cap) = mine_source_captured(&mut base_src, &config(), None, None).unwrap();
                SupportCounts::assemble(
                    full_enc.schema(),
                    &encoders,
                    cut as u64,
                    &config(),
                    Vec::new(),
                    cap,
                )
            } else {
                SupportCounts::assemble(
                    full_enc.schema(),
                    &encoders,
                    0,
                    &config(),
                    Vec::new(),
                    CapturedCounts {
                        value_counts: full_enc
                            .schema()
                            .iter()
                            .map(|(id, _)| vec![0u64; full_enc.cardinality(id) as usize])
                            .collect(),
                        passes: Vec::new(),
                    },
                )
            };

            let meta = EncodedTable::header_only(
                full_enc.schema().clone(),
                encoders.clone(),
                full_table.num_rows(),
            );
            let delta_src = (cut < 10).then(|| InMemorySource::new(&delta_enc, &config()));
            let mut merge = MergeSource::new(&base_counts, delta_src, meta);
            match mine_source_captured(&mut merge, &config(), None, None) {
                Ok((out, cap)) => {
                    assert_outputs_identical(&full_out, &out);
                    assert_eq!(cap, full_cap, "cut {cut}: captured counts diverge");
                }
                // A candidate-set divergence is a legitimate outcome (the
                // caller re-mines); anything else is a bug.
                Err(MinerError::Update(_)) => assert!(
                    cut < 10,
                    "an empty delta can never diverge from the base run"
                ),
                Err(other) => panic!("cut {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn merge_with_empty_delta_never_scans() {
        struct Explode;
        impl CountSource for Explode {
            fn meta(&self) -> &EncodedTable {
                unreachable!("empty delta must not be consulted")
            }
            fn num_rows(&self) -> u64 {
                0
            }
            fn value_counts(&mut self) -> Result<Vec<Vec<u64>>, CountError> {
                panic!("empty delta must not be scanned")
            }
            fn count(&mut self, _: usize, _: &[Itemset]) -> Result<Vec<u64>, CountError> {
                panic!("empty delta must not be scanned")
            }
        }
        let enc = encoded();
        let mut src = InMemorySource::new(&enc, &config());
        let (full_out, cap) = mine_source_captured(&mut src, &config(), None, None).unwrap();
        let counts = SupportCounts::assemble(
            enc.schema(),
            enc.encoders(),
            enc.num_rows() as u64,
            &config(),
            Vec::new(),
            cap,
        );
        let meta = EncodedTable::header_only(
            enc.schema().clone(),
            enc.encoders().to_vec(),
            enc.num_rows(),
        );
        let mut merge: MergeSource<'_, Explode> = MergeSource::new(&counts, None, meta);
        let replay = mine_source(&mut merge, &config(), None, None).unwrap();
        assert_outputs_identical(&full_out, &replay);
    }

    #[test]
    fn cancelled_source_surfaces_cancellation() {
        let enc = encoded();
        let token = CancelToken::new();
        token.cancel();
        let mut source = InMemorySource::new(&enc, &config()).with_cancel(&token);
        match mine_source(&mut source, &config(), None, Some(&token)) {
            Err(MinerError::Cancelled(info)) => assert_eq!(info.pass, 1),
            Err(other) => panic!("expected Cancelled, got {other:?}"),
            Ok(_) => panic!("expected Cancelled, got Ok"),
        }
    }
}
