//! Frequent items and the frequent-itemset store.
//!
//! The first half of Step 3: "Find the support for each value of both
//! quantitative and categorical attributes. Additionally, for quantitative
//! attributes, adjacent values are combined as long as their support is
//! less than the user-specified max support." The resulting frequent items
//! seed the level-wise search in [`crate::mine`].

use qar_itemset::{Item, Itemset};
use qar_table::{AttributeKind, EncodedTable};
use std::collections::HashMap;

/// All frequent itemsets found by a mining run, with exact support counts.
#[derive(Debug, Clone, Default)]
pub struct QuantFrequentItemsets {
    /// `levels[k-1]` holds the frequent `k`-itemsets with their support
    /// counts, sorted for deterministic output.
    pub levels: Vec<Vec<(Itemset, u64)>>,
    support: HashMap<Itemset, u64>,
    /// Number of records in the mined table (denominator for fractions).
    pub num_rows: u64,
}

impl QuantFrequentItemsets {
    /// Create an empty store for a table of `num_rows` records.
    pub fn new(num_rows: u64) -> Self {
        QuantFrequentItemsets {
            levels: Vec::new(),
            support: HashMap::new(),
            num_rows,
        }
    }

    /// Append one level (sorted and indexed).
    pub fn push_level(&mut self, mut level: Vec<(Itemset, u64)>) {
        level.sort_by(|a, b| a.0.cmp(&b.0));
        for (itemset, count) in &level {
            self.support.insert(itemset.clone(), *count);
        }
        self.levels.push(level);
    }

    /// Support count of `itemset`, if it is frequent.
    pub fn support_of(&self, itemset: &Itemset) -> Option<u64> {
        self.support.get(itemset).copied()
    }

    /// Fractional support of `itemset`, if frequent.
    pub fn fraction_of(&self, itemset: &Itemset) -> Option<f64> {
        self.support_of(itemset)
            .map(|c| c as f64 / self.num_rows as f64)
    }

    /// Fractional support of a single frequent item.
    pub fn item_fraction(&self, item: Item) -> Option<f64> {
        self.fraction_of(&Itemset::singleton(item))
    }

    /// Total number of frequent itemsets across all levels.
    pub fn total(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Iterate over every `(itemset, support)` pair.
    pub fn iter(&self) -> impl Iterator<Item = &(Itemset, u64)> {
        self.levels.iter().flatten()
    }
}

/// Per-attribute frequent items plus bookkeeping the later passes need.
#[derive(Debug, Clone)]
pub struct FrequentItems {
    /// All frequent items across attributes, sorted by (attr, lo, hi).
    pub items: Vec<(Item, u64)>,
    /// Per-attribute value counts (index = code), for the interest
    /// measure's expected values and for Lemma 5.
    pub value_counts: Vec<Vec<u64>>,
}

/// Compute the frequent items of `table` (Step 3, first half).
///
/// * A categorical value is a frequent item iff its count ≥ `min_count`.
/// * A single quantitative value/interval likewise (even above
///   `max_count` — "any single interval/value whose support exceeds
///   maximum support is still considered").
/// * A combined range `[l..u]`, `l < u`, is a frequent item iff
///   `min_count ≤ count ≤ max_count` — adjacent intervals are combined
///   only "as long as their support is less than the user-specified max
///   support".
pub fn find_frequent_items(table: &EncodedTable, min_count: u64, max_count: u64) -> FrequentItems {
    frequent_items_from_counts(table, attribute_value_counts(table), min_count, max_count)
}

/// The scan half of pass 1: per-attribute value histograms of `table`
/// (index = code). Histograms over disjoint row partitions merge by
/// element-wise addition into exactly the whole-table histogram — the
/// property the distributed and out-of-core paths rely on.
pub fn attribute_value_counts(table: &EncodedTable) -> Vec<Vec<u64>> {
    table
        .schema()
        .iter()
        .map(|(id, _)| {
            let mut counts = vec![0u64; table.cardinality(id) as usize];
            for &code in table.codes(id) {
                counts[code as usize] += 1;
            }
            counts
        })
        .collect()
}

/// The combination half of pass 1: derive the frequent items from
/// already-computed per-attribute histograms. `meta` supplies only
/// schema kinds, cardinalities and taxonomy groups, so a decode-only
/// header table ([`EncodedTable::header_only`]) works.
pub fn frequent_items_from_counts(
    meta: &EncodedTable,
    value_counts: Vec<Vec<u64>>,
    min_count: u64,
    max_count: u64,
) -> FrequentItems {
    let table = meta;
    let schema = table.schema();
    let mut items: Vec<(Item, u64)> = Vec::new();
    for (id, def) in schema.iter() {
        let card = table.cardinality(id) as usize;
        let counts = &value_counts[id.index()];
        debug_assert_eq!(counts.len(), card, "histogram length != cardinality");
        let attr = id.index() as u32;
        match def.kind() {
            AttributeKind::Categorical => {
                for (code, &c) in counts.iter().enumerate() {
                    if c >= min_count {
                        items.push((Item::value(attr, code as u32), c));
                    }
                }
                // Taxonomy-generalized items: interior nodes are contiguous
                // code spans of the DFS-ordered encoding. Like combined
                // quantitative ranges, multi-leaf groups respect the
                // max-support cap (the same ExecTime/ManyRules pressure
                // applies to wide generalizations).
                let groups = table.encoder(id).taxonomy_groups();
                if !groups.is_empty() {
                    let mut prefix = vec![0u64; card + 1];
                    for (i, &c) in counts.iter().enumerate() {
                        prefix[i + 1] = prefix[i] + c;
                    }
                    for &(_, lo, hi) in groups {
                        let c = prefix[hi as usize + 1] - prefix[lo as usize];
                        if c >= min_count && c <= max_count {
                            items.push((Item::range(attr, lo, hi), c));
                        }
                    }
                }
            }
            AttributeKind::Quantitative => {
                // Prefix sums: count of [l..u] = prefix[u+1] - prefix[l].
                let mut prefix = vec![0u64; card + 1];
                for (i, &c) in counts.iter().enumerate() {
                    prefix[i + 1] = prefix[i] + c;
                }
                for l in 0..card {
                    // Single value first (no max_support cap).
                    let single = counts[l];
                    if single >= min_count {
                        items.push((Item::value(attr, l as u32), single));
                    }
                    // Combined ranges, stopping once the cap is crossed
                    // (support only grows with u).
                    for u in (l + 1)..card {
                        let c = prefix[u + 1] - prefix[l];
                        if c > max_count {
                            break;
                        }
                        if c >= min_count {
                            items.push((Item::range(attr, l as u32, u as u32), c));
                        }
                    }
                }
            }
        }
    }
    items.sort_by_key(|&(item, _)| item);
    FrequentItems {
        items,
        value_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_table::{Schema, Table, Value};

    /// Figure 3's People table, ages partitioned as in Figure 3(b).
    fn people_fig3() -> EncodedTable {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        let ages = t
            .column(qar_table::AttributeId(0))
            .as_quantitative()
            .unwrap()
            .to_vec();
        let cars = t
            .column(qar_table::AttributeId(2))
            .as_quantitative()
            .unwrap()
            .to_vec();
        let encoders = vec![
            qar_table::AttributeEncoder::quant_intervals_from(&ages, vec![25.0, 30.0, 35.0], true),
            qar_table::AttributeEncoder::categorical_from(
                t.column(qar_table::AttributeId(1))
                    .as_categorical()
                    .unwrap(),
            ),
            qar_table::AttributeEncoder::quant_values_from(&cars, true),
        ];
        EncodedTable::encode(&t, encoders).unwrap()
    }

    #[test]
    fn figure_3f_frequent_items() {
        // Minimum support 40 % of 5 records = 2; max support 100 %.
        let enc = people_fig3();
        let fi = find_frequent_items(&enc, 2, 5);
        let has = |attr: u32, lo: u32, hi: u32, count: u64| {
            fi.items
                .iter()
                .any(|&(i, c)| i == Item::range(attr, lo, hi) && c == count)
        };
        // ⟨Age: 20..29⟩ = intervals 0..1, support 3.
        assert!(has(0, 0, 1, 3));
        // ⟨Age: 30..39⟩ = intervals 2..3, support 2.
        assert!(has(0, 2, 3, 2));
        // ⟨Married: Yes⟩ (code 1) support 3; ⟨Married: No⟩ support 2.
        assert!(has(1, 1, 1, 3));
        assert!(has(1, 0, 0, 2));
        // ⟨NumCars: 0..1⟩ support 3; ⟨NumCars: 2⟩ support 2.
        assert!(has(2, 0, 1, 3));
        assert!(has(2, 2, 2, 2));
    }

    #[test]
    fn max_support_caps_ranges_but_not_singles() {
        let enc = people_fig3();
        // max_count 2: the range Age 0..1 (support 3) must vanish, but the
        // single interval ⟨Married: Yes⟩-like singles stay. Age interval 1
        // alone has support 2 (ages 25, 29).
        let fi = find_frequent_items(&enc, 2, 2);
        assert!(
            !fi.items.iter().any(|&(i, _)| i == Item::range(0, 0, 1)),
            "capped range kept"
        );
        assert!(fi
            .items
            .iter()
            .any(|&(i, c)| i == Item::value(0, 1) && c == 2));
        // Categorical single above the cap is still kept.
        assert!(fi
            .items
            .iter()
            .any(|&(i, c)| i == Item::value(1, 1) && c == 3));
    }

    #[test]
    fn value_counts_are_exact() {
        let enc = people_fig3();
        let fi = find_frequent_items(&enc, 1, 5);
        assert_eq!(fi.value_counts[0], vec![1, 2, 1, 1]); // age intervals
        assert_eq!(fi.value_counts[1], vec![2, 3]); // married No/Yes
        assert_eq!(fi.value_counts[2], vec![1, 2, 2]); // cars 0/1/2
    }

    #[test]
    fn items_sorted_and_min_support_respected() {
        let enc = people_fig3();
        let fi = find_frequent_items(&enc, 2, 5);
        assert!(fi.items.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(fi.items.iter().all(|&(_, c)| c >= 2));
    }

    #[test]
    fn store_roundtrip() {
        let mut store = QuantFrequentItemsets::new(10);
        let a = Itemset::singleton(Item::value(0, 1));
        store.push_level(vec![(a.clone(), 4)]);
        assert_eq!(store.support_of(&a), Some(4));
        assert_eq!(store.fraction_of(&a), Some(0.4));
        assert_eq!(store.item_fraction(Item::value(0, 1)), Some(0.4));
        assert_eq!(store.item_fraction(Item::value(0, 2)), None);
        assert_eq!(store.total(), 1);
    }
}
