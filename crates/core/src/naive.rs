//! A brute-force reference miner: exponential, obviously correct, used by
//! tests to validate the real pipeline on small inputs.

use crate::config::MinerConfig;
use crate::frequent::{find_frequent_items, QuantFrequentItemsets};
use qar_itemset::Itemset;
use qar_table::{AttributeId, EncodedTable};

/// Count an itemset's support by scanning every record.
fn scan_support(table: &EncodedTable, itemset: &Itemset) -> u64 {
    let mut record: Vec<u32> = vec![0; table.schema().len()];
    let mut count = 0;
    for row in 0..table.num_rows() {
        for (a, slot) in record.iter_mut().enumerate() {
            *slot = table.codes(AttributeId(a))[row];
        }
        if itemset.supported_by(&record) {
            count += 1;
        }
    }
    count
}

/// Mine all frequent itemsets by exhaustive enumeration: every combination
/// of frequent items over distinct attributes, each counted by a full
/// scan. Only suitable for tiny tables.
pub fn naive_mine(table: &EncodedTable, config: &MinerConfig) -> QuantFrequentItemsets {
    let num_rows = table.num_rows() as u64;
    let min_count = ((config.min_support * num_rows as f64).ceil() as u64).max(1);
    let max_count = (config.max_support * num_rows as f64).floor() as u64;
    let items = find_frequent_items(table, min_count, max_count);

    let mut frequent = QuantFrequentItemsets::new(num_rows);
    let mut current: Vec<(Itemset, u64)> = items
        .items
        .iter()
        .map(|&(item, count)| (Itemset::singleton(item), count))
        .collect();
    while !current.is_empty() {
        frequent.push_level(current.clone());
        if config.max_itemset_size != 0 && frequent.levels.len() >= config.max_itemset_size {
            break;
        }
        let mut next = Vec::new();
        for (itemset, _) in &current {
            let max_attr = itemset.attributes().last().copied().expect("non-empty");
            for &(item, _) in &items.items {
                if item.attr <= max_attr {
                    continue;
                }
                let mut members = itemset.items().to_vec();
                members.push(item);
                let candidate = Itemset::new(members);
                let support = scan_support(table, &candidate);
                if support >= min_count {
                    next.push((candidate, support));
                }
            }
        }
        current = next;
    }
    frequent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionSpec;
    use crate::miner::Miner;
    use qar_table::{Schema, Table, Value};

    fn tiny_table() -> EncodedTable {
        let schema = Schema::builder()
            .quantitative("a")
            .categorical("b")
            .quantitative("c")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        let rows = [
            (1, "x", 10),
            (2, "x", 10),
            (2, "y", 20),
            (3, "y", 20),
            (3, "x", 30),
            (4, "y", 30),
            (1, "x", 20),
            (2, "y", 10),
        ];
        for (a, b, c) in rows {
            t.push_row(&[Value::Int(a), Value::from(b), Value::Int(c)])
                .unwrap();
        }
        EncodedTable::encode_full_resolution(&t).unwrap()
    }

    #[test]
    fn naive_matches_real_miner() {
        let enc = tiny_table();
        for (minsup, maxsup) in [(0.2, 1.0), (0.3, 0.6), (0.5, 0.7), (0.125, 0.5)] {
            let config = MinerConfig {
                min_support: minsup,
                min_confidence: 0.5,
                max_support: maxsup,
                partitioning: PartitionSpec::None,
                partition_strategy: Default::default(),
                taxonomies: Default::default(),
                interest: None,
                max_itemset_size: 0,
                parallelism: None,
                kernel: Default::default(),
            };
            let naive = naive_mine(&enc, &config);
            let (real, _) = Miner::new(config.clone()).frequent_itemsets(&enc).unwrap();
            assert_eq!(
                naive.total(),
                real.total(),
                "minsup {minsup} maxsup {maxsup}: naive {} vs real {}",
                naive.total(),
                real.total()
            );
            for (itemset, count) in naive.iter() {
                assert_eq!(
                    real.support_of(itemset),
                    Some(*count),
                    "missing {itemset} at minsup {minsup}"
                );
            }
        }
    }

    #[test]
    fn scan_support_agrees_with_counts() {
        let enc = tiny_table();
        let config = MinerConfig {
            min_support: 0.25,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: PartitionSpec::None,
            partition_strategy: Default::default(),
            taxonomies: Default::default(),
            interest: None,
            max_itemset_size: 0,
            parallelism: None,
            kernel: Default::default(),
        };
        let naive = naive_mine(&enc, &config);
        for (itemset, count) in naive.iter() {
            assert_eq!(scan_support(&enc, itemset), *count);
        }
    }
}
