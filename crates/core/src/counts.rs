//! Persisted support counts: the raw tallies a mine accumulated, kept
//! alongside the rules so a later run can *update* the catalog by
//! scanning only appended rows.
//!
//! The count-distribution invariant (see [`crate::source`]) is what makes
//! this sound: counts over disjoint row partitions merge by element-wise
//! `u64` addition. A base table's persisted counts plus a delta-only scan
//! therefore equal a full scan of base+delta exactly — bit for bit — as
//! long as the *encoding* (schema + per-attribute encoders) of the
//! combined table is the one the base counts were taken under.
//! [`encoding_fingerprint`] pins that encoding; [`update_precheck`]
//! decides up front whether appending the delta would change it.

use std::collections::BTreeMap;

use crate::config::{InterestConfig, MinerConfig, PartitionSpec, PartitionStrategy};
use qar_itemset::Itemset;
use qar_table::{AttributeEncoder, Schema};

/// The semantic slice of a [`MinerConfig`] that determines mining output
/// (thresholds, partitioning policy, interest measure). Performance knobs
/// — parallelism, scan kernel — are deliberately excluded: they never
/// change what a mine finds, so an update may run with different ones.
///
/// Taxonomies are also excluded: their effect is fully captured by the
/// persisted encoders (and therefore by the encoding fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct CountsConfig {
    /// Minimum fractional support.
    pub min_support: f64,
    /// Minimum confidence.
    pub min_confidence: f64,
    /// Maximum fractional support for combined ranges.
    pub max_support: f64,
    /// Frequent-itemset size cap (0 = unbounded).
    pub max_itemset_size: usize,
    /// The interest measure, if one was configured.
    pub interest: Option<InterestConfig>,
    /// Step 1 policy: how many intervals.
    pub partitioning: PartitionSpec,
    /// Step 1 policy: where the cut points go.
    pub partition_strategy: PartitionStrategy,
}

impl CountsConfig {
    /// Snapshot the semantic fields of `config`.
    pub fn from_config(config: &MinerConfig) -> Self {
        CountsConfig {
            min_support: config.min_support,
            min_confidence: config.min_confidence,
            max_support: config.max_support,
            max_itemset_size: config.max_itemset_size,
            interest: config.interest,
            partitioning: config.partitioning.clone(),
            partition_strategy: config.partition_strategy,
        }
    }

    /// Rebuild a full [`MinerConfig`] from the snapshot (default
    /// performance knobs, no taxonomies — the persisted encoders already
    /// embed any taxonomy structure).
    pub fn miner_config(&self) -> MinerConfig {
        MinerConfig {
            min_support: self.min_support,
            min_confidence: self.min_confidence,
            max_support: self.max_support,
            max_itemset_size: self.max_itemset_size,
            interest: self.interest,
            partitioning: self.partitioning.clone(),
            partition_strategy: self.partition_strategy,
            taxonomies: BTreeMap::new(),
            ..MinerConfig::default()
        }
    }

    /// `Err(description)` when `config`'s semantic fields disagree with
    /// this snapshot (an update run must mine under the exact thresholds
    /// the base counts were taken under).
    pub fn check_matches(&self, config: &MinerConfig) -> Result<(), String> {
        let theirs = CountsConfig::from_config(config);
        if *self == theirs {
            return Ok(());
        }
        let mut diffs = Vec::new();
        if self.min_support != theirs.min_support {
            diffs.push(format!(
                "min_support {} vs {}",
                theirs.min_support, self.min_support
            ));
        }
        if self.min_confidence != theirs.min_confidence {
            diffs.push(format!(
                "min_confidence {} vs {}",
                theirs.min_confidence, self.min_confidence
            ));
        }
        if self.max_support != theirs.max_support {
            diffs.push(format!(
                "max_support {} vs {}",
                theirs.max_support, self.max_support
            ));
        }
        if self.max_itemset_size != theirs.max_itemset_size {
            diffs.push(format!(
                "max_itemset_size {} vs {}",
                theirs.max_itemset_size, self.max_itemset_size
            ));
        }
        if self.interest != theirs.interest {
            diffs.push("interest configuration".to_string());
        }
        if self.partitioning != theirs.partitioning {
            diffs.push("partitioning".to_string());
        }
        if self.partition_strategy != theirs.partition_strategy {
            diffs.push("partition strategy".to_string());
        }
        Err(format!(
            "configuration differs from the catalog's persisted counts: {}",
            diffs.join(", ")
        ))
    }
}

/// The raw counting state captured while a mine ran: the pass-1 value
/// histograms and, for every counting pass `k ≥ 2`, every candidate the
/// pass counted with its raw (unfiltered) tally — frequent and infrequent
/// alike, because an update needs the infrequent ones too (their supports
/// may cross `minsup` as rows arrive).
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedCounts {
    /// `value_counts[attr][code]`: pass-1 per-attribute histograms.
    pub value_counts: Vec<Vec<u64>>,
    /// `(pass, [(candidate, raw count)])` per counting pass, in pass
    /// order. A pass with an empty candidate set is never counted and so
    /// never appears here.
    pub passes: Vec<(u32, Vec<(Itemset, u64)>)>,
}

/// Everything an incremental update needs from the base mine, persisted
/// in the catalog's `COUNTS` section: the raw tallies, the row total,
/// the encoding fingerprint they were taken under, and the semantic
/// mining configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportCounts {
    /// Rows of the table the counts were taken over.
    pub num_rows: u64,
    /// [`encoding_fingerprint`] of the schema + encoders at capture time.
    pub fingerprint: (u64, u64),
    /// The semantic mining configuration of the capture run.
    pub config: CountsConfig,
    /// Achieved interval counts per attribute (the partitioning
    /// provenance [`crate::pipeline::MiningStats`] records) — restored
    /// into the stats of update runs so updated catalogs stay
    /// byte-identical to mine-from-scratch.
    pub intervals_per_attribute: Vec<Option<usize>>,
    /// The captured tallies.
    pub captured: CapturedCounts,
}

impl SupportCounts {
    /// Assemble persisted counts from a finished capture run.
    pub fn assemble(
        schema: &Schema,
        encoders: &[AttributeEncoder],
        num_rows: u64,
        config: &MinerConfig,
        intervals_per_attribute: Vec<Option<usize>>,
        captured: CapturedCounts,
    ) -> Self {
        SupportCounts {
            num_rows,
            fingerprint: encoding_fingerprint(schema, encoders),
            config: CountsConfig::from_config(config),
            intervals_per_attribute,
            captured,
        }
    }

    /// Total candidates tallied across all counting passes.
    pub fn total_candidates(&self) -> usize {
        self.captured.passes.iter().map(|(_, v)| v.len()).sum()
    }
}

/// Decide whether appending `delta_rows` new rows can reuse `encoders`
/// unchanged — the precondition of an incremental update. Returns
/// `Err(reason)` when a full re-mine is required.
///
/// The rule: equi-depth/equi-width/k-means *interval* encoders depend on
/// the whole value distribution (cut points and observed display bounds
/// both move when rows arrive), so any non-empty delta forces a re-mine.
/// Value-list and categorical encoders are append-stable as long as the
/// delta introduces no unseen value — which [`qar_table::EncodedTable::encode`]
/// detects as `UnencodableValue`, handled by the caller.
pub fn update_precheck(
    schema: &Schema,
    encoders: &[AttributeEncoder],
    delta_rows: u64,
) -> Result<(), String> {
    if delta_rows == 0 {
        return Ok(());
    }
    for (id, def) in schema.iter() {
        if let AttributeEncoder::QuantIntervals { .. } = &encoders[id.index()] {
            return Err(format!(
                "attribute {} is interval-partitioned; new rows would move its \
                 cut points, changing the encoding fingerprint",
                def.name()
            ));
        }
    }
    Ok(())
}

/// A 128-bit fingerprint of an *encoding*: the schema (names and kinds)
/// plus every encoder's full contents, mixed through two
/// independently-seeded SplitMix64 lanes. Two tables with equal
/// fingerprints decode item codes identically, so counts taken under one
/// are valid under the other.
pub fn encoding_fingerprint(schema: &Schema, encoders: &[AttributeEncoder]) -> (u64, u64) {
    let mut lanes = [
        Lane::new(0x243f_6a88_85a3_08d3),
        Lane::new(0x1319_8a2e_0370_7344),
    ];
    let mut absorb = |word: u64| {
        for lane in &mut lanes {
            lane.absorb(word);
        }
    };
    let absorb_str = |absorb: &mut dyn FnMut(u64), s: &str| {
        absorb(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            absorb(u64::from_le_bytes(word));
        }
    };
    absorb(schema.len() as u64);
    for (id, def) in schema.iter() {
        absorb_str(&mut absorb, def.name());
        absorb(match def.kind() {
            qar_table::AttributeKind::Quantitative => 0,
            qar_table::AttributeKind::Categorical => 1,
        });
        match &encoders[id.index()] {
            AttributeEncoder::Categorical { labels } => {
                absorb(10);
                absorb(labels.len() as u64);
                for l in labels {
                    absorb_str(&mut absorb, l);
                }
            }
            AttributeEncoder::QuantValues { values, integral } => {
                absorb(11);
                absorb(u64::from(*integral));
                absorb(values.len() as u64);
                for v in values {
                    absorb(v.to_bits());
                }
            }
            AttributeEncoder::QuantIntervals {
                cuts,
                display,
                integral,
            } => {
                absorb(12);
                absorb(u64::from(*integral));
                absorb(cuts.len() as u64);
                for c in cuts {
                    absorb(c.to_bits());
                }
                absorb(display.len() as u64);
                for spec in display {
                    absorb(spec.lo.to_bits());
                    absorb(spec.hi.to_bits());
                }
            }
            AttributeEncoder::CategoricalTaxonomy {
                labels,
                sorted_index,
                groups,
            } => {
                absorb(13);
                absorb(labels.len() as u64);
                for l in labels {
                    absorb_str(&mut absorb, l);
                }
                absorb(sorted_index.len() as u64);
                for &i in sorted_index {
                    absorb(i as u64);
                }
                absorb(groups.len() as u64);
                for (name, lo, hi) in groups {
                    absorb_str(&mut absorb, name);
                    absorb(*lo as u64);
                    absorb(*hi as u64);
                }
            }
        }
    }
    (lanes[0].finish(), lanes[1].finish())
}

/// One SplitMix64-style absorbing lane (shared with the table
/// fingerprint of [`crate::miner`]).
pub(crate) struct Lane(u64);

impl Lane {
    pub(crate) fn new(seed: u64) -> Self {
        Lane(seed)
    }

    pub(crate) fn absorb(&mut self, word: u64) {
        let mut z = self.0 ^ word.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_table::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .quantitative("x")
            .categorical("c")
            .build()
            .unwrap()
    }

    fn encoders() -> Vec<AttributeEncoder> {
        vec![
            AttributeEncoder::quant_values_from(&[1.0, 2.0, 3.0], true),
            AttributeEncoder::categorical_from(&["a".to_string(), "b".to_string()]),
        ]
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let base = encoding_fingerprint(&schema(), &encoders());
        assert_eq!(base, encoding_fingerprint(&schema(), &encoders()));

        let mut other = encoders();
        other[0] = AttributeEncoder::quant_values_from(&[1.0, 2.0, 4.0], true);
        assert_ne!(base, encoding_fingerprint(&schema(), &other));

        let renamed = Schema::builder()
            .quantitative("y")
            .categorical("c")
            .build()
            .unwrap();
        assert_ne!(base, encoding_fingerprint(&renamed, &encoders()));
    }

    #[test]
    fn fingerprint_distinguishes_encoder_variants() {
        let values = AttributeEncoder::quant_values_from(&[1.0, 2.0], true);
        let intervals = AttributeEncoder::quant_intervals_from(&[1.0, 2.0], vec![1.5], true);
        let s = Schema::builder().quantitative("x").build().unwrap();
        assert_ne!(
            encoding_fingerprint(&s, std::slice::from_ref(&values)),
            encoding_fingerprint(&s, std::slice::from_ref(&intervals))
        );
    }

    #[test]
    fn config_snapshot_round_trips_and_detects_mismatch() {
        let config = MinerConfig::default();
        let snap = CountsConfig::from_config(&config);
        assert!(snap.check_matches(&config).is_ok());
        assert_eq!(
            CountsConfig::from_config(&snap.miner_config()),
            snap,
            "snapshot survives the rebuild round trip"
        );

        let mut other = config.clone();
        other.min_support = 0.31;
        let err = snap.check_matches(&other).unwrap_err();
        assert!(err.contains("min_support"), "{err}");

        // Performance knobs are not semantic: they may differ freely.
        let mut perf = config;
        perf.parallelism = std::num::NonZeroUsize::new(7);
        perf.kernel = crate::config::ScanKernel::Bitmask;
        assert!(snap.check_matches(&perf).is_ok());
    }

    #[test]
    fn precheck_rejects_interval_encoders_only_for_nonempty_deltas() {
        let s = schema();
        let stable = encoders();
        assert!(update_precheck(&s, &stable, 100).is_ok());

        let intervals = vec![
            AttributeEncoder::quant_intervals_from(&[1.0, 2.0, 3.0], vec![1.5, 2.5], true),
            AttributeEncoder::categorical_from(&["a".to_string()]),
        ];
        assert!(update_precheck(&s, &intervals, 1).is_err());
        assert!(
            update_precheck(&s, &intervals, 0).is_ok(),
            "an empty delta cannot move any cut point"
        );
    }
}
