//! # qar-ps91 — the Piatetsky-Shapiro (KDD '91) baseline
//!
//! Section 1.3 of the quantitative-rules paper describes the related work
//! of \[PS91\]: rules of the form `A = a ⇒ B = b` where both sides are a
//! *single* ⟨attribute, value⟩ pair. "To find the rules comprising (A = a)
//! as the antecedent ... one pass over the data is made and each record is
//! hashed by values of A. Each hash cell keeps a running summary of values
//! of other attributes for the records with the same A value. ... To find
//! rules for different attributes, the algorithm is run once on each
//! attribute."
//!
//! This crate implements that algorithm over an [`EncodedTable`], including
//! PS91's rule-strength measure (`support(A∪B) − support(A)·support(B)`,
//! now usually called *leverage*), and is used by the `baselines` bench to
//! show what single-pair rules miss relative to quantitative rules:
//! multi-attribute antecedents and value *ranges*.

#![warn(missing_docs)]

use qar_table::{AttributeId, EncodedTable};

/// A single-pair rule `⟨antecedent_attr = a⟩ ⇒ ⟨consequent_attr = b⟩`.
#[derive(Debug, Clone, PartialEq)]
pub struct PairRule {
    /// Antecedent attribute.
    pub antecedent_attr: AttributeId,
    /// Antecedent code.
    pub antecedent_code: u32,
    /// Consequent attribute.
    pub consequent_attr: AttributeId,
    /// Consequent code.
    pub consequent_code: u32,
    /// Records containing both pairs.
    pub support_count: u64,
    /// `support_count / count(antecedent)`.
    pub confidence: f64,
    /// PS91 rule strength: `P(A∧B) − P(A)·P(B)` (leverage). Positive means
    /// the pairing occurs more often than independence predicts.
    pub leverage: f64,
}

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct Ps91Config {
    /// Minimum fractional support of the rule.
    pub min_support: f64,
    /// Minimum confidence.
    pub min_confidence: f64,
}

impl Default for Ps91Config {
    fn default() -> Self {
        Ps91Config {
            min_support: 0.01,
            min_confidence: 0.5,
        }
    }
}

/// Summaries from one hashing pass over attribute `a`: for each code of
/// `a`, the co-occurrence counts with every code of every other attribute.
#[derive(Debug)]
pub struct AttributeSummary {
    /// The hashed (antecedent) attribute.
    pub attr: AttributeId,
    /// `counts[a_code]` — records with that antecedent code.
    pub antecedent_counts: Vec<u64>,
    /// `co[a_code][other_attr_index][b_code]` — joint counts. The second
    /// index runs over *all* attributes (the antecedent's own slot is
    /// empty), so lookups stay positional.
    pub co_counts: Vec<Vec<Vec<u64>>>,
}

/// One pass of the PS91 algorithm: hash every record by its code of
/// `attr` and accumulate per-cell summaries of all other attributes.
pub fn summarize_attribute(table: &EncodedTable, attr: AttributeId) -> AttributeSummary {
    let num_codes = table.cardinality(attr) as usize;
    let schema = table.schema();
    let mut antecedent_counts = vec![0u64; num_codes];
    let mut co_counts: Vec<Vec<Vec<u64>>> = (0..num_codes)
        .map(|_| {
            schema
                .iter()
                .map(|(other, _)| {
                    if other == attr {
                        Vec::new()
                    } else {
                        vec![0u64; table.cardinality(other) as usize]
                    }
                })
                .collect()
        })
        .collect();
    let a_codes = table.codes(attr);
    for (row, &code) in a_codes.iter().enumerate() {
        let cell = code as usize;
        antecedent_counts[cell] += 1;
        for (other, _) in schema.iter() {
            if other != attr {
                let b = table.codes(other)[row] as usize;
                co_counts[cell][other.index()][b] += 1;
            }
        }
    }
    AttributeSummary {
        attr,
        antecedent_counts,
        co_counts,
    }
}

/// Derive the rules implied by one attribute's summary.
pub fn rules_from_summary(
    table: &EncodedTable,
    summary: &AttributeSummary,
    config: &Ps91Config,
) -> Vec<PairRule> {
    let n = table.num_rows() as f64;
    let min_count = (config.min_support * n).ceil().max(1.0) as u64;
    let mut rules = Vec::new();
    for (a_code, &a_count) in summary.antecedent_counts.iter().enumerate() {
        if a_count == 0 {
            continue;
        }
        for (other, _) in table.schema().iter() {
            if other == summary.attr {
                continue;
            }
            let b_codes = &summary.co_counts[a_code][other.index()];
            for (b_code, &joint) in b_codes.iter().enumerate() {
                if joint < min_count {
                    continue;
                }
                let confidence = joint as f64 / a_count as f64;
                if confidence < config.min_confidence {
                    continue;
                }
                // Marginal of the consequent for the leverage measure.
                let b_total: u64 = summary
                    .antecedent_counts
                    .iter()
                    .enumerate()
                    .map(|(a2, _)| summary.co_counts[a2][other.index()][b_code])
                    .sum();
                let leverage = joint as f64 / n - (a_count as f64 / n) * (b_total as f64 / n);
                rules.push(PairRule {
                    antecedent_attr: summary.attr,
                    antecedent_code: a_code as u32,
                    consequent_attr: other,
                    consequent_code: b_code as u32,
                    support_count: joint,
                    confidence,
                    leverage,
                });
            }
        }
    }
    rules
}

/// Run PS91 over every attribute ("the algorithm is run once on each
/// attribute") and collect all single-pair rules, sorted for determinism.
pub fn mine_pair_rules(table: &EncodedTable, config: &Ps91Config) -> Vec<PairRule> {
    let mut rules = Vec::new();
    for (attr, _) in table.schema().iter() {
        let summary = summarize_attribute(table, attr);
        rules.extend(rules_from_summary(table, &summary, config));
    }
    rules.sort_by(|a, b| {
        (
            a.antecedent_attr,
            a.antecedent_code,
            a.consequent_attr,
            a.consequent_code,
        )
            .cmp(&(
                b.antecedent_attr,
                b.antecedent_code,
                b.consequent_attr,
                b.consequent_code,
            ))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use qar_table::{Schema, Table, Value};

    fn people() -> EncodedTable {
        let schema = Schema::builder()
            .quantitative("age")
            .categorical("married")
            .quantitative("num_cars")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (age, married, cars) in [
            (23, "No", 1),
            (25, "Yes", 1),
            (29, "No", 0),
            (34, "Yes", 2),
            (38, "Yes", 2),
        ] {
            t.push_row(&[Value::Int(age), Value::from(married), Value::Int(cars)])
                .unwrap();
        }
        EncodedTable::encode_full_resolution(&t).unwrap()
    }

    #[test]
    fn summaries_count_exactly() {
        let enc = people();
        let married = enc.schema().id_of("married").unwrap();
        let s = summarize_attribute(&enc, married);
        // married: No=0 (2 records), Yes=1 (3 records).
        assert_eq!(s.antecedent_counts, vec![2, 3]);
        // Among Yes records, num_cars codes: 1,2,2 -> counts [0,1,2].
        let cars = enc.schema().id_of("num_cars").unwrap();
        assert_eq!(s.co_counts[1][cars.index()], vec![0, 1, 2]);
    }

    #[test]
    fn known_rule_found() {
        // Married=Yes ⇒ NumCars=2 holds with confidence 2/3, support 2/5.
        let enc = people();
        let rules = mine_pair_rules(
            &enc,
            &Ps91Config {
                min_support: 0.4,
                min_confidence: 0.6,
            },
        );
        let married = enc.schema().id_of("married").unwrap();
        let cars = enc.schema().id_of("num_cars").unwrap();
        let r = rules
            .iter()
            .find(|r| {
                r.antecedent_attr == married
                    && r.antecedent_code == 1
                    && r.consequent_attr == cars
                    && r.consequent_code == 2
            })
            .expect("rule missing");
        assert_eq!(r.support_count, 2);
        assert!((r.confidence - 2.0 / 3.0).abs() < 1e-12);
        // Leverage: 2/5 - (3/5)(2/5) = 0.4 - 0.24 = 0.16.
        assert!((r.leverage - 0.16).abs() < 1e-12);
    }

    #[test]
    fn thresholds_prune() {
        let enc = people();
        let none = mine_pair_rules(
            &enc,
            &Ps91Config {
                min_support: 0.9,
                min_confidence: 0.5,
            },
        );
        assert!(none.is_empty());
        let all = mine_pair_rules(
            &enc,
            &Ps91Config {
                min_support: 0.2,
                min_confidence: 0.0,
            },
        );
        // Every co-occurring pair of distinct attributes appears.
        assert!(!all.is_empty());
        for r in &all {
            assert!(r.support_count >= 1);
            assert!(r.antecedent_attr != r.consequent_attr);
        }
    }

    #[test]
    fn confidence_and_support_consistent() {
        let enc = people();
        let rules = mine_pair_rules(
            &enc,
            &Ps91Config {
                min_support: 0.2,
                min_confidence: 0.0,
            },
        );
        for r in &rules {
            // Recount from raw codes.
            let a = enc.codes(r.antecedent_attr);
            let b = enc.codes(r.consequent_attr);
            let joint = (0..enc.num_rows())
                .filter(|&i| a[i] == r.antecedent_code && b[i] == r.consequent_code)
                .count() as u64;
            let ant = (0..enc.num_rows())
                .filter(|&i| a[i] == r.antecedent_code)
                .count() as u64;
            assert_eq!(joint, r.support_count);
            assert!((r.confidence - joint as f64 / ant as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn single_pair_rules_cannot_express_ranges() {
        // The quantitative rule ⟨Age: 30..39⟩ ⇒ ⟨Married: Yes⟩ covers two
        // records, but PS91's single-value antecedents each cover one, so
        // at minsup 40 % (2 records) PS91 finds no age ⇒ married rule at
        // all — the paper's core motivation.
        let enc = people();
        let rules = mine_pair_rules(
            &enc,
            &Ps91Config {
                min_support: 0.4,
                min_confidence: 0.5,
            },
        );
        let age = enc.schema().id_of("age").unwrap();
        assert!(rules.iter().all(|r| r.antecedent_attr != age));
    }
}
