//! Every fixture under `tests/fuzz_repros/` is a minimized repro of a
//! boundary bug that has since been fixed: parsing it and re-running the
//! differential oracle must come back clean. Re-introducing any of those
//! bugs makes this test fail, naming the fixture — the cheap, permanent
//! half of the fuzz subsystem (the `qar fuzz` sweep is the exploratory
//! half).

use qar_oracle::{check_case, repro};

#[test]
fn checked_in_repros_stay_fixed() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fuzz_repros");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("fixture directory exists")
        .map(|entry| entry.expect("readable directory entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 6,
        "expected the checked-in fixtures, found only {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let case = repro::parse(&text)
            .unwrap_or_else(|e| panic!("fixture {} does not parse: {e}", path.display()));
        if let Err(divergence) = check_case(&case) {
            panic!(
                "fixture {} diverges again: {divergence}\n\n{text}",
                path.display()
            );
        }
    }
}

/// The fixture format and the oracle agree end to end: a case that goes
/// through serialize → parse is checked identically to the original.
#[test]
fn fixtures_round_trip_through_the_oracle() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fuzz_repros");
    for entry in std::fs::read_dir(dir).expect("fixture directory exists") {
        let path = entry.expect("readable directory entry").path();
        if path.extension().is_none() || path.extension().is_some_and(|e| e != "txt") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let case = repro::parse(&text).expect("fixture parses");
        let reserialized = repro::serialize(&case, "round trip");
        let reparsed = repro::parse(&reserialized).expect("own output parses");
        assert_eq!(
            check_case(&case).is_ok(),
            check_case(&reparsed).is_ok(),
            "round trip changed the verdict for {}",
            path.display()
        );
    }
}
