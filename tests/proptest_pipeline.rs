//! Randomized property tests over the whole pipeline: for random small
//! tables and random thresholds, the miner must agree with the brute-force
//! reference, a parallel run must agree exactly with a serial one, and the
//! outputs must satisfy the paper's definitional invariants.

use qar_prng::{cases, Prng};
use quantrules::core::naive::naive_mine;
use quantrules::core::{
    generate_rules, ItemsetSetDelta, Miner, MinerConfig, PartitionSpec, RuleSetDelta,
};
use quantrules::table::{EncodedTable, Schema, Table, Value};
use std::num::NonZeroUsize;

/// Random small table: 2 quantitative attributes (domains ≤ 6) + 1
/// categorical (≤ 3 labels), 8–59 rows.
fn arbitrary_table(rng: &mut Prng) -> Table {
    let schema = Schema::builder()
        .quantitative("q1")
        .quantitative("q2")
        .categorical("c")
        .build()
        .expect("static schema");
    let mut t = Table::new(schema);
    let labels = ["a", "b", "c"];
    let num_rows = rng.gen_range(8..60usize);
    for _ in 0..num_rows {
        let q1 = rng.gen_range(0i64..6);
        let q2 = rng.gen_range(0i64..6);
        let c = rng.gen_range(0..labels.len());
        t.push_row(&[Value::Int(q1), Value::Int(q2), Value::from(labels[c])])
            .expect("row matches schema");
    }
    t
}

fn base_config() -> MinerConfig {
    MinerConfig {
        min_support: 0.2,
        min_confidence: 0.5,
        max_support: 0.7,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    }
}

/// Miner == brute force on arbitrary tables and thresholds.
#[test]
fn miner_equals_naive() {
    cases(48, 0x5EED_4242_0001, |case, rng| {
        let table = arbitrary_table(rng);
        let config = MinerConfig {
            min_support: rng.gen_range(5u32..60) as f64 / 100.0,
            max_support: rng.gen_range(60u32..100) as f64 / 100.0,
            ..base_config()
        };
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let naive = naive_mine(&encoded, &config);
        let (real, _) = Miner::new(config.clone())
            .frequent_itemsets(&encoded)
            .expect("mine");
        let delta = ItemsetSetDelta::between(&naive, &real);
        assert!(delta.is_empty(), "case {case}: {delta}");
    });
}

/// The tentpole equivalence property: mining with one worker thread and
/// mining with four must produce *identical* rule sets — same rules, same
/// supports, same confidences — after a canonical sort. Counting shards
/// hold disjoint row ranges and integer counts merge by exact addition, so
/// this holds bit-for-bit, not just approximately.
#[test]
fn parallel_mining_equals_serial() {
    cases(48, 0x5EED_4242_0005, |case, rng| {
        let table = arbitrary_table(rng);
        let mut config = MinerConfig {
            min_support: rng.gen_range(5u32..40) as f64 / 100.0,
            min_confidence: rng.gen_range(10u32..90) as f64 / 100.0,
            max_support: 1.0,
            ..base_config()
        };
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");

        config.parallelism = NonZeroUsize::new(1);
        let (serial_freq, serial_stats) = Miner::new(config.clone())
            .frequent_itemsets(&encoded)
            .expect("serial");
        let serial_rules = generate_rules(&serial_freq, config.min_confidence);

        config.parallelism = NonZeroUsize::new(4);
        let (par_freq, par_stats) = Miner::new(config.clone())
            .frequent_itemsets(&encoded)
            .expect("parallel");
        let par_rules = generate_rules(&par_freq, config.min_confidence);

        assert_eq!(serial_stats.parallelism, 1, "case {case}");
        assert_eq!(par_stats.parallelism, 4, "case {case}");

        // Frequent itemsets: identical levels, supports included.
        let freq_delta = ItemsetSetDelta::between(&serial_freq, &par_freq);
        assert!(freq_delta.is_empty(), "case {case}: {freq_delta}");

        // Rules: identical, bit-for-bit (0-ulp confidence tolerance) —
        // shards hold disjoint row ranges and integer counts merge
        // exactly, so parallelism never perturbs a rule.
        let rule_delta = RuleSetDelta::between(&serial_rules, &par_rules, 0);
        assert!(rule_delta.is_empty(), "case {case}: {rule_delta}");
    });
}

/// The scan-kernel equivalence property: the memoized blocked scan must
/// count every candidate bit-identically to the direct (cache-off) scan
/// and to the brute-force recount, at any thread count. The generated
/// tables are duplicate-heavy (small domains), so the memo cache's hit
/// path executes on nearly every row.
#[test]
fn memoized_scan_equals_direct_and_naive() {
    use quantrules::core::supercand::{count_candidates_naive, count_candidates_opts, ScanOptions};
    use quantrules::core::ScanKernel;
    cases(48, 0x5EED_4242_0006, |case, rng| {
        let table = arbitrary_table(rng);
        let config = MinerConfig {
            min_support: rng.gen_range(5u32..30) as f64 / 100.0,
            max_support: 1.0,
            ..base_config()
        };
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        // Use the miner's own frequent itemsets as the candidate set —
        // a mix of sizes, categorical parts, and quant rectangles.
        let (frequent, _) = Miner::new(config)
            .frequent_itemsets(&encoded)
            .expect("mine");
        let candidates: Vec<_> = frequent.iter().map(|(set, _)| set.clone()).collect();
        if candidates.is_empty() {
            return;
        }
        let naive = count_candidates_naive(&encoded, &candidates);
        for threads in [1usize, 2, 4, 7] {
            for kernel in [ScanKernel::Direct, ScanKernel::Memoized] {
                let opts = ScanOptions {
                    kernel,
                    ..ScanOptions::new(threads)
                };
                let (counts, stats) = count_candidates_opts(&encoded, &candidates, None, opts)
                    .expect("no cancel token");
                assert_eq!(
                    counts, naive,
                    "case {case}: threads {threads} kernel {kernel}"
                );
                assert_eq!(
                    stats.memoized,
                    kernel == ScanKernel::Memoized,
                    "case {case}"
                );
                if kernel == ScanKernel::Direct {
                    assert_eq!(stats.memo_hits, 0, "case {case}");
                    assert_eq!(stats.distinct_tuples, 0, "case {case}");
                }
            }
        }
    });
}

/// The bitmask-kernel equivalence property: the blocked bitmask scan
/// must count every candidate bit-identically to the direct scan and to
/// the brute-force recount, at any thread count — including the `Auto`
/// selector, which may resolve to different kernels per shard. Tables
/// are small (tail-masking territory) with codes concentrated at the
/// domain boundaries, so `lo == hi` rectangles and dead-predicate
/// pre-screening both occur.
#[test]
fn bitmask_scan_equals_direct_and_naive() {
    use quantrules::core::supercand::{count_candidates_naive, count_candidates_opts, ScanOptions};
    use quantrules::core::ScanKernel;
    cases(48, 0x5EED_4242_0007, |case, rng| {
        let table = arbitrary_table(rng);
        let config = MinerConfig {
            min_support: rng.gen_range(5u32..30) as f64 / 100.0,
            max_support: 1.0,
            ..base_config()
        };
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let (frequent, _) = Miner::new(config)
            .frequent_itemsets(&encoded)
            .expect("mine");
        let candidates: Vec<_> = frequent.iter().map(|(set, _)| set.clone()).collect();
        if candidates.is_empty() {
            return;
        }
        let naive = count_candidates_naive(&encoded, &candidates);
        let direct = count_candidates_opts(
            &encoded,
            &candidates,
            None,
            ScanOptions {
                kernel: ScanKernel::Direct,
                ..ScanOptions::new(1)
            },
        )
        .expect("no cancel token")
        .0;
        assert_eq!(direct, naive, "case {case}: direct vs naive");
        for threads in [1usize, 2, 4, 7] {
            for kernel in [ScanKernel::Bitmask, ScanKernel::Auto] {
                let opts = ScanOptions {
                    kernel,
                    ..ScanOptions::new(threads)
                };
                let (counts, stats) = count_candidates_opts(&encoded, &candidates, None, opts)
                    .expect("no cancel token");
                assert_eq!(
                    counts, naive,
                    "case {case}: threads {threads} kernel {kernel}"
                );
                if kernel == ScanKernel::Bitmask {
                    assert_eq!(stats.kernel, "bitmask", "case {case}");
                    assert_eq!(stats.memo_hits, 0, "case {case}");
                }
            }
        }
    });
}

/// Every generated rule satisfies its definition exactly.
#[test]
fn rules_satisfy_definitions() {
    cases(48, 0x5EED_4242_0002, |case, rng| {
        let table = arbitrary_table(rng);
        let config = MinerConfig {
            min_support: 0.15,
            min_confidence: rng.gen_range(10u32..95) as f64 / 100.0,
            max_support: 0.8,
            ..base_config()
        };
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let (frequent, _) = Miner::new(config.clone())
            .frequent_itemsets(&encoded)
            .expect("mine");
        let rules = generate_rules(&frequent, config.min_confidence);
        for rule in &rules {
            // Attribute-disjoint sides.
            let ants = rule.antecedent.attributes();
            let cons = rule.consequent.attributes();
            assert!(ants.iter().all(|a| !cons.contains(a)), "case {case}");
            // Confidence and support are exact recounts.
            let both = quantrules::core::supercand::count_candidates_naive(
                &encoded,
                &[rule.itemset(), rule.antecedent.clone()],
            );
            assert_eq!(rule.support, both[0], "case {case}");
            let conf = both[0] as f64 / both[1] as f64;
            assert!((rule.confidence - conf).abs() < 1e-12, "case {case}");
            assert!(rule.confidence >= config.min_confidence, "case {case}");
            // The rule's itemset meets minimum support.
            let min_count = (config.min_support * table.num_rows() as f64).ceil() as u64;
            assert!(rule.support >= min_count, "case {case}");
        }
    });
}

/// Monotonicity in minsup: raising it never adds itemsets, and the
/// surviving sets keep their exact supports.
#[test]
fn minsup_monotone() {
    cases(48, 0x5EED_4242_0003, |case, rng| {
        let table = arbitrary_table(rng);
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let mk = |minsup: f64| MinerConfig {
            min_support: minsup,
            max_support: 1.0,
            ..base_config()
        };
        let (lo, _) = Miner::new(mk(0.1))
            .frequent_itemsets(&encoded)
            .expect("mine");
        let (hi, _) = Miner::new(mk(0.3))
            .frequent_itemsets(&encoded)
            .expect("mine");
        assert!(hi.total() <= lo.total(), "case {case}");
        for (itemset, count) in hi.iter() {
            assert_eq!(lo.support_of(itemset), Some(*count), "case {case}");
        }
    });
}

/// The counting backends agree wherever the auto heuristic is allowed to
/// choose (end-to-end, forced array vs forced R*-tree vs auto).
#[test]
fn backends_agree() {
    cases(48, 0x5EED_4242_0004, |case, rng| {
        use quantrules::itemset::CounterKind;
        let table = arbitrary_table(rng);
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let config = base_config();
        let (auto, _) = Miner::new(config.clone())
            .frequent_itemsets(&encoded)
            .expect("auto");
        let (arr, _) = Miner::new(config.clone())
            .with_counter(CounterKind::Array)
            .frequent_itemsets(&encoded)
            .expect("array");
        let (rt, _) = Miner::new(config.clone())
            .with_counter(CounterKind::RTree)
            .frequent_itemsets(&encoded)
            .expect("rtree");
        assert_eq!(auto.total(), arr.total(), "case {case}");
        assert_eq!(auto.total(), rt.total(), "case {case}");
        for (itemset, count) in auto.iter() {
            assert_eq!(arr.support_of(itemset), Some(*count), "case {case}");
            assert_eq!(rt.support_of(itemset), Some(*count), "case {case}");
        }
    });
}
