//! Property tests over the whole pipeline: for random small tables and
//! random thresholds, the miner must agree with the brute-force reference,
//! and its outputs must satisfy the paper's definitional invariants.

use proptest::prelude::*;
use quantrules::core::naive::naive_mine;
use quantrules::core::{mine_encoded, generate_rules, MinerConfig, PartitionSpec};
use quantrules::table::{EncodedTable, Schema, Table, Value};

fn arbitrary_table() -> impl Strategy<Value = Table> {
    // 2 quantitative attributes (domains ≤ 6) + 1 categorical (≤ 3).
    let row = (0i64..6, 0i64..6, 0usize..3);
    prop::collection::vec(row, 8..60).prop_map(|rows| {
        let schema = Schema::builder()
            .quantitative("q1")
            .quantitative("q2")
            .categorical("c")
            .build()
            .expect("static schema");
        let mut t = Table::new(schema);
        let labels = ["a", "b", "c"];
        for (q1, q2, c) in rows {
            t.push_row(&[Value::Int(q1), Value::Int(q2), Value::from(labels[c])])
                .expect("row matches schema");
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Miner == brute force on arbitrary tables and thresholds.
    #[test]
    fn miner_equals_naive(
        table in arbitrary_table(),
        minsup_pct in 5u32..60,
        maxsup_pct in 60u32..100,
    ) {
        let config = MinerConfig {
            min_support: minsup_pct as f64 / 100.0,
            min_confidence: 0.5,
            max_support: maxsup_pct as f64 / 100.0,
            partitioning: PartitionSpec::None,
partition_strategy: Default::default(),
taxonomies: Default::default(),
            interest: None,
            max_itemset_size: 0,
        };
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let naive = naive_mine(&encoded, &config);
        let (real, _) = mine_encoded(&encoded, &config, None).expect("mine");
        prop_assert_eq!(naive.total(), real.total());
        for (itemset, count) in naive.iter() {
            prop_assert_eq!(real.support_of(itemset), Some(*count), "{}", itemset);
        }
    }

    /// Every generated rule satisfies its definition exactly.
    #[test]
    fn rules_satisfy_definitions(
        table in arbitrary_table(),
        minconf_pct in 10u32..95,
    ) {
        let config = MinerConfig {
            min_support: 0.15,
            min_confidence: minconf_pct as f64 / 100.0,
            max_support: 0.8,
            partitioning: PartitionSpec::None,
partition_strategy: Default::default(),
taxonomies: Default::default(),
            interest: None,
            max_itemset_size: 0,
        };
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let (frequent, _) = mine_encoded(&encoded, &config, None).expect("mine");
        let rules = generate_rules(&frequent, config.min_confidence);
        for rule in &rules {
            // Attribute-disjoint sides.
            let ants = rule.antecedent.attributes();
            let cons = rule.consequent.attributes();
            prop_assert!(ants.iter().all(|a| !cons.contains(a)));
            // Confidence and support are exact recounts.
            let both = quantrules::core::supercand::count_candidates_naive(
                &encoded,
                &[rule.itemset(), rule.antecedent.clone()],
            );
            prop_assert_eq!(rule.support, both[0]);
            let conf = both[0] as f64 / both[1] as f64;
            prop_assert!((rule.confidence - conf).abs() < 1e-12);
            prop_assert!(rule.confidence >= config.min_confidence);
            // The rule's itemset meets minimum support.
            let min_count = (config.min_support * table.num_rows() as f64).ceil() as u64;
            prop_assert!(rule.support >= min_count);
        }
    }

    /// Monotonicity in minsup: raising it never adds itemsets, and the
    /// surviving sets keep their exact supports.
    #[test]
    fn minsup_monotone(table in arbitrary_table()) {
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let mk = |minsup: f64| MinerConfig {
            min_support: minsup,
            min_confidence: 0.5,
            max_support: 1.0,
            partitioning: PartitionSpec::None,
partition_strategy: Default::default(),
taxonomies: Default::default(),
            interest: None,
            max_itemset_size: 0,
        };
        let (lo, _) = mine_encoded(&encoded, &mk(0.1), None).expect("mine");
        let (hi, _) = mine_encoded(&encoded, &mk(0.3), None).expect("mine");
        prop_assert!(hi.total() <= lo.total());
        for (itemset, count) in hi.iter() {
            prop_assert_eq!(lo.support_of(itemset), Some(*count));
        }
    }

    /// The counting backends agree wherever the auto heuristic is allowed
    /// to choose (end-to-end, forced array vs forced R*-tree vs auto).
    #[test]
    fn backends_agree(table in arbitrary_table()) {
        use quantrules::itemset::CounterKind;
        let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
        let config = MinerConfig {
            min_support: 0.2,
            min_confidence: 0.5,
            max_support: 0.7,
            partitioning: PartitionSpec::None,
partition_strategy: Default::default(),
taxonomies: Default::default(),
            interest: None,
            max_itemset_size: 0,
        };
        let (auto, _) = mine_encoded(&encoded, &config, None).expect("auto");
        let (arr, _) = mine_encoded(&encoded, &config, Some(CounterKind::Array)).expect("array");
        let (rt, _) = mine_encoded(&encoded, &config, Some(CounterKind::RTree)).expect("rtree");
        prop_assert_eq!(auto.total(), arr.total());
        prop_assert_eq!(auto.total(), rt.total());
        for (itemset, count) in auto.iter() {
            prop_assert_eq!(arr.support_of(itemset), Some(*count));
            prop_assert_eq!(rt.support_of(itemset), Some(*count));
        }
    }
}
