//! Cooperative cancellation through the `Miner` facade: a run cancelled
//! at any pass boundary must return [`MinerError::Cancelled`] carrying
//! the completed passes' statistics, later cancellation points must carry
//! strictly more progress, and an uncancelled token must change nothing.

use qar_prng::cases;
use quantrules::core::mine::MineStats;
use quantrules::core::{Miner, MinerConfig, MinerError, PartitionSpec};
use quantrules::table::{Schema, Table, Value};
use quantrules::trace::{CancelToken, ProgressSink, TraceEvent};
use std::sync::Arc;
use std::time::Duration;

/// A sink that trips `token` the moment pass `target` starts, so the
/// run is aborted inside that pass's first shard scan (or, for pass 1,
/// at the next boundary — pass 1 has no counting scan to interrupt).
struct CancelAtPassSink {
    token: CancelToken,
    target: usize,
}

impl ProgressSink for CancelAtPassSink {
    fn on_event(&self, event: &TraceEvent) {
        if let TraceEvent::PassStarted { pass, .. } = event {
            if *pass == self.target {
                self.token.cancel();
            }
        }
    }
}

fn config() -> MinerConfig {
    MinerConfig {
        min_support: 0.15,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    }
}

/// A table wide and correlated enough to reach several passes.
fn deep_table(rows: usize) -> Table {
    let schema = Schema::builder()
        .quantitative("a")
        .quantitative("b")
        .categorical("c")
        .quantitative("d")
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    let labels = ["x", "y"];
    for i in 0..rows {
        t.push_row(&[
            Value::Int((i % 4) as i64),
            Value::Int((i % 3) as i64),
            Value::from(labels[i % 2]),
            Value::Int(((i / 2) % 3) as i64),
        ])
        .unwrap();
    }
    t
}

fn mine_cancelled_at(table: &Table, target: usize) -> Result<usize, (usize, MineStats)> {
    let token = CancelToken::new();
    let sink = CancelAtPassSink {
        token: token.clone(),
        target,
    };
    match Miner::new(config())
        .with_progress(Arc::new(sink))
        .with_cancel(token)
        .mine(table)
    {
        Ok(out) => Ok(1 + out.stats.mine.pass_stats.len()),
        Err(MinerError::Cancelled(info)) => Err((info.pass, info.stats)),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn cancelling_each_pass_boundary_reports_that_pass_with_growing_stats() {
    let table = deep_table(200);
    let total_passes = Miner::new(config())
        .mine(&table)
        .expect("clean run")
        .stats
        .mine
        .pass_stats
        .len()
        + 1;
    assert!(total_passes >= 3, "need a multi-pass workload");

    let mut prev_completed: Option<usize> = None;
    for target in 2..=total_passes {
        let (pass, stats) = mine_cancelled_at(&table, target)
            .expect_err("cancelling an in-range pass must abort the run");
        // The abort lands inside pass `target`: no stats for it yet,
        // every earlier counting pass fully recorded.
        assert_eq!(pass, target);
        assert_eq!(stats.pass_stats.len(), target - 2);
        // The cancelled pass had already been announced as a candidate set.
        assert_eq!(stats.candidates_per_pass.len(), target - 1);
        if let Some(prev) = prev_completed {
            assert!(
                stats.pass_stats.len() > prev || target == 2,
                "later cancellation must carry more completed passes"
            );
        }
        prev_completed = Some(stats.pass_stats.len());
    }
}

#[test]
fn cancelling_during_pass_one_aborts_at_the_next_boundary() {
    let table = deep_table(200);
    let (pass, stats) = mine_cancelled_at(&table, 1).expect_err("must abort");
    // Pass 1 has no cancellable scan; the token trips during it and the
    // run stops at the pass-2 boundary with no counting pass recorded.
    assert_eq!(pass, 2);
    assert!(stats.pass_stats.is_empty());
}

#[test]
fn cancelling_past_the_last_pass_changes_nothing() {
    let table = deep_table(200);
    let clean = Miner::new(config()).mine(&table).expect("clean run");
    let total_passes = 1 + clean.stats.mine.pass_stats.len();
    let passes =
        mine_cancelled_at(&table, total_passes + 1).expect("target beyond the run never trips");
    assert_eq!(passes, total_passes);
}

#[test]
fn expired_deadline_cancels_before_pass_one() {
    let table = deep_table(50);
    let token = CancelToken::with_deadline(Duration::ZERO);
    match Miner::new(config()).with_cancel(token).mine(&table) {
        Err(MinerError::Cancelled(info)) => {
            assert_eq!(info.pass, 1);
            assert!(info.deadline_exceeded);
            assert!(info.stats.pass_stats.is_empty());
        }
        other => panic!("expected Cancelled, got {:?}", other.map(|_| "output")),
    }
}

#[test]
fn uncancelled_token_is_bit_identical_to_no_token() {
    let table = deep_table(150);
    let plain = Miner::new(config()).mine(&table).expect("plain");
    let with_token = Miner::new(config())
        .with_cancel(CancelToken::new())
        .mine(&table)
        .expect("token never trips");
    assert_eq!(plain.frequent.levels, with_token.frequent.levels);
    assert_eq!(plain.rules.len(), with_token.rules.len());
    for (a, b) in plain.rules.iter().zip(&with_token.rules) {
        assert_eq!(a.support, b.support);
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }
}

/// Property: on random tables, every in-range cancellation target aborts
/// with that pass and a stats prefix, and stats grow monotonically with
/// the target; an uncancelled token reproduces the clean run exactly.
#[test]
fn cancellation_properties_hold_on_random_tables() {
    cases(12, 0x00AB_517E_CA9C_E11E, |case, rng| {
        let schema = Schema::builder()
            .quantitative("q1")
            .quantitative("q2")
            .categorical("c")
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        let labels = ["a", "b", "c"];
        for _ in 0..rng.gen_range(20..80usize) {
            table
                .push_row(&[
                    Value::Int(rng.gen_range(0i64..5)),
                    Value::Int(rng.gen_range(0i64..4)),
                    Value::from(labels[rng.gen_range(0..labels.len())]),
                ])
                .unwrap();
        }
        let clean = Miner::new(config()).mine(&table).expect("clean run");
        let total_passes = 1 + clean.stats.mine.pass_stats.len();

        let mut prev_len = 0usize;
        for target in 2..=total_passes {
            let (pass, stats) =
                mine_cancelled_at(&table, target).expect_err("in-range target aborts");
            assert_eq!(pass, target, "case {case}");
            assert_eq!(stats.pass_stats.len(), target - 2, "case {case}");
            assert!(stats.pass_stats.len() >= prev_len, "case {case}");
            // The partial stats are a prefix of the clean run's.
            for (done, full) in stats.pass_stats.iter().zip(&clean.stats.mine.pass_stats) {
                assert_eq!(done.super_candidates, full.super_candidates, "case {case}");
            }
            prev_len = stats.pass_stats.len();
        }

        let with_token = Miner::new(config())
            .with_cancel(CancelToken::new())
            .mine(&table)
            .expect("token never trips");
        assert_eq!(
            clean.frequent.levels, with_token.frequent.levels,
            "case {case}"
        );
    });
}
