//! The paper's worked examples (Figures 1–3), end to end through the
//! public API.

use quantrules::apriori::bridge::to_transactions;
use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::datagen::people::fig3_age_cuts;
use quantrules::datagen::people_table;
use quantrules::itemset::{Item, Itemset};
use quantrules::table::{AttributeEncoder, AttributeId, EncodedTable};

fn fig1_config() -> MinerConfig {
    MinerConfig {
        min_support: 0.4,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    }
}

/// Figure 1: both sample rules, with their exact support and confidence.
#[test]
fn figure_1_sample_rules() {
    let out = Miner::new(fig1_config())
        .mine(&people_table())
        .expect("mining succeeds");
    let rendered: Vec<String> = (0..out.rules.len()).map(|i| out.format_rule(i)).collect();
    assert!(rendered.iter().any(
        |r| r.contains("⟨Age: 34..38⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩")
            && r.contains("40.0% sup, 100.0% conf")
    ));
    assert!(rendered
        .iter()
        .any(|r| r.contains("⟨NumCars: 0..1⟩ ⇒ ⟨Married: No⟩")
            && r.contains("40.0% sup, 66.7% conf")));
}

/// Figure 2: the boolean mapping of the People table.
#[test]
fn figure_2_boolean_mapping() {
    let table = people_table();
    let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
    let (db, mapping) = to_transactions(&encoded);
    // 5 age values + 2 married + 3 num_cars = 10 boolean fields.
    assert_eq!(mapping.num_items(), 10);
    assert_eq!(db.len(), 5);
    // Record 100 (row 0): Age=23 (code 0), Married=No (code 0), NumCars=1
    // (code 1) — exactly three 1-fields, as in the figure.
    let age = table.schema().id_of("Age").unwrap();
    let married = table.schema().id_of("Married").unwrap();
    let cars = table.schema().id_of("NumCars").unwrap();
    let expected = {
        let mut v = vec![
            mapping.item_id(age, 0),
            mapping.item_id(married, 0),
            mapping.item_id(cars, 1),
        ];
        v.sort_unstable();
        v
    };
    assert_eq!(db.transaction(0), expected.as_slice());
}

/// Figure 3: partitioning Age per Figure 3(b), mapping per 3(d), frequent
/// itemsets per 3(f), rules per 3(g).
#[test]
fn figure_3_problem_decomposition() {
    let table = people_table();
    let ages = table
        .column(AttributeId(0))
        .as_quantitative()
        .unwrap()
        .to_vec();
    let cars = table
        .column(AttributeId(2))
        .as_quantitative()
        .unwrap()
        .to_vec();
    let encoders = vec![
        AttributeEncoder::quant_intervals_from(&ages, fig3_age_cuts(), true),
        AttributeEncoder::categorical_from(table.column(AttributeId(1)).as_categorical().unwrap()),
        AttributeEncoder::quant_values_from(&cars, true),
    ];
    let encoded = EncodedTable::encode(&table, encoders).expect("encode");

    // Figure 3(e): the mapped table. Age codes per row: 23→0, 25→1, 29→1,
    // 34→2, 38→3. NumCars codes are the values. Married: Yes→1, No→0
    // (sorted dictionary; the paper's arbitrary mapping uses 1/2).
    assert_eq!(encoded.codes(AttributeId(0)), &[0, 1, 1, 2, 3]);
    assert_eq!(encoded.codes(AttributeId(1)), &[0, 1, 0, 1, 1]);
    assert_eq!(encoded.codes(AttributeId(2)), &[1, 1, 0, 2, 2]);

    // Figure 3(f): sample frequent itemsets at minsup 40 % (= 2 records).
    let (frequent, _) = Miner::new(fig1_config())
        .frequent_itemsets(&encoded)
        .expect("mine");
    let support = |items: Vec<Item>| frequent.support_of(&Itemset::new(items));
    assert_eq!(support(vec![Item::range(0, 2, 3)]), Some(2)); // ⟨Age: 30..39⟩
    assert_eq!(support(vec![Item::range(0, 0, 1)]), Some(3)); // ⟨Age: 20..29⟩
    assert_eq!(support(vec![Item::value(1, 1)]), Some(3)); // ⟨Married: Yes⟩
    assert_eq!(support(vec![Item::value(1, 0)]), Some(2)); // ⟨Married: No⟩
    assert_eq!(support(vec![Item::range(2, 0, 1)]), Some(3)); // ⟨NumCars: 0..1⟩
    assert_eq!(
        support(vec![Item::range(0, 2, 3), Item::value(1, 1)]),
        Some(2)
    ); // ⟨Age: 30..39⟩ ⟨Married: Yes⟩

    // Figure 3(g): both sample rules.
    let rules = quantrules::core::generate_rules(&frequent, 0.5);
    let headline_ant = Itemset::new(vec![Item::range(0, 2, 3), Item::value(1, 1)]);
    let headline = rules
        .iter()
        .find(|r| {
            r.antecedent == headline_ant && r.consequent == Itemset::singleton(Item::value(2, 2))
        })
        .expect("⟨Age: 30..39⟩ and ⟨Married: Yes⟩ ⇒ ⟨NumCars: 2⟩");
    assert_eq!(headline.support, 2);
    assert_eq!(headline.confidence, 1.0);

    let age_rule = rules
        .iter()
        .find(|r| {
            r.antecedent == Itemset::singleton(Item::range(0, 0, 1))
                && r.consequent == Itemset::singleton(Item::range(2, 0, 1))
        })
        .expect("⟨Age: 20..29⟩ ⇒ ⟨NumCars: 0..1⟩");
    // 60 % support, 100 % confidence over the 5 records: 3 of 3 young
    // records have 0..1 cars. (The paper's figure prints 66.6 % because it
    // lists the rule for an earlier variant of the table; the support of
    // the itemset is what Figure 3(f) fixes, and 3/3 follows from it.)
    assert_eq!(age_rule.support, 3);
}

/// Section 3.1's worked 1.5-completeness example over hand-built itemsets.
#[test]
fn section_3_1_partial_completeness_example() {
    // Itemsets (supports %): 1:{age 20..30} 5, 2:{age 20..40} 6,
    // 3:{age 20..50} 8, 4:{cars 1..2} 5, 5:{cars 1..3} 6,
    // 6:{age 20..30, cars 1..2} 4, 7:{age 20..40, cars 1..3} 5.
    let age = |lo, hi| Item::range(0, lo, hi);
    let cars = |lo, hi| Item::range(1, lo, hi);
    let all: Vec<(Itemset, f64)> = vec![
        (Itemset::new(vec![age(20, 30)]), 5.0),
        (Itemset::new(vec![age(20, 40)]), 6.0),
        (Itemset::new(vec![age(20, 50)]), 8.0),
        (Itemset::new(vec![cars(1, 2)]), 5.0),
        (Itemset::new(vec![cars(1, 3)]), 6.0),
        (Itemset::new(vec![age(20, 30), cars(1, 2)]), 4.0),
        (Itemset::new(vec![age(20, 40), cars(1, 3)]), 5.0),
    ];
    // P = {2, 3, 5, 7} is 1.5-complete: every itemset has a generalization
    // in P within 1.5x support.
    let p: Vec<usize> = vec![1, 2, 4, 6];
    for (x, x_sup) in &all {
        let ok = p.iter().any(|&i| {
            let (g, g_sup) = &all[i];
            g.generalizes(x) && *g_sup <= 1.5 * x_sup
        });
        assert!(ok, "{x} lacks a close generalization");
    }
    // {3, 5, 7} alone is NOT 1.5-complete: itemset 1's only generalization
    // is 3, whose support is 8 > 1.5 × 5.
    let q: Vec<usize> = vec![2, 4, 6];
    let (x1, x1_sup) = &all[0];
    let covered = q.iter().any(|&i| {
        let (g, g_sup) = &all[i];
        g.generalizes(x1) && *g_sup <= 1.5 * x1_sup
    });
    assert!(!covered, "the paper says {{3,5,7}} is not 1.5-complete");
}
