//! Cross-crate consistency: the quantitative miner, the boolean Apriori
//! over the Section 1.1 mapping, the PS91 baseline, and CSV I/O must all
//! agree where their domains overlap.

use quantrules::apriori::bridge::to_transactions;
use quantrules::apriori::{apriori, apriori_tid};
use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::itemset::Itemset;
use quantrules::ps91::{mine_pair_rules, Ps91Config};
use quantrules::table::{csv, AttributeId, EncodedTable, Schema, Table, Value};

fn synthetic_table(records: usize, seed: u64) -> Table {
    let schema = Schema::builder()
        .quantitative("q1")
        .categorical("c1")
        .quantitative("q2")
        .categorical("c2")
        .build()
        .expect("static schema");
    let mut t = Table::with_capacity(schema, records);
    let mut state = seed;
    let mut next = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % m) as i64
    };
    let c1s = ["x", "y", "z"];
    let c2s = ["u", "v"];
    for _ in 0..records {
        let q1 = next(8);
        let c1 = c1s[((q1 / 3) as usize).min(2)];
        let q2 = (q1 + next(4)).min(9);
        let c2 = c2s[next(2) as usize];
        t.push_row(&[
            Value::Int(q1),
            Value::from(c1),
            Value::Int(q2),
            Value::from(c2),
        ])
        .expect("rows match schema");
    }
    t
}

fn no_combining_config(minsup: f64) -> MinerConfig {
    MinerConfig {
        min_support: minsup,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    }
}

/// Restricted to single-value items (width-1 ranges), the quantitative
/// miner's frequent itemsets must coincide with boolean Apriori over the
/// Figure 2 mapping — same sets, same supports.
#[test]
fn quantitative_restricted_to_values_equals_boolean_apriori() {
    let table = synthetic_table(400, 5);
    let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
    let minsup = 0.15;

    let (frequent, _) = Miner::new(no_combining_config(minsup))
        .frequent_itemsets(&encoded)
        .expect("mine");
    let mut quant_value_itemsets: Vec<(Vec<u32>, u64)> = frequent
        .iter()
        .filter(|(s, _)| s.items().iter().all(|i| i.lo == i.hi))
        .map(|(s, c)| {
            let ids: Vec<u32> = s
                .items()
                .iter()
                .map(|i| encode_bool_id(&encoded, i.attr, i.lo))
                .collect();
            (sorted(ids), *c)
        })
        .collect();
    quant_value_itemsets.sort();

    let (db, mapping) = to_transactions(&encoded);
    let bool_frequent = apriori(&db, minsup);
    let mut bool_itemsets: Vec<(Vec<u32>, u64)> = bool_frequent
        .iter()
        .map(|f| (f.items.clone(), f.support))
        .collect();
    bool_itemsets.sort();

    assert_eq!(quant_value_itemsets, bool_itemsets);
    // Sanity: the mapping covered every attribute.
    assert_eq!(mapping.num_items() as usize, total_cardinality(&encoded));
}

fn encode_bool_id(encoded: &EncodedTable, attr: u32, code: u32) -> u32 {
    let mut base = 0;
    for (id, _) in encoded.schema().iter() {
        if id.index() == attr as usize {
            return base + code;
        }
        base += encoded.cardinality(id);
    }
    unreachable!("attribute in schema")
}

fn total_cardinality(encoded: &EncodedTable) -> usize {
    encoded
        .schema()
        .iter()
        .map(|(id, _)| encoded.cardinality(id) as usize)
        .sum()
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

/// Apriori and AprioriTid agree on the bridged table.
#[test]
fn apriori_variants_agree_on_bridge() {
    let table = synthetic_table(300, 9);
    let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
    let (db, _) = to_transactions(&encoded);
    for minsup in [0.05, 0.1, 0.3] {
        let a = apriori(&db, minsup);
        let t = apriori_tid(&db, minsup);
        assert_eq!(a.total(), t.total(), "minsup {minsup}");
        for level in &a.by_size {
            for f in level {
                assert_eq!(t.support_of(&f.items), Some(f.support));
            }
        }
    }
}

/// PS91 pair rules are exactly the width-1, 1⇒1 slice of the quantitative
/// miner's rules (same supports, same confidences).
#[test]
fn ps91_is_the_single_pair_slice() {
    let table = synthetic_table(400, 13);
    let encoded = EncodedTable::encode_full_resolution(&table).expect("encode");
    let minsup = 0.12;
    let minconf = 0.5;

    let (frequent, _) = Miner::new(no_combining_config(minsup))
        .frequent_itemsets(&encoded)
        .expect("mine");
    let rules = quantrules::core::generate_rules(&frequent, minconf);
    let mut quant_pairs: Vec<(u32, u32, u32, u32, u64)> = rules
        .iter()
        .filter(|r| {
            r.antecedent.len() == 1
                && r.consequent.len() == 1
                && r.antecedent.items()[0].lo == r.antecedent.items()[0].hi
                && r.consequent.items()[0].lo == r.consequent.items()[0].hi
        })
        .map(|r| {
            let a = r.antecedent.items()[0];
            let c = r.consequent.items()[0];
            (a.attr, a.lo, c.attr, c.lo, r.support)
        })
        .collect();
    quant_pairs.sort_unstable();

    let mut ps91: Vec<(u32, u32, u32, u32, u64)> = mine_pair_rules(
        &encoded,
        &Ps91Config {
            min_support: minsup,
            min_confidence: minconf,
        },
    )
    .into_iter()
    .map(|r| {
        (
            r.antecedent_attr.index() as u32,
            r.antecedent_code,
            r.consequent_attr.index() as u32,
            r.consequent_code,
            r.support_count,
        )
    })
    .collect();
    ps91.sort_unstable();

    assert_eq!(quant_pairs, ps91);
}

/// CSV round trip feeds the miner identically.
#[test]
fn csv_roundtrip_preserves_mining_results() {
    let table = synthetic_table(250, 3);
    let mut buf = Vec::new();
    csv::write_table(&mut buf, &table).expect("write");
    let reread = csv::read_table(buf.as_slice(), table.schema()).expect("read");
    assert_eq!(reread.num_rows(), table.num_rows());

    let config = no_combining_config(0.1);
    let a = Miner::new(config.clone())
        .mine(&table)
        .expect("mine original");
    let b = Miner::new(config.clone())
        .mine(&reread)
        .expect("mine reread");
    assert_eq!(a.frequent.total(), b.frequent.total());
    assert_eq!(a.rules.len(), b.rules.len());
    for (x, y) in a.rules.iter().zip(&b.rules) {
        assert_eq!(x, y);
    }
}

/// The full pipeline is deterministic: two runs over the same table give
/// byte-identical rule listings.
#[test]
fn pipeline_is_deterministic() {
    let table = synthetic_table(500, 77);
    let config = MinerConfig {
        min_support: 0.1,
        min_confidence: 0.4,
        max_support: 0.5,
        partitioning: PartitionSpec::FixedIntervals(4),
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: Some(quantrules::core::InterestConfig {
            level: 1.2,
            mode: quantrules::core::InterestMode::SupportOrConfidence,
            prune_candidates: false,
        }),
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    };
    let a = Miner::new(config.clone()).mine(&table).expect("run 1");
    let b = Miner::new(config.clone()).mine(&table).expect("run 2");
    let ra: Vec<String> = (0..a.rules.len()).map(|i| a.format_rule(i)).collect();
    let rb: Vec<String> = (0..b.rules.len()).map(|i| b.format_rule(i)).collect();
    assert_eq!(ra, rb);
    assert_eq!(a.interest, b.interest);
}

/// Mining is insensitive to record order (supports are counts).
#[test]
fn record_order_does_not_matter() {
    let table = synthetic_table(300, 21);
    // Rebuild with rows reversed.
    let mut reversed = Table::new(table.schema().clone());
    for i in (0..table.num_rows()).rev() {
        reversed
            .push_row(&table.row(i).to_values())
            .expect("same schema");
    }
    let config = no_combining_config(0.1);
    let a = Miner::new(config.clone()).mine(&table).expect("mine");
    let b = Miner::new(config.clone())
        .mine(&reversed)
        .expect("mine reversed");
    assert_eq!(a.frequent.total(), b.frequent.total());
    for (itemset, count) in a.frequent.iter() {
        let same: Option<u64> = b.frequent.support_of(itemset);
        assert_eq!(same, Some(*count), "{itemset}");
    }
}

/// Attribute order in the schema doesn't change what is found (only ids).
#[test]
fn rules_survive_schema_permutation() {
    let table = synthetic_table(300, 33);
    let config = no_combining_config(0.12);
    let out = Miner::new(config.clone()).mine(&table).expect("mine");

    // Permuted schema: move q2, c2 in front.
    let schema2 = Schema::builder()
        .quantitative("q2")
        .categorical("c2")
        .quantitative("q1")
        .categorical("c1")
        .build()
        .expect("schema");
    let mut permuted = Table::new(schema2);
    for i in 0..table.num_rows() {
        let v = table.row(i).to_values();
        permuted
            .push_row(&[v[2].clone(), v[3].clone(), v[0].clone(), v[1].clone()])
            .expect("permuted row");
    }
    let out2 = Miner::new(config.clone())
        .mine(&permuted)
        .expect("mine permuted");
    assert_eq!(out.frequent.total(), out2.frequent.total());
    assert_eq!(out.rules.len(), out2.rules.len());
}

/// Check the `Itemset` slice of the public API is actually reachable from
/// the facade crate (compile-time reexport smoke test).
#[test]
fn facade_reexports_compile() {
    let _ = Itemset::empty();
    let _ = AttributeId(0);
}
