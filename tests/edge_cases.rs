//! Failure injection and degenerate inputs through the public API.

use quantrules::core::{
    InterestConfig, InterestMode, Miner, MinerConfig, MinerError, PartitionSpec,
};
use quantrules::table::{csv, Schema, Table, TableError, Value};

fn base_config() -> MinerConfig {
    MinerConfig {
        min_support: 0.3,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    }
}

#[test]
fn single_row_table() {
    let schema = Schema::builder()
        .quantitative("x")
        .categorical("c")
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    t.push_row(&[Value::Int(5), Value::from("only")]).unwrap();
    let out = Miner::new(base_config())
        .mine(&t)
        .expect("one row is minable");
    // Both singletons and their pair are frequent at any threshold ≤ 1.
    assert_eq!(out.frequent.total(), 3);
    assert_eq!(out.rules.len(), 2); // x⇒c and c⇒x, both 100% confident
}

#[test]
fn constant_columns() {
    let schema = Schema::builder()
        .quantitative("x")
        .quantitative("y")
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    for _ in 0..50 {
        t.push_row(&[Value::Int(7), Value::Int(3)]).unwrap();
    }
    // Partitioning a constant column must not blow up (no valid cuts).
    let mut cfg = base_config();
    cfg.partitioning = PartitionSpec::FixedIntervals(4);
    let out = Miner::new(cfg.clone())
        .mine(&t)
        .expect("constant columns are fine");
    assert_eq!(out.frequent.total(), 3);
    assert!(
        out.stats
            .intervals_per_attribute
            .iter()
            .all(|i| i.is_none()),
        "1 distinct value -> never partitioned"
    );
}

#[test]
fn all_distinct_quantitative_column() {
    // No single value reaches minsup; only ranges do.
    let schema = Schema::builder().quantitative("x").build().unwrap();
    let mut t = Table::new(schema);
    for i in 0..40 {
        t.push_row(&[Value::Int(i)]).unwrap();
    }
    let mut cfg = base_config();
    cfg.max_support = 0.5;
    let out = Miner::new(cfg.clone()).mine(&t).expect("mines");
    assert!(out.frequent.total() > 0);
    for (itemset, count) in out.frequent.iter() {
        let item = itemset.items()[0];
        assert!(item.lo < item.hi, "only ranges can be frequent here");
        assert!(*count >= 12 && *count <= 20, "30%..50% of 40");
    }
}

#[test]
fn interest_with_pruning_and_all_modes_runs() {
    let schema = Schema::builder()
        .quantitative("x")
        .categorical("c")
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    for i in 0..100 {
        let c = if i % 3 == 0 { "a" } else { "b" };
        t.push_row(&[Value::Int(i % 10), Value::from(c)]).unwrap();
    }
    for mode in [
        InterestMode::SupportAndConfidence,
        InterestMode::SupportOrConfidence,
    ] {
        for prune in [false, true] {
            let mut cfg = base_config();
            cfg.min_support = 0.1;
            cfg.max_support = 0.6;
            cfg.interest = Some(InterestConfig {
                level: 1.2,
                mode,
                prune_candidates: prune,
            });
            let out = Miner::new(cfg.clone()).mine(&t).expect("mines");
            let verdicts = out.interest.expect("interest configured");
            assert_eq!(verdicts.len(), out.rules.len());
        }
    }
}

#[test]
fn csv_with_crlf_line_endings() {
    let schema = Schema::builder()
        .quantitative("x")
        .categorical("c")
        .build()
        .unwrap();
    let data = "x,c\r\n1,a\r\n2,b\r\n";
    let t = csv::read_table(data.as_bytes(), &schema).expect("CRLF parses");
    assert_eq!(t.num_rows(), 2);
    assert_eq!(t.row(1).value(1), Value::Cat("b".into()));
}

#[test]
fn errors_are_reported_not_panicked() {
    // Empty table.
    let schema = Schema::builder().quantitative("x").build().unwrap();
    let t = Table::new(schema.clone());
    assert!(matches!(
        Miner::new(base_config()).mine(&t),
        Err(MinerError::Schema(TableError::EmptyTable))
    ));
    // Bad thresholds.
    let mut one = Table::new(schema);
    one.push_row(&[Value::Int(1)]).unwrap();
    for (minsup, maxsup) in [(0.0, 1.0), (-1.0, 1.0), (0.5, 0.2), (1.1, 1.2)] {
        let mut cfg = base_config();
        cfg.min_support = minsup;
        cfg.max_support = maxsup;
        assert!(
            matches!(
                Miner::new(cfg.clone()).mine(&one),
                Err(MinerError::Config(_))
            ),
            "minsup {minsup} maxsup {maxsup} must be rejected"
        );
    }
}

#[test]
fn very_high_minsup_yields_empty_output() {
    let schema = Schema::builder()
        .quantitative("x")
        .categorical("c")
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    for i in 0..20 {
        t.push_row(&[
            Value::Int(i),
            Value::from(if i % 2 == 0 { "a" } else { "b" }),
        ])
        .unwrap();
    }
    let mut cfg = base_config();
    cfg.min_support = 1.0;
    cfg.max_support = 1.0;
    let out = Miner::new(cfg.clone()).mine(&t).expect("mines");
    // Only the full x-range is in every record.
    assert!(out.frequent.total() <= 1);
    assert!(out.rules.is_empty());
}

#[test]
fn kmeans_strategy_end_to_end() {
    use quantrules::core::PartitionStrategy;
    // Bimodal data: k-means should split at the gap.
    let schema = Schema::builder()
        .quantitative("x")
        .categorical("c")
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    for i in 0..60 {
        let x = if i % 2 == 0 { i % 10 } else { 100 + i % 10 };
        let c = if x < 50 { "low" } else { "high" };
        t.push_row(&[Value::Int(x), Value::from(c)]).unwrap();
    }
    let mut cfg = base_config();
    cfg.partitioning = PartitionSpec::FixedIntervals(2);
    cfg.partition_strategy = PartitionStrategy::KMeans;
    cfg.min_support = 0.3;
    cfg.min_confidence = 0.9;
    let out = Miner::new(cfg.clone()).mine(&t).expect("mines");
    let rendered: Vec<String> = (0..out.rules.len()).map(|i| out.format_rule(i)).collect();
    assert!(
        rendered.iter().any(|r| r.contains("⇒ ⟨c: low⟩")),
        "k-means cluster rule missing from {rendered:?}"
    );
}
