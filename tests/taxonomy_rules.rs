//! End-to-end taxonomy mining: generalized categorical rules that no
//! single leaf value could support (the \[SA95\] connection the paper
//! points out: "the taxonomy can be used to implicitly combine values of
//! a categorical attribute").

use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::table::{Schema, Table, Taxonomy, Value};

const WEST: [&str; 4] = ["CA", "WA", "OR", "NV"];
const EAST: [&str; 4] = ["NY", "MA", "NJ", "CT"];

fn regions() -> Taxonomy {
    let mut edges: Vec<(&str, &str)> = Vec::new();
    for s in WEST {
        edges.push((s, "West"));
    }
    for s in EAST {
        edges.push((s, "East"));
    }
    edges.push(("West", "USA"));
    edges.push(("East", "USA"));
    Taxonomy::from_edges(&edges).unwrap()
}

/// Eight states at ~12.5 % support each; West stores sell high, East
/// stores sell low (with noise).
fn store_table(records: usize, seed: u64) -> Table {
    let schema = Schema::builder()
        .categorical("state")
        .quantitative("sales")
        .build()
        .unwrap();
    let mut t = Table::with_capacity(schema, records);
    let mut state = seed;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % m) as usize
    };
    for _ in 0..records {
        let west = next(2) == 0;
        let st = if west { WEST[next(4)] } else { EAST[next(4)] };
        let sales = if west {
            70 + next(30) as i64 // 70..99
        } else {
            10 + next(30) as i64 // 10..39
        };
        // 10% noise crossing the pattern.
        let sales = if next(10) == 0 { 100 - sales } else { sales };
        t.push_row(&[Value::from(st), Value::Int(sales)]).unwrap();
    }
    t
}

fn config_with_taxonomy() -> MinerConfig {
    let mut taxonomies = std::collections::BTreeMap::new();
    taxonomies.insert("state".to_string(), regions());
    MinerConfig {
        min_support: 0.2,
        min_confidence: 0.7,
        max_support: 0.6,
        partitioning: PartitionSpec::FixedIntervals(10),
        partition_strategy: Default::default(),
        taxonomies,
        interest: None,
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    }
}

#[test]
fn region_rule_emerges_where_no_state_rule_can() {
    let table = store_table(8_000, 42);
    let out = Miner::new(config_with_taxonomy())
        .mine(&table)
        .expect("mining succeeds");
    let rendered: Vec<String> = (0..out.rules.len()).map(|i| out.format_rule(i)).collect();

    // The region-level rule must exist and render by its taxonomy name.
    let west_rule = rendered
        .iter()
        .find(|r| r.starts_with("⟨state: West⟩ ⇒ ⟨sales:"))
        .unwrap_or_else(|| panic!("no West rule in {rendered:#?}"));
    assert!(west_rule.contains("% conf"));

    // No single state reaches the 20 % support floor, so no leaf rule.
    for st in WEST.iter().chain(EAST.iter()) {
        assert!(
            !rendered
                .iter()
                .any(|r| r.contains(&format!("⟨state: {st}⟩"))),
            "leaf rule for {st} should be below minsup"
        );
    }

    // The East region implies low sales symmetrically.
    assert!(rendered
        .iter()
        .any(|r| r.starts_with("⟨state: East⟩ ⇒ ⟨sales:")));
}

#[test]
fn taxonomy_supports_are_exact() {
    let table = store_table(3_000, 7);
    let out = Miner::new(config_with_taxonomy())
        .mine(&table)
        .expect("mining succeeds");
    for (itemset, count) in out.frequent.iter() {
        let recount = quantrules::core::supercand::count_candidates_naive(
            &out.encoded,
            std::slice::from_ref(itemset),
        )[0];
        assert_eq!(*count, recount, "{itemset}");
    }
}

#[test]
fn without_taxonomy_the_region_rule_is_invisible() {
    let table = store_table(8_000, 42);
    let mut cfg = config_with_taxonomy();
    cfg.taxonomies.clear();
    let out = Miner::new(cfg.clone())
        .mine(&table)
        .expect("mining succeeds");
    let rendered: Vec<String> = (0..out.rules.len()).map(|i| out.format_rule(i)).collect();
    assert!(
        !rendered
            .iter()
            .any(|r| r.contains("West") || r.contains("East")),
        "region names cannot appear without the taxonomy: {rendered:?}"
    );
    // And no state-antecedent rules exist at all (each leaf ~12.5% < 20%).
    assert!(!rendered.iter().any(|r| r.starts_with("⟨state:")));
}

#[test]
fn interest_measure_handles_taxonomy_generalizations() {
    // With the USA-level rule present (support 100 % antecedent), region
    // rules are its specializations; the interest machinery must process
    // the generalization lattice over taxonomy ranges without panicking
    // and keep the region rules (their confidence far exceeds the
    // USA-level expectation).
    let table = store_table(8_000, 99);
    let mut cfg = config_with_taxonomy();
    cfg.max_support = 1.0; // let the USA node through
    cfg.interest = Some(quantrules::core::InterestConfig {
        level: 1.3,
        mode: quantrules::core::InterestMode::SupportOrConfidence,
        prune_candidates: false,
    });
    let out = Miner::new(cfg.clone())
        .mine(&table)
        .expect("mining succeeds");
    let verdicts = out.interest.as_ref().expect("configured");
    let west_interesting = out.rules.iter().zip(verdicts).any(|(r, v)| {
        v.interesting
            && quantrules::core::output::format_itemset(&r.antecedent, &out.encoded)
                == "⟨state: West⟩"
    });
    assert!(
        west_interesting,
        "West rule should survive the interest filter"
    );
}
