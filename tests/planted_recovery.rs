//! End-to-end recovery oracle: rules planted by the generator must come
//! out of the full pipeline, and the interest measure must keep them.

use quantrules::core::{InterestConfig, InterestMode, Miner, MinerConfig, PartitionSpec};
use quantrules::datagen::{PlantedConfig, PlantedDataset};
use quantrules::itemset::{Item, Itemset};

fn config() -> MinerConfig {
    MinerConfig {
        min_support: 0.1,
        min_confidence: 0.6,
        max_support: 0.3,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 2,
        parallelism: None,
        kernel: Default::default(),
    }
}

#[test]
fn both_planted_rules_recovered_exactly() {
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 8_000,
        seed: 31337,
    });
    let out = Miner::new(config())
        .mine(&data.table)
        .expect("mining succeeds");
    // x0 values are 0..=99 and all present at this size, so code == value.
    // Rule 1: x0 ∈ [20..39] ⇒ c = "A" (c codes: A=0 in sorted dictionary).
    let r1 = out
        .rules
        .iter()
        .find(|r| {
            r.antecedent == Itemset::singleton(Item::range(0, 20, 39))
                && r.consequent == Itemset::singleton(Item::value(3, 0))
        })
        .expect("planted rule 1 missing");
    assert!(r1.confidence > 0.85, "confidence {}", r1.confidence);

    // Rule 2: x0 ∈ [60..79] ⇒ x1 ∈ [10..19].
    let r2 = out
        .rules
        .iter()
        .find(|r| {
            r.antecedent == Itemset::singleton(Item::range(0, 60, 79))
                && r.consequent == Itemset::singleton(Item::range(1, 10, 19))
        })
        .expect("planted rule 2 missing");
    assert!(r2.confidence > 0.8, "confidence {}", r2.confidence);
}

#[test]
fn recovery_survives_partitioning() {
    // Partition x-attributes into 20 equi-depth intervals (width 5 over
    // the uniform 0..100 domain): the planted [20..39] antecedent is a
    // union of whole intervals, so a close generalization must appear.
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 8_000,
        seed: 99,
    });
    let mut cfg = config();
    cfg.partitioning = PartitionSpec::FixedIntervals(20);
    let out = Miner::new(cfg.clone())
        .mine(&data.table)
        .expect("mining succeeds");
    let hit = (0..out.rules.len())
        .map(|i| out.format_rule(i))
        .find(|r| r.contains("⇒ ⟨c: A⟩") && r.contains("⟨x0: 2") && r.contains("..3"));
    assert!(
        hit.is_some(),
        "no rule close to x0∈[20..39] ⇒ c=A after partitioning"
    );
}

#[test]
fn interest_measure_keeps_planted_rules() {
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 8_000,
        seed: 7,
    });
    let mut cfg = config();
    cfg.interest = Some(InterestConfig {
        level: 1.15,
        mode: InterestMode::SupportOrConfidence,
        prune_candidates: false,
    });
    let out = Miner::new(cfg.clone())
        .mine(&data.table)
        .expect("mining succeeds");
    let verdicts = out.interest.as_ref().expect("interest configured");
    // A tight refinement of the planted confidence plateau must survive:
    // rules hugging [20..39] ⇒ A beat the expectation set by the widest
    // (maxsup-capped) generalizations by ~(0.9/0.68); rules far from the
    // plateau behave exactly as expected and get pruned. (The *literal*
    // [20..39] window can be edged out by a ±1 neighbour under sampling
    // noise, so the assertion accepts the tight neighbourhood.)
    let survivor = out.rules.iter().zip(verdicts).find(|(r, v)| {
        if !v.interesting || r.consequent != Itemset::singleton(Item::value(3, 0)) {
            return false;
        }
        let ant = r.antecedent.items();
        ant.len() == 1
            && ant[0].attr == 0
            && ant[0].lo >= 18
            && ant[0].lo <= 22
            && ant[0].hi >= 37
            && ant[0].hi <= 41
    });
    assert!(
        survivor.is_some(),
        "no tight refinement of the planted rule survived the interest filter"
    );
    // And the filter must actually prune some of the fuzzed variants.
    assert!(
        out.stats.rules_interesting < out.stats.rules_total,
        "interest filter did nothing: {} of {}",
        out.stats.rules_interesting,
        out.stats.rules_total
    );
}

#[test]
fn supports_reported_are_exact_counts() {
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 3_000,
        seed: 55,
    });
    let out = Miner::new(config())
        .mine(&data.table)
        .expect("mining succeeds");
    // Spot-check a sample of reported rules against a raw scan.
    for rule in out.rules.iter().step_by(97) {
        let both = rule.itemset();
        let recount = quantrules::core::supercand::count_candidates_naive(
            &out.encoded,
            &[both.clone(), rule.antecedent.clone()],
        );
        assert_eq!(rule.support, recount[0], "{both}");
        let conf = recount[0] as f64 / recount[1] as f64;
        assert!((rule.confidence - conf).abs() < 1e-12);
    }
}
