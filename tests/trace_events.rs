//! Every trace event a real mining run emits must validate against the
//! checked-in JSON schema (`schemas/trace_events.schema.json`) — the
//! contract `qar trace-check` and the CI trace-smoke job enforce — and
//! the `Miner` facade must reuse its encoding cache across runs without
//! changing the output.

use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::table::{Schema, Table, Value};
use quantrules::trace::schema::{validate_lines, Schema as TraceSchema};
use quantrules::trace::{CollectingSink, TraceEvent};
use std::sync::Arc;

const SCHEMA_TEXT: &str = include_str!("../schemas/trace_events.schema.json");

fn config() -> MinerConfig {
    MinerConfig {
        min_support: 0.15,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::FixedIntervals(4),
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 0,
        parallelism: None,
        kernel: Default::default(),
    }
}

fn sample_table() -> Table {
    let schema = Schema::builder()
        .quantitative("age")
        .quantitative("income")
        .categorical("married")
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    let labels = ["yes", "no"];
    for i in 0..180 {
        t.push_row(&[
            Value::Int(20 + (i % 40) as i64),
            Value::Int(30 + ((i * 7) % 50) as i64),
            Value::from(labels[i % 2]),
        ])
        .unwrap();
    }
    t
}

#[test]
fn every_emitted_event_validates_against_the_checked_in_schema() {
    let schema: TraceSchema = SCHEMA_TEXT.parse().expect("checked-in schema parses");
    let sink = Arc::new(CollectingSink::new());
    let table = sample_table();
    Miner::new(config())
        .with_progress(sink.clone())
        .mine(&table)
        .expect("mining succeeds");

    let events = sink.events();
    assert!(!events.is_empty(), "a run must emit events");
    let lines: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let counts = match validate_lines(&schema, &lines) {
        Ok(counts) => counts,
        Err((line, err)) => panic!("trace line {line} rejected by schema: {err}"),
    };

    let count_of = |name: &str| {
        counts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or_else(|| panic!("schema does not know event {name}"))
    };
    assert_eq!(count_of("run_started"), 1);
    assert_eq!(count_of("run_finished"), 1);
    let passes = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PassStarted { .. }))
        .count();
    assert!(passes >= 2, "workload must reach a counting pass");
    assert_eq!(count_of("pass_started"), passes);
    assert_eq!(count_of("pass_finished"), passes);

    // Every pass_finished must name the kernel that counted it, so
    // benches and `qar trace-check` observe kernel selection directly.
    let kernels: Vec<(usize, String)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PassFinished { pass, kernel, .. } => Some((*pass, kernel.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(kernels.len(), passes);
    for (pass, kernel) in &kernels {
        if *pass == 1 {
            // Pass 1 is a plain per-attribute value count.
            assert_eq!(kernel, "direct", "pass 1 kernel");
        } else {
            assert!(
                ["direct", "memoized", "bitmask", "mixed"].contains(&kernel.as_str()),
                "pass {pass} reported unknown kernel `{kernel}`"
            );
        }
    }
}

#[test]
fn second_run_reuses_the_encoding_and_is_identical() {
    let table = sample_table();
    let mut miner = Miner::new(config());
    let first = miner.mine(&table).expect("first run");
    assert!(!first.stats.encoding_reused);
    let second = miner.mine(&table).expect("second run");
    assert!(
        second.stats.encoding_reused,
        "same table must hit the cache"
    );
    assert_eq!(first.frequent.levels, second.frequent.levels);
    assert_eq!(first.rules.len(), second.rules.len());
    for (a, b) in first.rules.iter().zip(&second.rules) {
        assert_eq!(a.support, b.support);
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }
    assert_eq!(
        first.stats.intervals_per_attribute,
        second.stats.intervals_per_attribute
    );
}
