//! Golden regression test: mining the planted-rules dataset with a fixed
//! seed must reproduce a checked-in rule listing byte-for-byte.
//!
//! The snapshot pins the whole visible pipeline — partitioning, counting,
//! rule generation, formatting — so any unintended behavioural change
//! (including a nondeterminism bug in the parallel counting path) shows up
//! as a diff. To regenerate after an *intended* change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_planted
//! ```
//!
//! and review the diff of `tests/golden/planted_rules.snap` like code.

use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::datagen::{PlantedConfig, PlantedDataset};
use quantrules::trace::{CollectingSink, TraceEvent};
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::sync::Arc;

const SNAPSHOT_PATH: &str = "tests/golden/planted_rules.snap";

fn config(parallelism: Option<NonZeroUsize>) -> MinerConfig {
    MinerConfig {
        min_support: 0.1,
        min_confidence: 0.8,
        max_support: 0.3,
        partitioning: PartitionSpec::FixedIntervals(20),
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 2,
        parallelism,
        kernel: Default::default(),
    }
}

/// Mine the fixed dataset and render a canonical listing: a header with
/// the aggregate counts, then one line per rule, sorted lexicographically
/// (rule generation order is already deterministic; the sort makes the
/// snapshot robust to harmless reorderings too).
fn render(parallelism: Option<NonZeroUsize>) -> String {
    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 4_000,
        seed: 1996,
    });
    let sink = Arc::new(CollectingSink::new());
    let out = Miner::new(config(parallelism))
        .with_progress(sink.clone())
        .mine(&data.table)
        .expect("mining succeeds");
    assert_pass_coverage(&sink.events(), &out.stats.mine);
    let mut lines: Vec<String> = (0..out.rules.len()).map(|i| out.format_rule(i)).collect();
    lines.sort_unstable();
    let mut s = String::new();
    writeln!(
        s,
        "# planted dataset: 4000 records, seed 1996; minsup 10%, minconf 80%, maxsup 30%, 20 equi-depth intervals, rules <= 2 items"
    )
    .unwrap();
    writeln!(
        s,
        "# frequent itemsets: {}; rules: {}",
        out.frequent.total(),
        out.rules.len()
    )
    .unwrap();
    for line in lines {
        writeln!(s, "{line}").unwrap();
    }
    s
}

/// Every pass of the run shows up in the trace: exactly one
/// `pass_started`/`pass_finished` pair per pass (pass 1 plus each
/// counting pass), bracketed by `run_started`/`run_finished`.
fn assert_pass_coverage(events: &[TraceEvent], mine: &quantrules::core::mine::MineStats) {
    let passes = 1 + mine.pass_stats.len();
    let started: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PassStarted { pass, .. } => Some(*pass),
            _ => None,
        })
        .collect();
    let finished: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PassFinished { pass, .. } => Some(*pass),
            _ => None,
        })
        .collect();
    let want: Vec<usize> = (1..=passes).collect();
    assert_eq!(started, want, "one pass_started per pass");
    assert_eq!(finished, want, "one pass_finished per pass");
    assert!(matches!(
        events.first(),
        Some(TraceEvent::RunStarted { .. })
    ));
    assert!(matches!(
        events.last(),
        Some(TraceEvent::RunFinished { .. })
    ));
}

#[test]
fn mined_rules_match_snapshot() {
    let got = render(NonZeroUsize::new(1));

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(SNAPSHOT_PATH, &got).expect("write snapshot");
        return;
    }

    let want = std::fs::read_to_string(SNAPSHOT_PATH)
        .expect("snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    if got != want {
        // Show a compact diff rather than two multi-KB strings.
        let mut diffs = Vec::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diffs.push(format!("line {}: got  {g}\n          want {w}", i + 1));
            }
        }
        let (gn, wn) = (got.lines().count(), want.lines().count());
        if gn != wn {
            diffs.push(format!("line count: got {gn}, want {wn}"));
        }
        panic!(
            "mined rules diverged from {SNAPSHOT_PATH} ({} differing lines):\n{}",
            diffs.len(),
            diffs.join("\n")
        );
    }
}

/// The snapshot is thread-count independent: a 4-way parallel run renders
/// the identical listing.
#[test]
fn snapshot_is_parallelism_independent() {
    assert_eq!(render(NonZeroUsize::new(1)), render(NonZeroUsize::new(4)));
}

/// The store round-trips the golden mine: save the catalog to disk,
/// reopen it, and the reopened copy re-encodes byte-identically, renders
/// the same rule listing, and ranks top-k by confidence exactly as the
/// mined ruleset does.
#[test]
fn catalog_round_trips_golden_mine() {
    use quantrules::store::{Catalog, RankBy, RuleIndex};

    let data = PlantedDataset::generate(PlantedConfig {
        num_records: 4_000,
        seed: 1996,
    });
    let out = Miner::new(config(NonZeroUsize::new(1)))
        .mine(&data.table)
        .expect("mining succeeds");
    let catalog = Catalog::from_mining(&out);

    let path = std::env::temp_dir().join(format!("qar-golden-{}.qarcat", std::process::id()));
    catalog.save(&path, None).expect("save catalog");
    let reloaded = Catalog::load(&path, None).expect("reload catalog");
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.encode(), catalog.encode(), "bit-exact reload");

    // The reopened catalog renders the mined rules identically, without
    // the original table.
    let mined: Vec<String> = (0..out.rules.len()).map(|i| out.format_rule(i)).collect();
    let stored: Vec<String> = reloaded
        .rules()
        .iter()
        .map(|r| quantrules::core::output::format_rule(r, reloaded.num_rows(), &reloaded))
        .collect();
    assert_eq!(stored, mined);

    // Top-k by confidence agrees with ranking the mined ruleset directly
    // (confidence desc, support desc, then rule id — the index's order).
    let index = RuleIndex::build(&reloaded, None);
    let mut want: Vec<u32> = (0..out.rules.len() as u32).collect();
    want.sort_by(|&a, &b| {
        let (ra, rb) = (&out.rules[a as usize], &out.rules[b as usize]);
        rb.confidence
            .total_cmp(&ra.confidence)
            .then(rb.support.cmp(&ra.support))
            .then(a.cmp(&b))
    });
    assert_eq!(index.top_k(RankBy::Confidence, out.rules.len()), want);
    assert_eq!(
        index.top_k(RankBy::Confidence, 3),
        want[..3.min(want.len())]
    );
}
