//! Cross-version catalog compatibility: `.qarcat` files written BEFORE
//! optional trailing sections existed (`ANALYTICS`, then `COUNTS`) are
//! checked in as frozen artifacts, and this suite proves the current
//! reader serves them unchanged — loads them, answers classic queries,
//! refuses newer-only features with the documented error, and re-encodes
//! them byte-for-byte. It also proves the forward path: backfilling
//! analytics (or persisted support counts) into a golden catalog yields
//! a strictly-appended file that round-trips byte-exactly.
//!
//! To regenerate the artifact after an *intended* format change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test catalog_compat
//! ```
//!
//! and review the new bytes like code (the file should only change when
//! the format version does).

use quantrules::analytics::AnalyticsConfig;
use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::store::{analytics_from_encoded, section_inventory, Catalog, RankBy, RuleIndex};
use quantrules::table::EncodedTable;

const GOLDEN_PATH: &str = "tests/golden/pre_analytics.qarcat";

/// The deterministic source table the golden catalog was mined from.
fn source_table() -> quantrules::table::Table {
    quantrules::datagen::people_table()
}

/// The mine that produced the golden catalog: people dataset, raw
/// values, thresholds loose enough for a handful of rules.
fn golden_mine_config() -> MinerConfig {
    MinerConfig {
        min_support: 0.4,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        interest: None,
        max_itemset_size: 2,
        ..MinerConfig::default()
    }
}

fn golden_bytes() -> Vec<u8> {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let out = Miner::new(golden_mine_config())
            .mine(&source_table())
            .expect("golden mine succeeds");
        let bytes = Catalog::from_mining(&out).encode();
        std::fs::write(GOLDEN_PATH, &bytes).expect("write golden catalog");
    }
    std::fs::read(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH} (regenerate with UPDATE_GOLDEN=1): {e}")
    })
}

/// The frozen pre-analytics catalog loads, answers classic queries, and
/// re-encodes byte-for-byte — old catalogs keep working, unchanged.
#[test]
fn pre_analytics_catalog_loads_and_serves_unchanged() {
    let bytes = golden_bytes();
    let catalog = Catalog::load_bytes(&bytes, None).expect("golden catalog loads");
    assert!(catalog.analytics().is_none(), "artifact predates analytics");
    assert!(!catalog.rules().is_empty());
    assert_eq!(
        catalog.encode(),
        bytes,
        "decode/encode round trip is byte-identical"
    );

    // Exactly the three original sections, every checksum intact.
    let sections = section_inventory(&bytes).expect("walkable");
    assert_eq!(
        sections.iter().map(|s| s.name).collect::<Vec<_>>(),
        ["schema", "rules", "stats"]
    );
    assert!(sections.iter().all(|s| s.crc_ok));

    // Classic queries behave as they always did.
    let index = RuleIndex::build(&catalog, None);
    assert!(!index.has_analytics());
    let all = index.top_k(RankBy::Confidence, catalog.rules().len());
    assert_eq!(all.len(), catalog.rules().len());

    // Analytics-only features refuse with the documented pointer at the
    // backfill path instead of silently misbehaving.
    let mut ids: Vec<u32> = (0..catalog.rules().len() as u32).collect();
    let err = index
        .filter_analytics(&mut ids, Some(1.0), None)
        .expect_err("filters need analytics");
    assert!(err.to_string().contains("qar analyze"), "{err}");
}

/// Backfilling analytics into the golden catalog strictly appends the
/// `ANALYTICS` section — the original bytes are untouched — and the
/// annotated file round-trips byte-exactly with bit-identical floats.
#[test]
fn golden_catalog_backfills_and_round_trips_with_analytics() {
    let bytes = golden_bytes();
    let catalog = Catalog::load_bytes(&bytes, None).expect("golden catalog loads");

    // Re-encode the source data with the catalog's own encoders, the
    // `qar analyze` path.
    let table = source_table();
    assert_eq!(table.num_rows() as u64, catalog.num_rows());
    let encoded =
        EncodedTable::encode(&table, catalog.encoders().to_vec()).expect("source re-encodes");
    let set = analytics_from_encoded(catalog.rules(), &encoded, &AnalyticsConfig::default(), None);

    let annotated = catalog
        .with_analytics(set.clone())
        .expect("analytics attach")
        .encode();
    assert_eq!(
        &annotated[..bytes.len()],
        &bytes[..],
        "annotation strictly appends"
    );
    let sections = section_inventory(&annotated).expect("walkable");
    assert_eq!(
        sections.iter().map(|s| s.name).collect::<Vec<_>>(),
        ["schema", "rules", "stats", "analytics"]
    );
    assert!(sections.iter().all(|s| s.crc_ok));

    let reloaded = Catalog::load_bytes(&annotated, None).expect("annotated loads");
    assert!(reloaded
        .analytics()
        .expect("analytics decoded")
        .bits_eq(&set));
    assert_eq!(
        reloaded.encode(),
        annotated,
        "annotated round trip is byte-identical"
    );

    // The annotated catalog now ranks and filters by the new metrics.
    let index = RuleIndex::build(&reloaded, None);
    assert!(index.has_analytics());
    let by_lift = index.top_k(RankBy::Lift, 3);
    assert!(!by_lift.is_empty());
    let mut ids: Vec<u32> = (0..reloaded.rules().len() as u32).collect();
    index
        .filter_analytics(&mut ids, Some(0.0), Some(1.0))
        .expect("filters work with analytics");
}

/// An OLD reader — simulated by truncating the file at the analytics
/// boundary — sees a valid analytics-less catalog: the trailing-section
/// design means new sections never break old consumers, and this reader
/// skips unknown future sections the same way.
#[test]
fn analytics_section_is_invisible_to_pre_analytics_readers() {
    let bytes = golden_bytes();
    let catalog = Catalog::load_bytes(&bytes, None).expect("golden catalog loads");
    let table = source_table();
    let encoded =
        EncodedTable::encode(&table, catalog.encoders().to_vec()).expect("source re-encodes");
    let set = analytics_from_encoded(catalog.rules(), &encoded, &AnalyticsConfig::default(), None);
    let num_rules = catalog.rules().len();
    let annotated = catalog.with_analytics(set).expect("attach").encode();

    // Truncating at the boundary of the old format's last section yields
    // exactly the golden bytes — i.e. the old reader's view.
    let truncated = &annotated[..golden_bytes().len()];
    let old_view = Catalog::load_bytes(truncated, None).expect("old view loads");
    assert!(old_view.analytics().is_none());
    assert_eq!(old_view.rules().len(), num_rules);
}

const PRE_COUNTS_PATH: &str = "tests/golden/pre_counts.qarcat";

/// The frozen pre-`COUNTS` catalog: the golden mine plus backfilled
/// analytics — the richest file the format could write before persisted
/// support counts existed.
fn pre_counts_bytes() -> Vec<u8> {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let out = Miner::new(golden_mine_config())
            .mine(&source_table())
            .expect("golden mine succeeds");
        let encoded = EncodedTable::encode(&source_table(), out.encoded.encoders().to_vec())
            .expect("source re-encodes");
        let set = analytics_from_encoded(&out.rules, &encoded, &AnalyticsConfig::default(), None);
        let bytes = Catalog::from_mining(&out)
            .with_analytics(set)
            .expect("analytics attach")
            .encode();
        std::fs::write(PRE_COUNTS_PATH, &bytes).expect("write golden catalog");
    }
    std::fs::read(PRE_COUNTS_PATH).unwrap_or_else(|e| {
        panic!("cannot read {PRE_COUNTS_PATH} (regenerate with UPDATE_GOLDEN=1): {e}")
    })
}

/// The frozen pre-counts catalog loads with no counts, serves its rules,
/// and re-encodes byte-for-byte — catalogs from before incremental
/// mining keep working, unchanged.
#[test]
fn pre_counts_catalog_loads_and_serves_unchanged() {
    let bytes = pre_counts_bytes();
    let catalog = Catalog::load_bytes(&bytes, None).expect("golden catalog loads");
    assert!(catalog.counts().is_none(), "artifact predates COUNTS");
    assert!(catalog.analytics().is_some(), "artifact carries analytics");
    assert!(!catalog.rules().is_empty());
    assert_eq!(
        catalog.encode(),
        bytes,
        "decode/encode round trip is byte-identical"
    );

    let sections = section_inventory(&bytes).expect("walkable");
    assert_eq!(
        sections.iter().map(|s| s.name).collect::<Vec<_>>(),
        ["schema", "rules", "stats", "analytics"]
    );
    assert!(sections.iter().all(|s| s.crc_ok));
}

/// Backfilling persisted support counts into the golden catalog (the
/// `qar mine --update`-enabling path) strictly appends the `COUNTS`
/// section — the original bytes are untouched — and the counted file
/// round-trips byte-exactly with the tallies intact.
#[test]
fn golden_catalog_backfills_counts_strictly_appended() {
    let bytes = pre_counts_bytes();
    let catalog = Catalog::load_bytes(&bytes, None).expect("golden catalog loads");

    // Re-run the golden mine with count capture; determinism makes its
    // encoders (and so the counts' fingerprint) match the frozen file's.
    let (_, counts) = Miner::new(golden_mine_config())
        .mine_with_counts(&source_table())
        .expect("golden mine succeeds");

    let counted = catalog
        .with_counts(counts.clone())
        .expect("counts attach to the catalog they were mined for")
        .encode();
    assert_eq!(
        &counted[..bytes.len()],
        &bytes[..],
        "counts backfill strictly appends"
    );
    let sections = section_inventory(&counted).expect("walkable");
    assert_eq!(
        sections.iter().map(|s| s.name).collect::<Vec<_>>(),
        ["schema", "rules", "stats", "analytics", "counts"]
    );
    assert!(sections.iter().all(|s| s.crc_ok));

    let reloaded = Catalog::load_bytes(&counted, None).expect("counted catalog loads");
    assert_eq!(
        reloaded.counts(),
        Some(&counts),
        "persisted tallies survive the round trip exactly"
    );
    assert_eq!(
        reloaded.encode(),
        counted,
        "counted round trip is byte-identical"
    );
}

/// An OLD reader — simulated by truncating at the counts boundary —
/// sees exactly the frozen pre-counts catalog: the trailing-section
/// design keeps `COUNTS` invisible to consumers that predate it.
#[test]
fn counts_section_is_invisible_to_pre_counts_readers() {
    let bytes = pre_counts_bytes();
    let catalog = Catalog::load_bytes(&bytes, None).expect("golden catalog loads");
    let num_rules = catalog.rules().len();
    let (_, counts) = Miner::new(golden_mine_config())
        .mine_with_counts(&source_table())
        .expect("golden mine succeeds");
    let counted = catalog.with_counts(counts).expect("attach").encode();

    let truncated = &counted[..bytes.len()];
    let old_view = Catalog::load_bytes(truncated, None).expect("old view loads");
    assert!(old_view.counts().is_none());
    assert!(old_view.analytics().is_some());
    assert_eq!(old_view.rules().len(), num_rules);
    assert_eq!(old_view.encode(), bytes, "old view is the frozen artifact");
}
