//! Close-ancestor semantics of the interest measure on hand-built
//! generalization chains (Section 4's "close ancestor" definition).

use quantrules::core::frequent::QuantFrequentItemsets;
use quantrules::core::interest::{annotate_interest, ItemSupports};
use quantrules::core::{InterestConfig, InterestMode, QuantRule};
use quantrules::itemset::{Item, Itemset};

/// A world with one quantitative attribute (codes 0..10, ~uniform) and one
/// categorical attribute; the interesting structure is a hot value at
/// code 5 surrounded by a mild plateau.
struct World {
    frequent: QuantFrequentItemsets,
    items: ItemSupports,
}

fn world() -> World {
    // N = 10000; x value counts uniform 1000 each; y present in 2500.
    // Joint (x ∧ y): code 5 -> 800, codes 4 and 6 -> 300, others -> 100.
    let mut frequent = QuantFrequentItemsets::new(10_000);
    let y = Item::value(1, 1);
    let x = |lo: u32, hi: u32| Item::range(0, lo, hi);
    let joint = |lo: u32, hi: u32| -> u64 {
        (lo..=hi)
            .map(|v| match v {
                5 => 800,
                4 | 6 => 300,
                _ => 100,
            })
            .sum()
    };
    let mut level1 = vec![(Itemset::singleton(y), 2_500)];
    let mut level2 = Vec::new();
    for lo in 0..10u32 {
        for hi in lo..10u32 {
            level1.push((Itemset::singleton(x(lo, hi)), 1_000 * (hi - lo + 1) as u64));
            level2.push((Itemset::new(vec![x(lo, hi), y]), joint(lo, hi)));
        }
    }
    frequent.push_level(level1);
    frequent.push_level(level2);
    let items = ItemSupports::from_value_counts(&[vec![1_000; 10], vec![7_500, 2_500]], 10_000);
    World { frequent, items }
}

fn rule(frequent: &QuantFrequentItemsets, lo: u32, hi: u32) -> QuantRule {
    let ant = Itemset::singleton(Item::range(0, lo, hi));
    let both = ant.union_disjoint(&Itemset::singleton(Item::value(1, 1)));
    let support = frequent.support_of(&both).expect("built above");
    let ant_sup = frequent.support_of(&ant).expect("built above");
    QuantRule {
        antecedent: ant,
        consequent: Itemset::singleton(Item::value(1, 1)),
        support,
        confidence: support as f64 / ant_sup as f64,
    }
}

fn verdicts_for(
    ranges: &[(u32, u32)],
    level: f64,
) -> (Vec<QuantRule>, Vec<quantrules::core::RuleInterest>) {
    let w = world();
    let rules: Vec<QuantRule> = ranges
        .iter()
        .map(|&(l, h)| rule(&w.frequent, l, h))
        .collect();
    let v = annotate_interest(
        &rules,
        &w.frequent,
        &w.items,
        &InterestConfig {
            level,
            mode: InterestMode::SupportOrConfidence,
            prune_candidates: false,
        },
    );
    (rules, v)
}

#[test]
fn root_of_a_chain_is_always_interesting() {
    let (_, v) = verdicts_for(&[(0, 9), (3, 7), (5, 5)], 1.3);
    assert!(v[0].interesting && !v[0].has_ancestors);
}

#[test]
fn hot_value_beats_its_ancestors_along_the_chain() {
    // Chain [0..9] ⊃ [3..7] ⊃ [5..5]. conf([0..9]) = 2100/10000 = 0.21,
    // conf([3..7]) = (100+300+800+300+100)/5000 = 0.32, conf([5..5]) = 0.8.
    let (rules, v) = verdicts_for(&[(0, 9), (3, 7), (5, 5)], 1.3);
    assert!((rules[1].confidence - 0.32).abs() < 1e-12);
    // [3..7]'s confidence ratio over the root (1.52) passes, but the
    // specialization-difference check kills it: dropping the edge code 3
    // (a frequent specialization [4..7]) leaves the difference [3..3]
    // with support 0.01 against an expectation of 0.021 — the wide window
    // is riding on its hot interior.
    assert!(!v[1].interesting);
    // [5..5] skips the un-interesting middle: close interesting ancestor
    // is [0..9]; 0.8/0.21 = 3.8 and no frequent specializations exist.
    assert!(v[2].interesting && v[2].has_ancestors);
}

#[test]
fn interesting_middle_blocks_a_redundant_leaf() {
    // Chain [0..9] ⊃ [4..6] ⊃ [4..5].
    // conf([4..6]) = 1400/3000 = 0.467 -> 1.87× the root -> interesting.
    // conf([4..5]) = 1100/2000 = 0.55 -> only 1.18× of [4..6]'s 0.467
    // -> at R = 1.3 the leaf is redundant and must be pruned.
    let (rules, v) = verdicts_for(&[(0, 9), (4, 6), (4, 5)], 1.3);
    assert!(v[1].interesting, "conf {}", rules[1].confidence);
    assert!(!v[2].interesting);
}

#[test]
fn close_ancestor_is_the_nearest_interesting_one() {
    // [0..9] ⊃ [4..6] ⊃ [5..5]: both root and middle are interesting;
    // the close ancestor of [5..5] is [4..6] alone. 0.8/0.467 = 1.71 ≥ 1.3,
    // but the specialization-difference check on the itemset bites:
    // within {x[4..6], y}, the sub-range [5..5] holds nearly all the
    // support, so the leaf must ALSO pass the difference test... the leaf
    // has no frequent specializations (single code), so it passes.
    let (_, v) = verdicts_for(&[(0, 9), (4, 6), (5, 5)], 1.3);
    assert!(v[1].interesting);
    assert!(v[2].interesting);
}

#[test]
fn decoy_killed_by_difference_only_at_a_high_enough_level() {
    // [4..6] vs root: confidence ratio 0.467/0.21 = 2.2 passes at both
    // levels. Its one-sided specialization [4..5] leaves the difference
    // [6..6] with support 0.03 against an expectation of
    // Pr(x=6)/Pr(x∈0..9) × sup([0..9],y) = 0.1 × 0.21 = 0.021.
    // At R = 1.3 the difference squeaks by (0.03 ≥ 0.0273): kept.
    let (_, v) = verdicts_for(&[(0, 9), (4, 6)], 1.3);
    assert!(v[1].interesting);
    // At R = 1.5 it fails (0.03 < 0.0315): the decoy dies even though its
    // own confidence ratio is far above 1.5 — exactly the Figure 6
    // behaviour the specialization-difference check exists for.
    let (_, v) = verdicts_for(&[(0, 9), (4, 6)], 1.5);
    assert!(!v[1].interesting);
}

#[test]
fn interest_level_sweep_monotone_on_chain() {
    let mut last = usize::MAX;
    for level in [1.05, 1.2, 1.5, 2.0, 3.5] {
        let (_, v) = verdicts_for(&[(0, 9), (3, 7), (4, 6), (5, 5)], level);
        let n = v.iter().filter(|x| x.interesting).count();
        assert!(n <= last, "level {level}: {n} > {last}");
        last = n;
    }
}
