//! Lemma 3, executable: mining over equi-depth-partitioned attributes
//! yields a K-complete set of itemsets w.r.t. mining the raw values.
//!
//! Both runs are decoded back to raw value bounds so itemsets from the two
//! encodings can be compared. The asserted level is the *achieved* K from
//! Equation (1) over the measured interval supports (the requested level
//! is only an upper bound when interval counts are rounded and ties
//! exist).

use quantrules::core::pipeline::build_encoders;
use quantrules::core::{Miner, MinerConfig, PartitionSpec};
use quantrules::itemset::Itemset;
use quantrules::partition::achieved_level;
use quantrules::partition::partitioner::interval_supports;
use quantrules::partition::{EquiDepth, Partitioner};
use quantrules::table::{AttributeId, EncodedTable, Schema, Table, Value};

/// Per-attribute raw bounds: `(attribute, lo, hi)`.
type Bounds = Vec<(u32, f64, f64)>;

/// Decode an itemset to per-attribute raw bounds (categorical values map
/// to their code, encoded identically across runs).
fn decode(itemset: &Itemset, table: &EncodedTable) -> Bounds {
    itemset
        .items()
        .iter()
        .map(|item| {
            let id = AttributeId(item.attr as usize);
            match table.encoder(id).numeric_bounds(item.lo, item.hi) {
                Some((lo, hi)) => (item.attr, lo, hi),
                None => (item.attr, item.lo as f64, item.hi as f64),
            }
        })
        .collect()
}

fn generalizes(g: &[(u32, f64, f64)], x: &[(u32, f64, f64)]) -> bool {
    g.len() == x.len()
        && g.iter()
            .zip(x)
            .all(|(a, b)| a.0 == b.0 && a.1 <= b.1 && b.2 <= a.2)
}

/// A small-domain correlated table: raw-value mining is only feasible for
/// modest cardinalities (the paper's very motivation for partitioning), so
/// the reference run uses attributes with ~30 distinct values.
fn small_domain_table(records: usize, seed: u64) -> Table {
    let schema = Schema::builder()
        .quantitative("a")
        .quantitative("b")
        .categorical("c")
        .build()
        .expect("static schema");
    let mut table = Table::with_capacity(schema, records);
    let mut state = seed;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % m) as i64
    };
    for _ in 0..records {
        let a = next(30);
        // b tracks a with noise; c tracks a's band.
        let b = (a + next(17) - 8).clamp(0, 29);
        let c = if a < 12 {
            "low"
        } else if a < 22 {
            "mid"
        } else {
            "high"
        };
        table
            .push_row(&[Value::Int(a), Value::Int(b), Value::from(c)])
            .expect("rows match schema");
    }
    table
}

#[test]
fn partitioned_mining_is_k_complete() {
    let table = &small_domain_table(4_000, 321);
    let minsup = 0.25;
    let requested_k = 3.0;
    // max_support must be 1.0: Lemmas 2-3 presuppose that *every* range
    // combination with minimum support is kept; the max-support cap
    // deliberately trades completeness for speed and would break the
    // guarantee (generalizations spanning partition boundaries can exceed
    // any cap).
    let base = MinerConfig {
        min_support: minsup,
        min_confidence: 0.5,
        max_support: 1.0,
        partitioning: PartitionSpec::None,
        partition_strategy: Default::default(),
        taxonomies: Default::default(),
        interest: None,
        max_itemset_size: 2,
        parallelism: None,
        kernel: Default::default(),
    };

    // Reference: raw values (no partitioning).
    let (raw_encoders, _) = build_encoders(table, &base).expect("encoders");
    let raw_encoded = EncodedTable::encode(table, raw_encoders).expect("encode");
    let (raw_frequent, _) = Miner::new(base.clone())
        .frequent_itemsets(&raw_encoded)
        .expect("mine");

    // Partitioned run at the requested completeness level.
    let mut part_cfg = base.clone();
    part_cfg.partitioning = PartitionSpec::CompletenessLevel(requested_k);
    let (part_encoders, intervals) = build_encoders(table, &part_cfg).expect("encoders");
    let part_encoded = EncodedTable::encode(table, part_encoders.clone()).expect("encode");
    let (part_frequent, _) = Miner::new(part_cfg.clone())
        .frequent_itemsets(&part_encoded)
        .expect("mine");
    assert!(
        intervals.iter().any(|i| i.is_some()),
        "test must actually partition something"
    );

    // The achieved level per Equation (1), from measured interval supports.
    let quant_ids = table.schema().quantitative_ids();
    let sups: Vec<Vec<(f64, bool)>> = quant_ids
        .iter()
        .map(|&id| {
            let col = table.column(id).as_quantitative().expect("quantitative");
            let k_intervals = intervals[id.index()].unwrap_or(0);
            let cuts = if k_intervals > 0 {
                EquiDepth.cut_points(col, k_intervals)
            } else {
                Vec::new()
            };
            interval_supports(col, &cuts)
        })
        .collect();
    // Lemma 3's n is the number of quantitative attributes an itemset can
    // hold; this test mines 2-itemsets, so n = 2.
    let k = achieved_level(2, minsup, &sups);

    // Every frequent itemset of the raw run must have a generalization in
    // the partitioned run within K× support.
    let part_decoded: Vec<(Bounds, u64)> = part_frequent
        .iter()
        .map(|(s, c)| (decode(s, &part_encoded), *c))
        .collect();
    let mut checked = 0;
    for (x, x_count) in raw_frequent.iter() {
        let xd = decode(x, &raw_encoded);
        let best = part_decoded
            .iter()
            .filter(|(g, _)| generalizes(g, &xd))
            .map(|(_, c)| *c)
            .min();
        let x_hat_count = best.unwrap_or_else(|| panic!("no generalization for {x}"));
        assert!(
            x_hat_count as f64 <= k * *x_count as f64 + 1e-9,
            "{x}: generalization support {x_hat_count} exceeds K={k:.2} × {x_count}"
        );
        checked += 1;
    }
    assert!(
        checked > 30,
        "only {checked} itemsets checked — too few to be meaningful"
    );
}
