#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
#
# QAR_TEST_THREADS=1 runs the miner's counting passes single-threaded
# (the tests that pin parallelism explicitly are unaffected); CI runs the
# suite both ways to exercise the serial and the parallel code paths.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default parallelism)"
cargo test --workspace -q

echo "==> cargo test (forced serial counting)"
QAR_TEST_THREADS=1 cargo test --workspace -q

echo "==> clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rustfmt --check"
cargo fmt --check

echo "All checks passed."
