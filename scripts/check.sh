#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
#
# QAR_TEST_THREADS=1 runs the miner's counting passes single-threaded
# (the tests that pin parallelism explicitly are unaffected); CI runs the
# suite both ways to exercise the serial and the parallel code paths.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default parallelism)"
cargo test --workspace -q

echo "==> cargo test (forced serial counting)"
QAR_TEST_THREADS=1 cargo test --workspace -q

echo "==> trace smoke (events vs. schemas/trace_events.schema.json)"
TRACE_FILE="$(mktemp)"
trap 'rm -f "$TRACE_FILE"' EXIT
./target/release/smoke 2000 2.0 3 nointerest 0.3 0.2 --trace json \
    > /dev/null 2> "$TRACE_FILE"
./target/release/qar trace-check < "$TRACE_FILE"

echo "==> clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rustfmt --check"
cargo fmt --check

echo "All checks passed."
