#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
#
# QAR_TEST_THREADS=1 runs the miner's counting passes single-threaded
# (the tests that pin parallelism explicitly are unaffected); CI runs the
# suite both ways to exercise the serial and the parallel code paths.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default parallelism)"
cargo test --workspace -q

echo "==> cargo test (forced serial counting)"
QAR_TEST_THREADS=1 cargo test --workspace -q

echo "==> trace smoke (events vs. schemas/trace_events.schema.json)"
TRACE_FILE="$(mktemp)"
STORE_DIR="$(mktemp -d)"
trap 'rm -f "$TRACE_FILE"; rm -rf "$STORE_DIR"' EXIT
./target/release/smoke 2000 2.0 3 nointerest 0.3 0.2 --trace json \
    > /dev/null 2> "$TRACE_FILE"
./target/release/qar trace-check < "$TRACE_FILE"

echo "==> store smoke (mine -> store -> store-check -> query -> diff)"
./target/release/qar generate planted --records 2000 --seed 7 \
    --output "$STORE_DIR/planted.csv"
./target/release/qar mine --input "$STORE_DIR/planted.csv" \
    --schema x0:quant,x1:quant,x2:quant,c:cat \
    --minsup 0.1 --minconf 0.5 --maxsup 0.4 --intervals 10 --format json \
    --store "$STORE_DIR/cat.qarcat" > "$STORE_DIR/mine.json"
./target/release/qar store-check "$STORE_DIR/cat.qarcat" > /dev/null
./target/release/qar store-check - < "$STORE_DIR/cat.qarcat" > /dev/null
# An unfiltered JSON query must reproduce the mined rules array
# byte-for-byte (drop mine's leading stats line and trailing brace).
./target/release/qar query "$STORE_DIR/cat.qarcat" --format json \
    > "$STORE_DIR/query.json"
diff <(tail -n +2 "$STORE_DIR/mine.json" | head -n -1) \
     <(tail -n +2 "$STORE_DIR/query.json")
./target/release/qar query "$STORE_DIR/cat.qarcat" --record x0=50,c=A > /dev/null
./target/release/qar query - --range x1=20..40 --top-k 5 --by support \
    < "$STORE_DIR/cat.qarcat" > /dev/null
# A single corrupted byte must be rejected.
cp "$STORE_DIR/cat.qarcat" "$STORE_DIR/bad.qarcat"
off=$(( $(stat -c %s "$STORE_DIR/bad.qarcat") / 2 ))
orig=$(dd if="$STORE_DIR/bad.qarcat" bs=1 skip="$off" count=1 status=none \
    | od -An -tu1 | tr -d ' ')
rep='\xaa'; [ "$orig" = "170" ] && rep='\x55'
printf "$rep" | dd of="$STORE_DIR/bad.qarcat" bs=1 seek="$off" conv=notrunc status=none
if ./target/release/qar store-check "$STORE_DIR/bad.qarcat" > /dev/null 2>&1; then
    echo "store-check accepted a corrupted catalog" >&2
    exit 1
fi
# Query throughput floor (the bin exits non-zero below 10k queries/sec).
QAR_BENCH_QUICK=1 ./target/release/store_query > /dev/null

echo "==> serve smoke (daemon + concurrent load + trace validation + qps floor)"
# Start the rule-serving daemon on an OS-assigned port over the catalog
# mined above, drive a concurrent mixed workload against it, and stop it
# with a shutdown frame. The load generator exits non-zero below the
# 50k aggregate queries/sec floor; every server trace event must
# validate against the pinned schema.
./target/release/qar serve "$STORE_DIR/cat.qarcat" --port 0 --threads 10 \
    --trace json > "$STORE_DIR/serve.out" 2> "$STORE_DIR/serve.trace" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$STORE_DIR/serve.out" 2> /dev/null && break
    sleep 0.1
done
ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$STORE_DIR/serve.out")
QAR_BENCH_QUICK=1 ./target/release/qar bench-serve --addr "$ADDR" \
    --catalog "$STORE_DIR/cat.qarcat" --clients 8 --requests 250 \
    --out "$STORE_DIR/bench_serve.json" --shutdown > /dev/null
wait "$SERVE_PID"
grep -q '"suite":"bench_serve"' "$STORE_DIR/bench_serve.json"
grep -q '"p99_us"' "$STORE_DIR/bench_serve.json"
./target/release/qar trace-check < "$STORE_DIR/serve.trace" > /dev/null

echo "==> scan-kernel bench smoke (memo speedup + all-distinct + bitmask floors)"
# Quick run of the support-counting scan bench: exits non-zero when the
# memoized pooled scan misses its throughput floor, fails to beat the
# direct scan on the duplicate-heavy table, regresses the all-distinct
# worst case, or when the bitmask kernel misses its all-distinct speedup
# floor. The JSON goes to a temp path so a local run never clobbers the
# committed BENCH_scan.json baseline. On a floor violation, print the
# bench document so the failing record is visible, not just the exit
# code.
if ! QAR_BENCH_QUICK=1 QAR_BENCH_OUT="$STORE_DIR/bench_scan.json" \
    ./target/release/scan_kernel > "$STORE_DIR/bench_scan.log"; then
    echo "scan_kernel floor violation; failing bench records:" >&2
    cat "$STORE_DIR/bench_scan.log" >&2
    [ -f "$STORE_DIR/bench_scan.json" ] && cat "$STORE_DIR/bench_scan.json" >&2
    exit 1
fi
grep -q '"suite":"scan_kernel"' "$STORE_DIR/bench_scan.json"
grep -q '"dup_memo_speedup_4t"' "$STORE_DIR/bench_scan.json"
grep -q '"distinct_memo_ratio_4t"' "$STORE_DIR/bench_scan.json"
grep -q '"distinct_bitmask_speedup_1t"' "$STORE_DIR/bench_scan.json"

echo "==> analytics smoke (mine --analytics -> query --by chi2 -> store-check -> trace-check)"
# Mine the planted dataset with the rule-quality analytics pass, rank the
# catalog by a statistic that only exists in the ANALYTICS section, and
# confirm store-check reports the section with an intact checksum. The
# analytics trace events from both the mine and the `qar analyze`
# backfill must validate against the pinned schema, and the backfill of
# an analytics-less catalog must enable the same queries.
./target/release/qar mine --input "$STORE_DIR/planted.csv" \
    --schema x0:quant,x1:quant,x2:quant,c:cat \
    --minsup 0.1 --minconf 0.5 --maxsup 0.4 --intervals 10 \
    --analytics --store "$STORE_DIR/ana.qarcat" --trace json \
    > /dev/null 2> "$STORE_DIR/ana.trace"
./target/release/qar trace-check < "$STORE_DIR/ana.trace"
./target/release/qar query "$STORE_DIR/ana.qarcat" --top-k 5 --by chi2 > /dev/null
./target/release/qar query "$STORE_DIR/ana.qarcat" --min-lift 1.0 --max-p 0.05 \
    --by lift > /dev/null
./target/release/qar store-check "$STORE_DIR/ana.qarcat" > "$STORE_DIR/ana.inventory"
grep -q "analytics (tag 4):" "$STORE_DIR/ana.inventory"
# Plain catalogs refuse analytics ranking with a pointer at the backfill
# path, and `qar analyze` backfills them in place.
if ./target/release/qar query "$STORE_DIR/cat.qarcat" --by lift > /dev/null 2>&1; then
    echo "query ranked by lift without an ANALYTICS section" >&2
    exit 1
fi
cp "$STORE_DIR/cat.qarcat" "$STORE_DIR/backfill.qarcat"
./target/release/qar analyze "$STORE_DIR/backfill.qarcat" \
    --input "$STORE_DIR/planted.csv" --trace json \
    > /dev/null 2> "$STORE_DIR/analyze.trace"
./target/release/qar trace-check < "$STORE_DIR/analyze.trace"
./target/release/qar query "$STORE_DIR/backfill.qarcat" --top-k 5 --by jmeasure > /dev/null

echo "==> analytics bench smoke (closed-form rules/sec floor)"
# Quick run of the rule-quality analytics bench: the bin exits non-zero
# when the closed-form measures (lift/conviction/chi-square/J-measure +
# BH correction) fall below 50k rules/sec — ~30x headroom under the
# committed BENCH_analytics.json baseline. The JSON goes to a temp path
# so a local run never clobbers the committed baseline.
QAR_BENCH_QUICK=1 ./target/release/qar bench-analytics --floor 50000 \
    --out "$STORE_DIR/bench_analytics.json" > /dev/null
grep -q '"suite":"bench_analytics"' "$STORE_DIR/bench_analytics.json"
grep -q '"closed_form_rules_per_sec"' "$STORE_DIR/bench_analytics.json"
grep -q '"shapley_samples_per_sec"' "$STORE_DIR/bench_analytics.json"

echo "==> distributed smoke (coordinator + 2 worker processes, byte-identical catalogs)"
# Serial, distributed (2 spawned `qar worker` processes), out-of-core
# (small forced chunk size), and the chunked+distributed combination
# must all write byte-identical .qarcat catalogs for the same input
# under --normalize-stats — count distribution merges raw per-partition
# count vectors, so the agreement is exact, not approximate.
MINE_FLAGS="--schema x0:quant,x1:quant,x2:quant,c:cat \
    --minsup 0.1 --minconf 0.5 --maxsup 0.4 --intervals 10 --normalize-stats"
./target/release/qar mine --input "$STORE_DIR/planted.csv" $MINE_FLAGS \
    --store "$STORE_DIR/serial.qarcat" > /dev/null
./target/release/qar mine --input "$STORE_DIR/planted.csv" $MINE_FLAGS \
    --workers 2 --store "$STORE_DIR/dist.qarcat" > /dev/null
cmp "$STORE_DIR/serial.qarcat" "$STORE_DIR/dist.qarcat"
./target/release/qar mine --input "$STORE_DIR/planted.csv" $MINE_FLAGS \
    --chunk-rows 173 --store "$STORE_DIR/chunked.qarcat" > /dev/null
cmp "$STORE_DIR/serial.qarcat" "$STORE_DIR/chunked.qarcat"
./target/release/qar mine --input "$STORE_DIR/planted.csv" $MINE_FLAGS \
    --chunk-rows 173 --workers 2 --store "$STORE_DIR/chunked_dist.qarcat" > /dev/null
cmp "$STORE_DIR/serial.qarcat" "$STORE_DIR/chunked_dist.qarcat"

echo "==> update smoke (mine -> counts -> --update vs scratch re-mine, byte-identical)"
# Mine the paper's People table into a catalog (support counts are
# persisted automatically with --store), append a delta of rows whose
# values the base encoders already know, refresh the catalog with a
# delta-only incremental scan, and compare against mining base+delta
# from scratch: the two catalogs must match byte for byte under
# --normalize-stats — merged counts included. The update's pinned trace
# events must validate against the schema.
PEOPLE_FLAGS="--schema Age:quant,Married:cat,NumCars:quant \
    --minsup 0.4 --minconf 0.5 --maxsup 1.0 --no-partition --normalize-stats"
./target/release/qar generate people --output "$STORE_DIR/people.csv"
head -n 1 "$STORE_DIR/people.csv" > "$STORE_DIR/delta.csv"
sed -n '2,3p' "$STORE_DIR/people.csv" >> "$STORE_DIR/delta.csv"
cat "$STORE_DIR/people.csv" > "$STORE_DIR/combined.csv"
sed -n '2,3p' "$STORE_DIR/people.csv" >> "$STORE_DIR/combined.csv"
./target/release/qar mine --input "$STORE_DIR/people.csv" $PEOPLE_FLAGS \
    --store "$STORE_DIR/people_updated.qarcat" > /dev/null
./target/release/qar store-check "$STORE_DIR/people_updated.qarcat" \
    > "$STORE_DIR/people.inventory"
grep -q "counts (tag 5):" "$STORE_DIR/people.inventory"
./target/release/qar mine --input "$STORE_DIR/delta.csv" \
    --update "$STORE_DIR/people_updated.qarcat" --normalize-stats --trace json \
    > /dev/null 2> "$STORE_DIR/update.trace"
./target/release/qar trace-check < "$STORE_DIR/update.trace"
grep -q '"event":"counts_loaded"' "$STORE_DIR/update.trace"
grep -q '"event":"incremental_update"' "$STORE_DIR/update.trace"
./target/release/qar mine --input "$STORE_DIR/combined.csv" $PEOPLE_FLAGS \
    --store "$STORE_DIR/people_scratch.qarcat" > /dev/null
cmp "$STORE_DIR/people_updated.qarcat" "$STORE_DIR/people_scratch.qarcat"
./target/release/qar store-check "$STORE_DIR/people_updated.qarcat" > /dev/null

echo "==> update bench smoke (delta-update speedup floor)"
# Quick run of the incremental-update bench: exits non-zero when a 1%
# delta update fails to beat re-mining base+delta from scratch by at
# least 5x (the result is also gated on exactness: the update must stay
# on the incremental path and reproduce the scratch mine's counts and
# rules). The JSON goes to a temp path so a local run never clobbers
# the committed BENCH_update.json baseline, which must itself exist and
# respect the same floor.
QAR_BENCH_QUICK=1 ./target/release/qar bench-update --floor 5.0 \
    --out "$STORE_DIR/bench_update.json" > /dev/null
grep -q '"suite":"bench_update"' "$STORE_DIR/bench_update.json"
grep -q '"speedup"' "$STORE_DIR/bench_update.json"
grep -q '"suite":"bench_update"' BENCH_update.json
awk -F'"speedup":' '{split($2, a, ","); if (a[1] + 0 < 5.0) {
    print "committed BENCH_update.json speedup " a[1] " is below the 5x floor" > "/dev/stderr";
    exit 1 } }' BENCH_update.json

echo "==> dist bench smoke (counting speedup floor)"
# Quick run of the count-distribution bench: exits non-zero when the
# 2-partition counting critical path (max partition scan + merge) fails
# to beat serial counting by at least 1.6x. The JSON goes to a temp path
# so a local run never clobbers the committed BENCH_dist.json baseline,
# which must itself exist and respect the same floor.
QAR_BENCH_QUICK=1 ./target/release/qar bench-dist --floor 1.6 \
    --out "$STORE_DIR/bench_dist.json" > /dev/null
grep -q '"suite":"bench_dist"' "$STORE_DIR/bench_dist.json"
grep -q '"critical_path_s"' "$STORE_DIR/bench_dist.json"
grep -q '"suite":"bench_dist"' BENCH_dist.json
awk -F'"speedup":' '{split($2, a, ","); if (a[1] + 0 < 1.6) {
    print "committed BENCH_dist.json speedup " a[1] " is below the 1.6x floor" > "/dev/stderr";
    exit 1 } }' BENCH_dist.json

echo "==> fuzz smoke (200 differential cases, fixed seed)"
# A short deterministic sweep of the differential oracle: serial miner,
# parallel miner, naive reference, apriori bridge, catalog round trip,
# memoized scan cache, bitmask scan kernel, the rule-quality
# analytics pass (0-ulps closed-form reference + BH monotonicity +
# catalog round trip), count-distribution distributed mining over
# worker threads (byte-identical normalized catalogs), and incremental
# catalog updates (mine(base) + update(delta) vs mine(base+delta), down
# to byte-identical catalogs with merged counts) must agree on every
# generated case. Divergences minimize into tests/fuzz_repros/
# fixtures; a clean run writes nothing.
./target/release/qar fuzz --iters 200 --seed 42

echo "==> clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rustfmt --check"
cargo fmt --check

echo "All checks passed."
